//! Integration tests of the `dampi-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dampi-cli"))
}

#[test]
fn list_names_workloads() {
    let out = cli().arg("list").output().expect("run dampi-cli");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["matmul", "parmetis", "adlb", "fig3", "104.milc", "lu"] {
        assert!(stdout.contains(name), "missing `{name}` in:\n{stdout}");
    }
}

#[test]
fn verify_fig3_exits_with_bug_status() {
    let out = cli()
        .args(["verify", "fig3", "--np", "3"])
        .output()
        .expect("run dampi-cli");
    // Exit code 2 = verification found bugs.
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("x == 33"), "{stdout}");
}

#[test]
fn verify_clean_workload_exits_zero() {
    let out = cli()
        .args(["verify", "cg", "--np", "4", "--max", "5"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no errors found"), "{stdout}");
}

#[test]
fn verify_with_isp_backend() {
    let out = cli()
        .args(["verify", "fig3", "--np", "3", "--isp"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn verify_fig10_deferred_clock_finds_bug() {
    // Without the fix: clean exit (bug not reachable by plain coverage).
    let out = cli()
        .args(["verify", "fig10", "--np", "3"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
    // With the §V paired-clock fix: the bug is found.
    let out = cli()
        .args(["verify", "fig10", "--np", "3", "--deferred-clock"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_workload_fails_gracefully() {
    let out = cli()
        .args(["verify", "nonexistent"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload"));
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn k_bound_flag_parses() {
    let out = cli()
        .args(["verify", "matmul", "--np", "4", "--k", "0", "--max", "200"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn verify_jobs_parity_on_symmetric_racers() {
    // The parallel acceptance check at the CLI boundary: `--jobs 4` must
    // report the identical interleaving count, error set, and coverage as
    // `--jobs 1` on the wildcard-racing pattern.
    let run = |jobs: &str| {
        let out = cli()
            .args(["verify", "racers", "--np", "4", "--jobs", jobs, "--json"])
            .output()
            .expect("run dampi-cli");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = run("1");
    let par = run("4");
    assert_eq!(seq, par, "parallel JSON report must be byte-identical");
    assert!(seq.contains("\"interleavings\""), "{seq}");
}

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_metrics-lint"))
}

#[test]
fn verify_metrics_snapshot_is_deterministic_across_jobs() {
    // The observability acceptance check: the `semantic` section of the
    // `--metrics` snapshot must be byte-identical at any worker count;
    // only `wall_clock` may differ.
    let dir = std::env::temp_dir().join("dampi-cli-metrics-test");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |jobs: &str, file: &str| {
        let path = dir.join(file);
        let out = cli()
            .args(["verify", "racers", "--np", "4", "--jobs", jobs, "--metrics"])
            .arg(&path)
            .output()
            .expect("run dampi-cli");
        assert!(out.status.success(), "{out:?}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            v.get("schema").and_then(serde_json::Value::as_u64),
            Some(u64::from(dampi::core::METRICS_SCHEMA_VERSION))
        );
        (
            path,
            serde_json::to_string(v.get("semantic").unwrap()).unwrap(),
        )
    };
    let (p1, sem1) = run("1", "m1.json");
    let (p4, sem4) = run("4", "m4.json");
    assert_eq!(sem1, sem4, "semantic metrics must not depend on --jobs");
    // The lint binary agrees, including the cross-file determinism check.
    let out = lint()
        .args([
            p1.to_str().unwrap(),
            p4.to_str().unwrap(),
            "--expect-semantic-match",
        ])
        .output()
        .expect("run metrics-lint");
    assert!(out.status.success(), "{out:?}");
    // And it rejects a snapshot whose ledger doesn't balance.
    let broken = dir.join("broken.json");
    let text = std::fs::read_to_string(&p1).unwrap();
    let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let wall = v
        .as_object_mut()
        .unwrap()
        .get_mut("wall_clock")
        .unwrap()
        .as_object_mut()
        .unwrap();
    wall.insert("replays_started".into(), serde_json::json!(999));
    std::fs::write(&broken, serde_json::to_string(&v).unwrap()).unwrap();
    let out = lint().arg(&broken).output().expect("run metrics-lint");
    assert!(!out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("replays_started"), "{err}");
    for p in [p1, p4, broken] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn verify_trace_streams_schema_versioned_jsonl() {
    let dir = std::env::temp_dir().join("dampi-cli-metrics-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let out = cli()
        .args([
            "verify",
            "racers",
            "--np",
            "4",
            "--jobs",
            "2",
            "--progress",
            "--trace",
        ])
        .arg(&path)
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("trace line is JSON"))
        .collect();
    assert!(!lines.is_empty());
    for l in &lines {
        assert_eq!(
            l.get("v").and_then(serde_json::Value::as_u64),
            Some(1),
            "{l:?}"
        );
    }
    let last = lines.last().unwrap();
    assert!(
        last.get("event").unwrap().get("CampaignEnd").is_some(),
        "trace must close with CampaignEnd: {last:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_rejects_observability_flags_with_isp() {
    let out = cli()
        .args([
            "verify",
            "fig3",
            "--np",
            "3",
            "--isp",
            "--metrics",
            "/dev/null",
        ])
        .output()
        .expect("run dampi-cli");
    assert!(!out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("DAMPI-only"), "{err}");
}

#[test]
fn verify_rejects_zero_jobs_and_isp_with_jobs() {
    let out = cli()
        .args(["verify", "racers", "--np", "4", "--jobs", "0"])
        .output()
        .expect("run dampi-cli");
    assert!(!out.status.success(), "{out:?}");
    let out = cli()
        .args(["verify", "fig3", "--np", "3", "--isp", "--jobs", "2"])
        .output()
        .expect("run dampi-cli");
    assert!(!out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ISP"), "{err}");
}
