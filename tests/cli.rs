//! Integration tests of the `dampi-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dampi-cli"))
}

#[test]
fn list_names_workloads() {
    let out = cli().arg("list").output().expect("run dampi-cli");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["matmul", "parmetis", "adlb", "fig3", "104.milc", "lu"] {
        assert!(stdout.contains(name), "missing `{name}` in:\n{stdout}");
    }
}

#[test]
fn verify_fig3_exits_with_bug_status() {
    let out = cli()
        .args(["verify", "fig3", "--np", "3"])
        .output()
        .expect("run dampi-cli");
    // Exit code 2 = verification found bugs.
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("x == 33"), "{stdout}");
}

#[test]
fn verify_clean_workload_exits_zero() {
    let out = cli()
        .args(["verify", "cg", "--np", "4", "--max", "5"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no errors found"), "{stdout}");
}

#[test]
fn verify_with_isp_backend() {
    let out = cli()
        .args(["verify", "fig3", "--np", "3", "--isp"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn verify_fig10_deferred_clock_finds_bug() {
    // Without the fix: clean exit (bug not reachable by plain coverage).
    let out = cli()
        .args(["verify", "fig10", "--np", "3"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
    // With the §V paired-clock fix: the bug is found.
    let out = cli()
        .args(["verify", "fig10", "--np", "3", "--deferred-clock"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_workload_fails_gracefully() {
    let out = cli()
        .args(["verify", "nonexistent"])
        .output()
        .expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload"));
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().expect("run dampi-cli");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn k_bound_flag_parses() {
    let out = cli()
        .args(["verify", "matmul", "--np", "4", "--k", "0", "--max", "200"])
        .output()
        .expect("run dampi-cli");
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn verify_jobs_parity_on_symmetric_racers() {
    // The parallel acceptance check at the CLI boundary: `--jobs 4` must
    // report the identical interleaving count, error set, and coverage as
    // `--jobs 1` on the wildcard-racing pattern.
    let run = |jobs: &str| {
        let out = cli()
            .args(["verify", "racers", "--np", "4", "--jobs", jobs, "--json"])
            .output()
            .expect("run dampi-cli");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = run("1");
    let par = run("4");
    assert_eq!(seq, par, "parallel JSON report must be byte-identical");
    assert!(seq.contains("\"interleavings\""), "{seq}");
}

#[test]
fn verify_rejects_zero_jobs_and_isp_with_jobs() {
    let out = cli()
        .args(["verify", "racers", "--np", "4", "--jobs", "0"])
        .output()
        .expect("run dampi-cli");
    assert!(!out.status.success(), "{out:?}");
    let out = cli()
        .args(["verify", "fig3", "--np", "3", "--isp", "--jobs", "2"])
        .output()
        .expect("run dampi-cli");
    assert!(!out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ISP"), "{err}");
}
