//! Verification over derived communicators: DAMPI's shadow communicators
//! must track `comm_dup`/`comm_split` hierarchies, and ISP's central
//! bookkeeping must translate sub-communicator ranks correctly.

use dampi::core::{DampiVerifier, DecisionSet};
use dampi::isp::IspVerifier;
use dampi::mpi::envelope::codec;
use dampi::mpi::proc_api::user_assert;
use dampi::mpi::{Comm, FnProgram, Mpi, Result, SimConfig, ANY_SOURCE};

/// Split the world by parity; the even group runs a master/worker exchange
/// with wildcard receives entirely inside the sub-communicator.
fn split_with_wildcards() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        let me = mpi.world_rank();
        let color = (me % 2) as i64;
        let sub = mpi
            .comm_split(Comm::WORLD, color, me as i64)?
            .expect("non-negative color");
        let sub_rank = mpi.comm_rank(sub)?;
        let sub_size = mpi.comm_size(sub)?;
        if color == 0 && sub_size > 1 {
            if sub_rank == 0 {
                let mut sum = 0u64;
                for _ in 1..sub_size {
                    let (_, data) = mpi.recv(sub, ANY_SOURCE, 1)?;
                    sum += codec::decode_u64(&data);
                }
                // World ranks 2, 4, ... contribute their world rank.
                let expect: u64 = (1..sub_size as u64).map(|r| r * 2).sum();
                user_assert(sum == expect, format!("subcomm sum {sum} != {expect}"))?;
            } else {
                mpi.send(sub, 0, 1, codec::encode_u64(me as u64))?;
            }
        }
        mpi.barrier(Comm::WORLD)?;
        mpi.comm_free(sub)?;
        Ok(())
    })
}

#[test]
fn dampi_verifies_wildcards_inside_split_comms() {
    let report = DampiVerifier::new(SimConfig::new(6)).verify(&split_with_wildcards());
    assert!(report.errors.is_empty(), "{report}");
    assert_eq!(
        report.wildcards_analyzed, 2,
        "two wildcard receives in the even group"
    );
    assert!(
        report.interleavings >= 2,
        "both match orders explored: {report}"
    );
    assert!(
        report.leaks.is_clean(),
        "tool shadows must not leak: {:?}",
        report.leaks
    );
}

#[test]
fn isp_verifies_wildcards_inside_split_comms() {
    let report = IspVerifier::new(SimConfig::new(6)).verify(&split_with_wildcards());
    assert!(report.errors.is_empty(), "{report}");
    assert!(report.interleavings >= 2, "{report}");
}

#[test]
fn nested_dups_with_wildcards() {
    // dup of a dup; wildcard traffic on the innermost communicator.
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let d1 = mpi.comm_dup(Comm::WORLD)?;
        let d2 = mpi.comm_dup(d1)?;
        if mpi.world_rank() == 0 {
            for _ in 1..mpi.world_size() {
                let _ = mpi.recv(d2, ANY_SOURCE, 3)?;
            }
        } else {
            mpi.send(d2, 0, 3, codec::encode_u64(1))?;
        }
        mpi.comm_free(d2)?;
        mpi.comm_free(d1)?;
        Ok(())
    });
    let report = DampiVerifier::new(SimConfig::new(3)).verify(&prog);
    assert!(report.errors.is_empty(), "{report}");
    assert_eq!(report.interleavings, 2, "{report}");
    assert!(report.leaks.is_clean(), "{:?}", report.leaks);
}

#[test]
fn traffic_on_different_comms_does_not_cross_match() {
    // Same (src, dst, tag) on two communicators: each receive must get its
    // own communicator's message, under verification too.
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let dup = mpi.comm_dup(Comm::WORLD)?;
        if mpi.world_rank() == 0 {
            mpi.send(Comm::WORLD, 1, 5, codec::encode_u64(111))?;
            mpi.send(dup, 1, 5, codec::encode_u64(222))?;
        } else if mpi.world_rank() == 1 {
            // Receive in the opposite order of the sends.
            let (_, on_dup) = mpi.recv(dup, ANY_SOURCE, 5)?;
            let (_, on_world) = mpi.recv(Comm::WORLD, ANY_SOURCE, 5)?;
            user_assert(codec::decode_u64(&on_dup) == 222, "dup got world traffic")?;
            user_assert(codec::decode_u64(&on_world) == 111, "world got dup traffic")?;
        }
        mpi.comm_free(dup)?;
        Ok(())
    });
    let report = DampiVerifier::new(SimConfig::new(2)).verify(&prog);
    assert!(report.errors.is_empty(), "{report}");
}

#[test]
fn replay_forces_matches_inside_subcomm() {
    // Build an explicit decision forcing the second even-group sender
    // first, and check the guided run honors it (matched_src per epoch).
    let v = DampiVerifier::new(SimConfig::new(6));
    let first = v.instrumented_run(&split_with_wildcards(), &DecisionSet::self_run());
    assert!(first.outcome.succeeded(), "{:?}", first.outcome.fatal);
    let epoch = first
        .epochs
        .iter()
        .find(|e| e.matched_src.is_some())
        .expect("even-group wildcard epoch");
    // Force the other source at that epoch.
    let alt = *epoch
        .alternates
        .iter()
        .next()
        .expect("the other sender is a potential match");
    let ds = DecisionSet::guided(
        epoch.clock,
        vec![dampi::core::EpochDecision {
            rank: epoch.rank,
            clock: epoch.clock,
            src: alt,
        }],
    );
    let rerun = v.instrumented_run(&split_with_wildcards(), &ds);
    assert!(rerun.outcome.succeeded(), "{:?}", rerun.outcome.fatal);
    let forced = rerun
        .epochs
        .iter()
        .find(|e| e.rank == epoch.rank && e.clock == epoch.clock)
        .expect("same epoch exists in replay");
    assert_eq!(forced.matched_src, Some(alt), "the forced source must win");
    assert!(forced.guided);
}
