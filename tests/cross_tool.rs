//! Cross-crate integration: the DAMPI and ISP verifiers against the full
//! workload suite.

use dampi::core::{DampiConfig, DampiVerifier, MixingBound};
use dampi::isp::IspVerifier;
use dampi::mpi::{MatchPolicy, MpiError, SimConfig};
use dampi::workloads::adlb::{Adlb, AdlbParams};
use dampi::workloads::matmul::{Matmul, MatmulParams};
use dampi::workloads::patterns;
use dampi::workloads::{nas, spec};

#[test]
fn both_tools_find_the_fig3_bug() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let d = DampiVerifier::new(sim.clone()).verify(&patterns::fig3());
    let i = IspVerifier::new(sim).verify(&patterns::fig3());
    assert_eq!(d.assertion_failures(), 1, "{d}");
    assert!(
        i.errors
            .iter()
            .any(|e| matches!(e.error, MpiError::UserAssert { .. })),
        "{i}"
    );
}

#[test]
fn both_tools_find_the_schedule_deadlock() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let d = DampiVerifier::new(sim.clone()).verify(&patterns::deadlock_on_alternate_schedule());
    let i = IspVerifier::new(sim).verify(&patterns::deadlock_on_alternate_schedule());
    assert!(d.deadlocks() >= 1, "{d}");
    assert!(i.deadlocks() >= 1, "{i}");
}

#[test]
fn coverage_agrees_on_matmul() {
    let prog = Matmul::new(MatmulParams {
        n: 4,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let d = DampiVerifier::new(SimConfig::new(4)).verify(&prog);
    let i = IspVerifier::new(SimConfig::new(4)).verify(&prog);
    assert!(d.errors.is_empty());
    assert!(i.errors.is_empty());
    assert_eq!(d.interleavings, i.interleavings, "\nDAMPI {d}\nISP {i}");
}

#[test]
fn all_nas_kernels_verify_clean_under_budget() {
    for (name, prog) in nas::all_nominal() {
        let cfg = DampiConfig::default().with_max_interleavings(30);
        let report = DampiVerifier::with_config(SimConfig::new(4), cfg).verify(prog.as_ref());
        assert!(
            report.errors.is_empty(),
            "{name} must verify clean: {report}"
        );
        // Leak findings surface through the verifier too.
        let expect_leak = matches!(name, "BT" | "FT");
        assert_eq!(report.leaks.has_comm_leak(), expect_leak, "{name}");
    }
}

#[test]
fn all_spec_kernels_verify_clean_under_budget() {
    for (name, prog) in spec::all_nominal() {
        let cfg = DampiConfig::default().with_max_interleavings(30);
        let report = DampiVerifier::with_config(SimConfig::new(4), cfg).verify(prog.as_ref());
        assert!(
            report.errors.is_empty(),
            "{name} must verify clean: {report}"
        );
        let expect_leak = matches!(name, "104.milc" | "113.GemsFDTD" | "137.lu");
        assert_eq!(report.leaks.has_comm_leak(), expect_leak, "{name}");
    }
}

#[test]
fn adlb_verifies_clean_under_k1() {
    let prog = Adlb::new(AdlbParams {
        nservers: 1,
        seed_items: 2,
        spawn_depth: 1,
        spawn_width: 1,
        work_cost: 0.0,
    });
    let cfg = DampiConfig::default()
        .with_bound(MixingBound::K(1))
        .with_max_interleavings(5_000);
    let report = DampiVerifier::with_config(SimConfig::new(4), cfg).verify(&prog);
    assert!(report.errors.is_empty(), "{report}");
    assert!(report.wildcards_analyzed > 0);
}

#[test]
fn dampi_repro_schedule_replays_under_isp() {
    // The Epoch Decisions format is shared: a bug found by DAMPI can be
    // replayed by ISP (and vice versa), since both force the same
    // (rank, epoch) -> source prescriptions.
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let d = DampiVerifier::new(sim.clone()).verify(&patterns::fig3());
    let repro = &d.errors[0].decisions;
    let isp = IspVerifier::new(sim);
    let rerun = isp.instrumented_run(&patterns::fig3(), repro);
    assert!(
        rerun
            .outcome
            .program_bugs()
            .iter()
            .any(|b| matches!(b.error, MpiError::UserAssert { .. })),
        "ISP must reproduce DAMPI's schedule: {:?}",
        rerun.outcome.rank_errors
    );
}

#[test]
fn native_bias_masks_what_verifiers_find() {
    // The paper's motivating claim, end to end: across biased policies the
    // native run stays green while both verifiers flag the bug.
    for policy in [MatchPolicy::LowestRank, MatchPolicy::ArrivalOrder] {
        let sim = SimConfig::new(3).with_policy(policy);
        let native = dampi::mpi::run_native(&sim, &patterns::fig3());
        assert!(native.succeeded(), "bias should mask the bug natively");
    }
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    assert!(!DampiVerifier::new(sim.clone())
        .verify(&patterns::fig3())
        .errors
        .is_empty());
    assert!(!IspVerifier::new(sim)
        .verify(&patterns::fig3())
        .errors
        .is_empty());
}

#[test]
fn head_to_head_deadlock_found_in_initial_run() {
    let report = DampiVerifier::new(SimConfig::new(2)).verify(&patterns::deadlock_head_to_head());
    assert_eq!(report.deadlocks(), 1, "{report}");
    assert_eq!(report.interleavings, 1, "found without any replay");
}

#[test]
fn leaky_program_reported_by_both_tools() {
    let d = DampiVerifier::new(SimConfig::new(2)).verify(&patterns::leaky_program());
    assert!(d.leaks.has_comm_leak() && d.leaks.has_request_leak(), "{d}");
    let i = IspVerifier::new(SimConfig::new(2)).verify(&patterns::leaky_program());
    assert!(i.leaks.has_comm_leak() && i.leaks.has_request_leak(), "{i}");
}
