//! **dampi** — facade crate re-exporting the whole DAMPI reproduction.
//!
//! This workspace reproduces *"A Scalable and Distributed Dynamic Formal
//! Verifier for MPI Programs"* (Vo et al., SC 2010): the DAMPI verifier, an
//! MPI runtime simulator as its substrate, the ISP centralized baseline,
//! and the paper's benchmark workloads.
//!
//! * [`mpi`] — the MPI runtime simulator and PnMPI-style interposition.
//! * [`clocks`] — Lamport and vector logical clocks.
//! * [`core`] — the DAMPI verifier (epochs, piggybacks, replay, bounds).
//! * [`analysis`] — static pre-replay analysis (match-set pruning, lints).
//! * [`isp`] — the ISP centralized baseline.
//! * [`workloads`] — matmul, ParMETIS-like, NAS-like, SpecMPI-like, ADLB.
//!
//! Quickstart: see `examples/quickstart.rs`, or:
//!
//! ```
//! use dampi::core::DampiVerifier;
//! use dampi::mpi::{FnProgram, SimConfig, Comm, ANY_SOURCE};
//!
//! let prog = FnProgram(|mpi: &mut dyn dampi::mpi::Mpi| {
//!     if mpi.world_rank() == 0 {
//!         for _ in 1..mpi.world_size() {
//!             let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
//!         }
//!     } else {
//!         let payload = dampi::mpi::envelope::codec::encode_u64(42);
//!         mpi.send(Comm::WORLD, 0, 0, payload)?;
//!     }
//!     Ok(())
//! });
//! let report = DampiVerifier::new(SimConfig::new(3)).verify(&prog);
//! assert!(report.errors.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use dampi_analysis as analysis;
pub use dampi_clocks as clocks;
pub use dampi_core as core;
pub use dampi_fuzz as fuzz;
pub use dampi_isp as isp;
pub use dampi_mpi as mpi;
pub use dampi_workloads as workloads;
