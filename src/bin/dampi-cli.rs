//! `dampi-cli` — drive the DAMPI verifier from the command line.
//!
//! ```text
//! dampi-cli list
//! dampi-cli verify <workload> [--np N] [--k K] [--max M] [--clock lamport|vector]
//!                             [--jobs N] [--isp] [--deferred-clock]
//!                             [--journal PATH] [--resume PATH]
//!                             [--replay-vt SECS] [--replay-wall SECS]
//!                             [--metrics PATH] [--trace PATH] [--progress]
//!                             [--prune-static]
//!                             [--cache DIR] [--cache-readonly]
//!                             [--replay-cost-ms N]
//!                             [--shards N] [--worker-fault SPEC]
//!                             [--heartbeat-timeout SECS] [--lease SECS]
//!                             [--max-attempts K]
//! dampi-cli analyze <workload> [--np N] [--json] [--protocol SPEC]
//!                              # static pre-replay analysis (+ session conformance)
//! dampi-cli overhead [--np N]           # Table II style slowdown census
//! ```

use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use dampi::core::scheduler::ExploreOptions;
use dampi::core::shard::{self, ProcessWorkerLauncher, ShardOptions};
use dampi::core::{
    CampaignMetrics, CampaignTrace, ClockMode, DampiConfig, DampiVerifier, DecisionSet,
    MixingBound, ReplayCache,
};
use dampi::isp::IspVerifier;
use dampi::mpi::fault::WorkerFaultPlan;
use dampi::mpi::{run_native, MatchPolicy, MpiProgram, ReplayBudget, SimConfig};
use dampi::workloads::adlb::{Adlb, AdlbParams};
use dampi::workloads::matmul::{Matmul, MatmulParams};
use dampi::workloads::parmetis::{Parmetis, ParmetisParams};
use dampi::workloads::{nas, patterns, spec};

fn registry(np: usize) -> Vec<(String, Box<dyn MpiProgram>)> {
    let mut v: Vec<(String, Box<dyn MpiProgram>)> = vec![
        (
            "matmul".into(),
            Box::new(Matmul::new(MatmulParams::default())),
        ),
        (
            "parmetis".into(),
            Box::new(Parmetis::new(ParmetisParams::nominal(np, 0.2))),
        ),
        ("adlb".into(), Box::new(Adlb::new(AdlbParams::default()))),
        ("fig3".into(), Box::new(patterns::fig3())),
        ("racers".into(), Box::new(patterns::symmetric_racers())),
        ("fig4".into(), Box::new(patterns::fig4_cross_coupled())),
        ("fig10".into(), Box::new(patterns::fig10_unsafe())),
        (
            "deadlock".into(),
            Box::new(patterns::deadlock_on_alternate_schedule()),
        ),
        ("leaky".into(), Box::new(patterns::leaky_program())),
        (
            "collective_mismatch".into(),
            Box::new(patterns::collective_mismatch()),
        ),
        ("request_leak".into(), Box::new(patterns::request_leak())),
        (
            "stuck_wildcard".into(),
            Box::new(patterns::stuck_wildcard()),
        ),
        (
            "matmul_ack".into(),
            Box::new(Matmul::new(MatmulParams {
                ack_results: true,
                ..MatmulParams::default()
            })),
        ),
        ("protocol_demo".into(), Box::new(patterns::protocol_demo())),
        (
            "protocol_order_bug".into(),
            Box::new(patterns::protocol_order_bug()),
        ),
        (
            "protocol_peer_bug".into(),
            Box::new(patterns::protocol_peer_bug()),
        ),
        (
            "protocol_short_bug".into(),
            Box::new(patterns::protocol_short_bug()),
        ),
        (
            "ordered_stages".into(),
            Box::new(patterns::ordered_stages()),
        ),
    ];
    for (name, prog) in nas::all_nominal() {
        v.push((name.to_lowercase(), prog));
    }
    for (name, prog) in spec::all_nominal() {
        v.push((name.to_lowercase(), prog));
    }
    v
}

struct Args {
    np: usize,
    k: Option<u32>,
    max: u64,
    clock: ClockMode,
    isp: bool,
    deferred: bool,
    biased: bool,
    json: bool,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    replay_vt: Option<f64>,
    replay_wall: Option<f64>,
    jobs: Option<usize>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    progress: bool,
    prune_static: bool,
    shards: Option<usize>,
    heartbeat_timeout: Option<f64>,
    lease: Option<f64>,
    max_attempts: Option<u32>,
    worker_fault: Option<String>,
    fault_slot: usize,
    worker: bool,
    worker_beat_ms: u64,
    cache: Option<PathBuf>,
    cache_readonly: bool,
    replay_cost_ms: u64,
    protocol: Option<String>,
}

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut a = Args {
        np: 4,
        k: None,
        max: 10_000,
        clock: ClockMode::Lamport,
        isp: false,
        deferred: false,
        biased: true,
        json: false,
        journal: None,
        resume: None,
        replay_vt: None,
        replay_wall: None,
        jobs: None,
        metrics: None,
        trace: None,
        progress: false,
        prune_static: false,
        shards: None,
        heartbeat_timeout: None,
        lease: None,
        max_attempts: None,
        worker_fault: None,
        fault_slot: 0,
        worker: false,
        worker_beat_ms: 250,
        cache: None,
        cache_readonly: false,
        replay_cost_ms: 0,
        protocol: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--np" => a.np = val("--np")?.parse().map_err(|e| format!("--np: {e}"))?,
            "--k" => a.k = Some(val("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--max" => a.max = val("--max")?.parse().map_err(|e| format!("--max: {e}"))?,
            "--clock" => {
                a.clock = match val("--clock")?.as_str() {
                    "lamport" => ClockMode::Lamport,
                    "vector" => ClockMode::Vector,
                    other => return Err(format!("unknown clock mode `{other}`")),
                }
            }
            "--isp" => a.isp = true,
            "--deferred-clock" => a.deferred = true,
            "--unbiased" => a.biased = false,
            "--json" => a.json = true,
            "--jobs" => {
                let jobs: usize = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                a.jobs = Some(jobs);
            }
            "--shards" => {
                let shards: usize = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                a.shards = Some(shards);
            }
            "--heartbeat-timeout" => {
                a.heartbeat_timeout = Some(
                    val("--heartbeat-timeout")?
                        .parse()
                        .map_err(|e| format!("--heartbeat-timeout: {e}"))?,
                );
            }
            "--lease" => {
                a.lease = Some(
                    val("--lease")?
                        .parse()
                        .map_err(|e| format!("--lease: {e}"))?,
                );
            }
            "--max-attempts" => {
                let k: u32 = val("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?;
                if k == 0 {
                    return Err("--max-attempts must be at least 1".to_owned());
                }
                a.max_attempts = Some(k);
            }
            "--worker-fault" => a.worker_fault = Some(val("--worker-fault")?),
            "--worker-fault-slot" => {
                a.fault_slot = val("--worker-fault-slot")?
                    .parse()
                    .map_err(|e| format!("--worker-fault-slot: {e}"))?;
            }
            "--worker" => a.worker = true,
            "--worker-beat-ms" => {
                a.worker_beat_ms = val("--worker-beat-ms")?
                    .parse()
                    .map_err(|e| format!("--worker-beat-ms: {e}"))?;
            }
            "--cache" => a.cache = Some(PathBuf::from(val("--cache")?)),
            "--cache-readonly" => a.cache_readonly = true,
            "--replay-cost-ms" => {
                a.replay_cost_ms = val("--replay-cost-ms")?
                    .parse()
                    .map_err(|e| format!("--replay-cost-ms: {e}"))?;
            }
            "--journal" => a.journal = Some(PathBuf::from(val("--journal")?)),
            "--resume" => a.resume = Some(PathBuf::from(val("--resume")?)),
            "--metrics" => a.metrics = Some(PathBuf::from(val("--metrics")?)),
            "--trace" => a.trace = Some(PathBuf::from(val("--trace")?)),
            "--progress" => a.progress = true,
            "--prune-static" => a.prune_static = true,
            "--protocol" => a.protocol = Some(val("--protocol")?),
            "--replay-vt" => {
                a.replay_vt = Some(
                    val("--replay-vt")?
                        .parse()
                        .map_err(|e| format!("--replay-vt: {e}"))?,
                );
            }
            "--replay-wall" => {
                a.replay_wall = Some(
                    val("--replay-wall")?
                        .parse()
                        .map_err(|e| format!("--replay-wall: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(a)
}

/// Resolve `--protocol`: a filesystem path to a `.protocol` file wins;
/// otherwise the argument names a committed spec from
/// `dampi::workloads::protocols` (e.g. `matmul`, `ordered_stages`).
fn load_protocol(args: &Args) -> Result<Option<dampi::analysis::ProtocolSpec>, String> {
    let Some(arg) = &args.protocol else {
        return Ok(None);
    };
    let source = match std::fs::read_to_string(arg) {
        Ok(text) => text,
        Err(_) => dampi::workloads::protocols::by_name(arg)
            .map(str::to_owned)
            .ok_or_else(|| {
                format!("--protocol: `{arg}` is neither a readable file nor a committed spec name")
            })?,
    };
    dampi::analysis::ProtocolSpec::parse(&source)
        .map(Some)
        .map_err(|e| format!("--protocol {arg}: {e}"))
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The flags that change what a replay *computes*, as opposed to how the
/// campaign is orchestrated, in canonical order. The supervisor spawns
/// each worker with exactly this vector (plus `--worker` plumbing), and
/// both sides hash it into the config digest the worker must echo in its
/// `Hello` frame — so a supervisor can never merge results computed under
/// different verification options. `--replay-cost-ms` is deliberately
/// absent: it prices wall-clock without touching results, so a campaign
/// priced differently still addresses the same replay-cache keyspace.
fn semantic_args(name: &str, a: &Args) -> Vec<String> {
    let mut v = vec![
        "verify".to_owned(),
        name.to_owned(),
        "--np".to_owned(),
        a.np.to_string(),
        "--max".to_owned(),
        a.max.to_string(),
        "--clock".to_owned(),
        match a.clock {
            ClockMode::Lamport => "lamport".to_owned(),
            ClockMode::Vector => "vector".to_owned(),
        },
    ];
    if let Some(k) = a.k {
        v.push("--k".to_owned());
        v.push(k.to_string());
    }
    if a.deferred {
        v.push("--deferred-clock".to_owned());
    }
    if !a.biased {
        v.push("--unbiased".to_owned());
    }
    // f64 Display is shortest-roundtrip, so the respawned worker parses
    // back the identical bits.
    if let Some(vt) = a.replay_vt {
        v.push("--replay-vt".to_owned());
        v.push(vt.to_string());
    }
    if let Some(wall) = a.replay_wall {
        v.push("--replay-wall".to_owned());
        v.push(wall.to_string());
    }
    v
}

fn config_digest(name: &str, a: &Args) -> u64 {
    fnv1a64(semantic_args(name, a).join("\u{1f}").as_bytes())
}

/// SIGTERM → graceful drain. Lives in the CLI because `dampi-core`
/// forbids unsafe code; the handler body is one relaxed atomic store,
/// which is async-signal-safe.
#[cfg(unix)]
mod drain {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_sig: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Install the SIGTERM handler and return the drain flag the
    /// supervisor polls.
    pub fn install_sigterm() -> Arc<AtomicBool> {
        let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
        flag
    }
}

fn cmd_list() -> ExitCode {
    println!("available workloads:");
    for (name, _) in registry(4) {
        println!("  {name}");
    }
    ExitCode::SUCCESS
}

/// `dampi-cli fuzz`: generate seeded programs, run each through the
/// differential clock-mode oracle, and emit one verdict JSON line per
/// seed. Fully deterministic: the same flags produce byte-identical
/// output, which is what the CI `fuzz-smoke` gate diffs against the
/// committed corpus.
fn cmd_fuzz(rest: &[String]) -> ExitCode {
    use dampi::fuzz::{gen, run_oracle, shrink, OracleParams};
    use dampi::workloads::generated::GenSpec;

    let mut seed0: u64 = 0;
    let mut count: u64 = 16;
    let mut max: Option<u64> = None;
    let mut escalate_k: Option<u32> = None;
    let mut out: Option<PathBuf> = None;
    let mut shrink_dir: Option<PathBuf> = None;
    let mut spec_out: Option<PathBuf> = None;
    let mut protocol_templates: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match flag.as_str() {
                "--seed" => seed0 = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--count" => {
                    count = val("--count")?
                        .parse()
                        .map_err(|e| format!("--count: {e}"))?;
                }
                "--max" => max = Some(val("--max")?.parse().map_err(|e| format!("--max: {e}"))?),
                "--escalate-k" => {
                    escalate_k = Some(
                        val("--escalate-k")?
                            .parse()
                            .map_err(|e| format!("--escalate-k: {e}"))?,
                    );
                }
                "--out" => out = Some(PathBuf::from(val("--out")?)),
                "--shrink-bugs" => shrink_dir = Some(PathBuf::from(val("--shrink-bugs")?)),
                "--emit-specs" => spec_out = Some(PathBuf::from(val("--emit-specs")?)),
                "--protocol-templates" => {
                    protocol_templates = Some(
                        val("--protocol-templates")?
                            .parse()
                            .map_err(|e| format!("--protocol-templates: {e}"))?,
                    );
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Protocol-template mode: a separate known-answer corpus for the
    // static conformance checker, not the replay oracle. One JSON line
    // per seed; deterministic for equal flags.
    if let Some(n) = protocol_templates {
        use dampi::fuzz::{check_template, generate_template, Injection};
        let mut lines = Vec::new();
        let mut failures = 0u64;
        for seed in seed0..seed0 + n {
            let t = generate_template(seed);
            let outcome = check_template(&t);
            let injection = match t.injection {
                Injection::None => "none",
                Injection::Order => "order",
                Injection::Peer => "peer",
                Injection::Short => "short",
            };
            let line = match &outcome {
                Ok(fired) => format!(
                    "{{\"seed\":{seed},\"injection\":\"{injection}\",\"expected\":{},\"fired\":{fired},\"ok\":true}}",
                    t.injection
                        .expected_lint()
                        .map_or("null".to_owned(), |l| format!("\"{l}\"")),
                ),
                Err(e) => {
                    failures += 1;
                    eprintln!("seed {seed}: {e}");
                    format!(
                        "{{\"seed\":{seed},\"injection\":\"{injection}\",\"ok\":false,\"error\":{}}}",
                        serde_json::Value::String(e.clone())
                    )
                }
            };
            lines.push(line);
        }
        let body = lines.join("\n") + "\n";
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("error: --out: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            print!("{body}");
        }
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!("{failures} of {n} protocol templates misanswered");
            ExitCode::FAILURE
        };
    }
    let mut oracle_params = OracleParams::default();
    if let Some(m) = max {
        oracle_params.max_interleavings = m;
    }
    if let Some(k) = escalate_k {
        oracle_params.escalate_k = k;
    }

    let mut lines = Vec::new();
    let mut bugs: Vec<GenSpec> = Vec::new();
    for seed in seed0..seed0 + count {
        let params = gen::GenParams::for_seed(seed);
        let spec = gen::generate(seed, &params);
        if let Some(dir) = &spec_out {
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(dir.join(format!("fuzz_{seed}.json")), spec.to_json())
            }) {
                eprintln!("error: --emit-specs: {e}");
                return ExitCode::FAILURE;
            }
        }
        let verdict = run_oracle(&spec, &oracle_params);
        if verdict.unclassified() {
            eprintln!(
                "seed {seed}: {} — {} (shrinking: {})",
                verdict.verdict,
                verdict.detail,
                shrink_dir.is_some()
            );
            if let Some(dir) = &shrink_dir {
                let rounds = gen::generate_rounds(seed, &params);
                let want = verdict.verdict.clone();
                let shrunk = shrink(&spec.name, seed, &params, &rounds, |cand| {
                    run_oracle(cand, &oracle_params).verdict == want
                });
                let small = gen::lower(&spec.name, seed, &params, &shrunk);
                if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                    std::fs::write(dir.join(format!("shrunk_{seed}.json")), small.to_json())
                }) {
                    eprintln!("error: --shrink-bugs: {e}");
                    return ExitCode::FAILURE;
                }
            }
            bugs.push(spec);
        }
        lines.push(verdict.to_json());
    }
    let body = lines.join("\n") + "\n";
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: --out: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        print!("{body}");
    }
    if bugs.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} of {count} seeds produced unclassified disagreements",
            bugs.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_verify(name: &str, rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((_, prog)) = registry(args.np).into_iter().find(|(n, _)| n == name) else {
        eprintln!("unknown workload `{name}` — try `dampi-cli list`");
        return ExitCode::FAILURE;
    };
    let mut sim = SimConfig::new(args.np);
    if args.biased {
        sim = sim.with_policy(MatchPolicy::LowestRank);
    }
    if args.replay_vt.is_some() || args.replay_wall.is_some() {
        let mut budget = ReplayBudget::default();
        if let Some(vt) = args.replay_vt {
            budget = budget.with_max_virtual_time(vt);
        }
        if let Some(wall) = args.replay_wall {
            budget = budget.with_max_wall_clock(Duration::from_secs_f64(wall));
        }
        sim = sim.with_budget(budget);
    }
    if args.worker {
        // Internal mode: the process was spawned by a `--shards`
        // supervisor and serves replays over stdin/stdout.
        if args.isp || args.shards.is_some() || args.prune_static || args.cache.is_some() {
            eprintln!("error: --worker is an internal flag and composes with none of --isp/--shards/--prune-static/--cache");
            return ExitCode::FAILURE;
        }
        return run_worker_mode(name, prog.as_ref(), sim, &args);
    }
    if args.cache_readonly && args.cache.is_none() {
        eprintln!("error: --cache-readonly requires --cache (there is no store to protect)");
        return ExitCode::FAILURE;
    }
    if args.worker_fault.is_some() && args.shards.is_none() {
        eprintln!("error: --worker-fault requires --shards (it injects chaos into a shard worker)");
        return ExitCode::FAILURE;
    }
    if args.shards.is_some() {
        if args.isp {
            eprintln!("error: --shards is DAMPI-only (the centralized ISP baseline is the architecture sharding replaces)");
            return ExitCode::FAILURE;
        }
        if args.prune_static {
            eprintln!("error: --prune-static cannot combine with --shards yet (the plan is keyed to a supervisor-local free run)");
            return ExitCode::FAILURE;
        }
        if args.jobs.is_some() {
            eprintln!("error: --jobs and --shards are mutually exclusive (jobs are replay threads, shards are worker processes)");
            return ExitCode::FAILURE;
        }
    }
    if args.isp {
        if args.resume.is_some() || args.journal.is_some() {
            eprintln!("error: --resume/--journal are DAMPI-only (checkpointing lives in the distributed scheduler, not the ISP baseline)");
            return ExitCode::FAILURE;
        }
        if args.jobs.is_some() {
            eprintln!("error: --jobs is DAMPI-only (the ISP baseline is the centralized scheduler whose sequential-replay cost DAMPI avoids)");
            return ExitCode::FAILURE;
        }
        if args.metrics.is_some() || args.trace.is_some() || args.progress {
            eprintln!("error: --metrics/--trace/--progress are DAMPI-only (campaign observability instruments the distributed scheduler)");
            return ExitCode::FAILURE;
        }
        if args.prune_static {
            eprintln!("error: --prune-static is DAMPI-only (the prune plan feeds the distributed scheduler's frontier, which the ISP baseline does not have)");
            return ExitCode::FAILURE;
        }
        if args.cache.is_some() {
            eprintln!("error: --cache is DAMPI-only (the replay cache is addressed by the distributed scheduler's decision prefixes, which the ISP baseline does not produce)");
            return ExitCode::FAILURE;
        }
        if args.replay_cost_ms > 0 {
            eprintln!("error: --replay-cost-ms is DAMPI-only (it prices the distributed scheduler's replay launches)");
            return ExitCode::FAILURE;
        }
        let mut v = IspVerifier::new(sim);
        v.cfg.max_interleavings = Some(args.max);
        let report = v.verify(prog.as_ref());
        if args.json {
            println!("{}", report.to_json());
        } else {
            println!("{report}");
        }
        return if report.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    // Default to every available core: each frontier fork is an
    // independent simulation and the merge is deterministic either way.
    // Under --shards the parallelism lives in the worker fleet, so the
    // in-process thread pool stays at 1.
    let jobs = if args.shards.is_some() {
        1
    } else {
        args.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    };
    let mut cfg = DampiConfig::default()
        .with_clock_mode(args.clock)
        .with_max_interleavings(args.max)
        .with_jobs(jobs)
        .with_replay_cost(Duration::from_millis(args.replay_cost_ms));
    if let Some(k) = args.k {
        cfg = cfg.with_bound(MixingBound::K(k));
    }
    if args.deferred {
        cfg = cfg.with_deferred_clock_sync();
    }
    if let Some(path) = &args.journal {
        cfg = cfg.with_journal(path.clone());
    }
    let mut verifier = DampiVerifier::with_config(sim, cfg);
    // Observability is opt-in: the metrics arc exists iff a snapshot file
    // or live progress was requested, so the default path stays untouched.
    let metrics = if args.metrics.is_some() || args.progress {
        let m = CampaignMetrics::new();
        verifier = verifier.with_metrics(m.clone());
        Some(m)
    } else {
        None
    };
    if let Some(path) = &args.trace {
        match CampaignTrace::to_file(path) {
            Ok(t) => verifier = verifier.with_trace(t),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let mut prune_run = None;
    if args.prune_static {
        if args.resume.is_some() {
            eprintln!("error: --prune-static cannot join a resumed campaign (the plan is keyed to a fresh free run, not the journaled one)");
            return ExitCode::FAILURE;
        }
        let spec = match load_protocol(&args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The traced free run feeds the static analysis *and* becomes the
        // campaign's SELF_RUN, so the plan prunes exactly the frontier
        // that run produced.
        let (events, run) = verifier.traced_run(prog.as_ref());
        let analysis = match dampi::analysis::analyze_with_protocol(
            prog.name(),
            args.np,
            &events,
            &run,
            spec.as_ref(),
        ) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: --protocol: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(p) = &analysis.protocol {
            let violations = p.l006 + p.l007 + p.l008;
            if violations > 0 {
                // A non-conformant free run contributes no pruning facts
                // (they are gated on every rank conforming), so the
                // campaign falls back to the plan's v1/v2 passes.
                eprintln!(
                    "prune-static: protocol `{}` NOT conformant ({violations} violation(s)) — protocol facts withheld",
                    p.spec_name
                );
            }
        }
        let plan = analysis.prune_plan();
        eprintln!(
            "prune-static: {} infeasible alternate(s) (+{} refined, +{} protocol), {} deterministic wildcard(s) (+{} refined, +{} protocol), {} symmetry orbit(s) ({} oblivious receive(s))",
            plan.infeasible.len(),
            plan.refined_infeasible.len(),
            plan.protocol_infeasible.len(),
            plan.deterministic.len(),
            plan.refined_deterministic.len(),
            plan.protocol_deterministic.len(),
            plan.orbits.len(),
            plan.oblivious_receives.len()
        );
        verifier = verifier.with_prune_plan(plan);
        prune_run = Some(run);
    } else if args.protocol.is_some() {
        eprintln!("error: verify --protocol requires --prune-static (the spec's only role in verification is protocol-guided pruning)");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &args.cache {
        // Keyed after the prune plan is installed: a different plan is a
        // different keyspace directory, so plan changes can never reuse a
        // stale subtree. (An empty plan is dropped by with_prune_plan and
        // shares the no-plan keyspace — the exploration is identical.)
        let plan = dampi::core::cache::plan_digest(verifier.prune.as_deref());
        match ReplayCache::open(dir, config_digest(name, &args), plan, args.cache_readonly) {
            Ok(c) => verifier = verifier.with_cache(Arc::new(c)),
            Err(e) => {
                eprintln!("error: cannot open replay cache {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let progress_reporter = args.progress.then(|| {
        let m = metrics.clone().expect("progress implies metrics");
        let max = args.max;
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // One line every 500ms until the campaign signals completion.
            while stop_rx.recv_timeout(Duration::from_millis(500)).is_err() {
                let p = m.progress();
                let eta = p
                    .eta_s(Some(max))
                    .map_or_else(|| "?".to_owned(), |s| format!("{s:.0}s"));
                eprintln!(
                    "progress: {} replays committed ({:.1}/s), frontier {}, eta {eta}",
                    p.committed,
                    p.rate(),
                    p.frontier
                );
            }
        });
        (stop_tx, handle)
    });
    let report = if let Some(shards) = args.shards {
        match run_sharded(name, prog.as_ref(), &verifier, shards, &args) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: sharded campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match (&args.resume, prune_run) {
            (Some(journal), _) => match verifier.verify_resumed(prog.as_ref(), journal) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: cannot resume from {}: {e}", journal.display());
                    return ExitCode::FAILURE;
                }
            },
            (None, Some(run)) => verifier.verify_with_first_run(prog.as_ref(), run),
            (None, None) => verifier.verify(prog.as_ref()),
        }
    };
    if let Some((stop_tx, handle)) = progress_reporter {
        let _ = stop_tx.send(());
        let _ = handle.join();
    }
    if let (Some(m), Some(path)) = (&metrics, &args.metrics) {
        let clock = match args.clock {
            ClockMode::Lamport => "lamport",
            ClockMode::Vector => "vector",
        };
        let snap = m.snapshot(name, args.np, clock, args.shards.unwrap_or(jobs));
        let json = serde_json::to_string_pretty(&snap).expect("metrics snapshot serializes");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: cannot write metrics file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// The `--worker` servant: serve replays over stdin/stdout until the
/// supervisor shuts the pipe. Never prints to stdout (that is the frame
/// channel); diagnostics go to stderr, which the supervisor inherits.
fn run_worker_mode(name: &str, prog: &dyn MpiProgram, sim: SimConfig, args: &Args) -> ExitCode {
    let fault = match args.worker_fault.as_deref().map(WorkerFaultPlan::parse) {
        None => None,
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => {
            eprintln!("error: --worker-fault: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = DampiConfig::default()
        .with_clock_mode(args.clock)
        .with_max_interleavings(args.max)
        .with_replay_cost(Duration::from_millis(args.replay_cost_ms));
    if let Some(k) = args.k {
        cfg = cfg.with_bound(MixingBound::K(k));
    }
    if args.deferred {
        cfg = cfg.with_deferred_clock_sync();
    }
    // Replay-parity knobs the supervisor's workers must share; everything
    // else in ExploreOptions is supervisor-side state a worker never has.
    let opts = ExploreOptions {
        divergence_retries: cfg.divergence_retries,
        retry_backoff: cfg.retry_backoff,
        ..ExploreOptions::default()
    };
    let wcfg = shard::WorkerConfig {
        heartbeat_interval: Duration::from_millis(args.worker_beat_ms),
        config_digest: config_digest(name, args),
        fault,
        hard_exit: true,
        cancel: Arc::new(AtomicBool::new(false)),
    };
    let verifier = DampiVerifier::with_config(sim, cfg);
    match shard::run_worker(std::io::stdin(), std::io::stdout(), &wcfg, &opts, |ds| {
        verifier.instrumented_run(prog, ds)
    }) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dampi worker: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Drive a `--shards N` campaign: spawn `dampi-cli verify … --worker`
/// processes via the supervisor, with SIGTERM wired to a graceful drain.
fn run_sharded(
    name: &str,
    prog: &dyn MpiProgram,
    verifier: &DampiVerifier,
    shards: usize,
    args: &Args,
) -> std::io::Result<dampi::core::VerificationReport> {
    let mut opts = ShardOptions {
        shards,
        config_digest: config_digest(name, args),
        ..ShardOptions::default()
    };
    if let Some(secs) = args.heartbeat_timeout {
        opts.heartbeat_timeout = Duration::from_secs_f64(secs);
    }
    if let Some(secs) = args.lease {
        opts.lease = Duration::from_secs_f64(secs);
    }
    if let Some(k) = args.max_attempts {
        opts.max_attempts = k;
    }
    if let Some(spec) = &args.worker_fault {
        let plan = WorkerFaultPlan::parse(spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        opts.fault = Some(plan);
        opts.fault_slot = args.fault_slot;
    }
    #[cfg(unix)]
    {
        opts.drain = Some(drain::install_sigterm());
    }
    let exe = std::env::current_exe()?;
    let forwarded = semantic_args(name, args);
    // Beacons at a quarter of the silence threshold: three beats can be
    // lost to scheduling noise before the detector fires.
    let beat_ms = (opts.heartbeat_timeout.as_millis() as u64 / 4).clamp(10, 500);
    let fault_spec = args.worker_fault.clone();
    let replay_cost_ms = args.replay_cost_ms;
    let launcher = ProcessWorkerLauncher::new(move |_slot, fault| {
        let mut c = Command::new(&exe);
        c.args(&forwarded)
            .arg("--worker")
            .arg("--worker-beat-ms")
            .arg(beat_ms.to_string());
        if replay_cost_ms > 0 {
            // Launch pricing is plumbing, not semantics: it is excluded
            // from the config digest, but every worker must still charge
            // it or sharded wall-clock figures lose their meaning.
            c.arg("--replay-cost-ms").arg(replay_cost_ms.to_string());
        }
        if fault.is_some() {
            if let Some(spec) = &fault_spec {
                c.arg("--worker-fault").arg(spec);
            }
        }
        c
    });
    match &args.resume {
        Some(journal) => verifier.verify_sharded_resumed(prog, &launcher, &opts, journal),
        None => verifier.verify_sharded(prog, &launcher, &opts),
    }
}

fn cmd_analyze(name: &str, rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((_, prog)) = registry(args.np).into_iter().find(|(n, _)| n == name) else {
        eprintln!("unknown workload `{name}` — try `dampi-cli list`");
        return ExitCode::FAILURE;
    };
    let mut sim = SimConfig::new(args.np);
    if args.biased {
        sim = sim.with_policy(MatchPolicy::LowestRank);
    }
    let spec = match load_protocol(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = DampiConfig::default().with_clock_mode(args.clock);
    let verifier = DampiVerifier::with_config(sim, cfg);
    let report = match dampi::analysis::analyze_program_with_protocol(
        &verifier,
        prog.as_ref(),
        spec.as_ref(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: --protocol: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.error_lints() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_overhead(rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>7}",
        "program", "slowdown", "R*", "C-leak", "R-leak"
    );
    for (name, prog) in registry(args.np) {
        let sim = SimConfig::new(args.np);
        let native = run_native(&sim, prog.as_ref());
        if !native.succeeded() {
            println!("{name:<14} (native run fails: intentional-bug workload, skipped)");
            continue;
        }
        let inst =
            DampiVerifier::new(sim).instrumented_run(prog.as_ref(), &DecisionSet::self_run());
        if !inst.outcome.succeeded() {
            println!("{name:<14} (instrumented run fails, skipped)");
            continue;
        }
        println!(
            "{name:<14} {:>8.2}x {:>9} {:>7} {:>7}",
            inst.outcome.makespan / native.makespan.max(1e-12),
            inst.stats.wildcards,
            if inst.outcome.leaks.has_comm_leak() {
                "Yes"
            } else {
                "No"
            },
            if inst.outcome.leaks.has_request_leak() {
                "Yes"
            } else {
                "No"
            },
        );
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dampi-cli list\n  dampi-cli verify <workload> [--np N] [--k K] [--max M] \
         [--clock lamport|vector] [--isp] [--deferred-clock] [--unbiased] [--json]\n    \
         [--jobs N]            parallel replay workers (default: all cores; result is\n    \
                               identical to --jobs 1, only faster)\n    \
         [--journal PATH]      checkpoint the exploration frontier after every run\n    \
         [--resume PATH]       continue an interrupted campaign from its journal\n    \
         [--replay-vt SECS]    kill any replay exceeding this virtual-time budget\n    \
         [--replay-wall SECS]  kill any replay exceeding this wall-clock budget\n    \
         [--metrics PATH]      write a campaign metrics snapshot (JSON) after the run\n    \
         [--trace PATH]        stream a schema-versioned JSONL campaign trace\n    \
         [--progress]          print a live progress line (replays/sec, frontier, ETA)\n    \
         [--prune-static]      run the static pre-analysis first and prune the frontier\n    \
                               (same error set, fewer replays)\n    \
         [--protocol SPEC]     with --prune-static: also check the free run against a\n    \
                               session-protocol spec (path or committed name) and prune\n    \
                               wildcard alternates the protocol rules out\n    \
         [--cache DIR]         content-addressed replay-result cache: warm reruns of an\n    \
                               unchanged workload reuse committed subtrees byte-for-byte\n    \
         [--cache-readonly]    consult the cache but never write or evict entries\n    \
         [--replay-cost-ms N]  charge every *executed* replay a simulated MPI job-launch\n    \
                               latency (cache hits are free; wall-clock only, results\n    \
                               and cache keys unchanged)\n    \
         [--shards N]          shard replays across N worker *processes* under a\n    \
                               fault-tolerant supervisor; byte-identical to --jobs 1.\n    \
                               SIGTERM drains gracefully (checkpoint via --journal)\n    \
         [--heartbeat-timeout SECS]  declare a silent worker lost (default 2)\n    \
         [--lease SECS]        declare a wedged-but-chatty worker lost (default 30)\n    \
         [--max-attempts K]    quarantine a subtree after K lost dispatches (default 3)\n    \
         [--worker-fault SPEC] chaos-inject one worker: kind:nth[:always], kind one of\n    \
                               kill|exit-before-ack|stall-heartbeats|wedge|corrupt-result\n  \
         dampi-cli analyze <workload> [--np N] [--json] [--protocol SPEC]\n    \
                               static pre-replay analysis: match sets, prunable\n    \
                               alternates, symmetry orbits, definite-bug lints\n    \
                               (exit 2 when an error-severity lint fires);\n    \
                               --protocol adds L006–L008 session-conformance lints\n    \
                               against a spec file or committed spec name\n  \
         dampi-cli fuzz [--seed S] [--count N] [--max M] [--escalate-k K]\n    \
                        [--out PATH]          write verdict JSONL here instead of stdout\n    \
                        [--emit-specs DIR]    also write each generated program spec\n    \
                        [--shrink-bugs DIR]   minimise any unclassified disagreement to DIR\n    \
                        [--protocol-templates N]  known-answer corpus for the session-\n    \
                               conformance checker: N seeded protocol templates with\n    \
                               injected L006/L007/L008 violations (exit 1 on any miss)\n    \
                               seeded differential fuzzing: generate N programs, verify\n    \
                               each under ISP / vector / Lamport(k) / both piggyback\n    \
                               mechanisms, and classify every disagreement; output is\n    \
                               byte-identical for equal flags (exit 1 on a tool bug)\n  \
         dampi-cli overhead [--np N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => cmd_list(),
            "verify" => match rest.split_first() {
                Some((name, flags)) => cmd_verify(name, flags),
                None => usage(),
            },
            "analyze" => match rest.split_first() {
                Some((name, flags)) => cmd_analyze(name, flags),
                None => usage(),
            },
            "fuzz" => cmd_fuzz(rest),
            "overhead" => cmd_overhead(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
