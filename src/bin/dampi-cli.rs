//! `dampi-cli` — drive the DAMPI verifier from the command line.
//!
//! ```text
//! dampi-cli list
//! dampi-cli verify <workload> [--np N] [--k K] [--max M] [--clock lamport|vector]
//!                             [--jobs N] [--isp] [--deferred-clock]
//!                             [--journal PATH] [--resume PATH]
//!                             [--replay-vt SECS] [--replay-wall SECS]
//!                             [--metrics PATH] [--trace PATH] [--progress]
//!                             [--prune-static]
//! dampi-cli analyze <workload> [--np N] [--json]   # static pre-replay analysis
//! dampi-cli overhead [--np N]           # Table II style slowdown census
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dampi::core::{
    CampaignMetrics, CampaignTrace, ClockMode, DampiConfig, DampiVerifier, DecisionSet, MixingBound,
};
use dampi::isp::IspVerifier;
use dampi::mpi::{run_native, MatchPolicy, MpiProgram, ReplayBudget, SimConfig};
use dampi::workloads::adlb::{Adlb, AdlbParams};
use dampi::workloads::matmul::{Matmul, MatmulParams};
use dampi::workloads::parmetis::{Parmetis, ParmetisParams};
use dampi::workloads::{nas, patterns, spec};

fn registry(np: usize) -> Vec<(String, Box<dyn MpiProgram>)> {
    let mut v: Vec<(String, Box<dyn MpiProgram>)> = vec![
        (
            "matmul".into(),
            Box::new(Matmul::new(MatmulParams::default())),
        ),
        (
            "parmetis".into(),
            Box::new(Parmetis::new(ParmetisParams::nominal(np, 0.2))),
        ),
        ("adlb".into(), Box::new(Adlb::new(AdlbParams::default()))),
        ("fig3".into(), Box::new(patterns::fig3())),
        ("racers".into(), Box::new(patterns::symmetric_racers())),
        ("fig4".into(), Box::new(patterns::fig4_cross_coupled())),
        ("fig10".into(), Box::new(patterns::fig10_unsafe())),
        (
            "deadlock".into(),
            Box::new(patterns::deadlock_on_alternate_schedule()),
        ),
        ("leaky".into(), Box::new(patterns::leaky_program())),
        (
            "collective_mismatch".into(),
            Box::new(patterns::collective_mismatch()),
        ),
        ("request_leak".into(), Box::new(patterns::request_leak())),
        (
            "stuck_wildcard".into(),
            Box::new(patterns::stuck_wildcard()),
        ),
        (
            "matmul_ack".into(),
            Box::new(Matmul::new(MatmulParams {
                ack_results: true,
                ..MatmulParams::default()
            })),
        ),
    ];
    for (name, prog) in nas::all_nominal() {
        v.push((name.to_lowercase(), prog));
    }
    for (name, prog) in spec::all_nominal() {
        v.push((name.to_lowercase(), prog));
    }
    v
}

struct Args {
    np: usize,
    k: Option<u32>,
    max: u64,
    clock: ClockMode,
    isp: bool,
    deferred: bool,
    biased: bool,
    json: bool,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    replay_vt: Option<f64>,
    replay_wall: Option<f64>,
    jobs: Option<usize>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    progress: bool,
    prune_static: bool,
}

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut a = Args {
        np: 4,
        k: None,
        max: 10_000,
        clock: ClockMode::Lamport,
        isp: false,
        deferred: false,
        biased: true,
        json: false,
        journal: None,
        resume: None,
        replay_vt: None,
        replay_wall: None,
        jobs: None,
        metrics: None,
        trace: None,
        progress: false,
        prune_static: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--np" => a.np = val("--np")?.parse().map_err(|e| format!("--np: {e}"))?,
            "--k" => a.k = Some(val("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--max" => a.max = val("--max")?.parse().map_err(|e| format!("--max: {e}"))?,
            "--clock" => {
                a.clock = match val("--clock")?.as_str() {
                    "lamport" => ClockMode::Lamport,
                    "vector" => ClockMode::Vector,
                    other => return Err(format!("unknown clock mode `{other}`")),
                }
            }
            "--isp" => a.isp = true,
            "--deferred-clock" => a.deferred = true,
            "--unbiased" => a.biased = false,
            "--json" => a.json = true,
            "--jobs" => {
                let jobs: usize = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                a.jobs = Some(jobs);
            }
            "--journal" => a.journal = Some(PathBuf::from(val("--journal")?)),
            "--resume" => a.resume = Some(PathBuf::from(val("--resume")?)),
            "--metrics" => a.metrics = Some(PathBuf::from(val("--metrics")?)),
            "--trace" => a.trace = Some(PathBuf::from(val("--trace")?)),
            "--progress" => a.progress = true,
            "--prune-static" => a.prune_static = true,
            "--replay-vt" => {
                a.replay_vt = Some(
                    val("--replay-vt")?
                        .parse()
                        .map_err(|e| format!("--replay-vt: {e}"))?,
                );
            }
            "--replay-wall" => {
                a.replay_wall = Some(
                    val("--replay-wall")?
                        .parse()
                        .map_err(|e| format!("--replay-wall: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(a)
}

fn cmd_list() -> ExitCode {
    println!("available workloads:");
    for (name, _) in registry(4) {
        println!("  {name}");
    }
    ExitCode::SUCCESS
}

fn cmd_verify(name: &str, rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((_, prog)) = registry(args.np).into_iter().find(|(n, _)| n == name) else {
        eprintln!("unknown workload `{name}` — try `dampi-cli list`");
        return ExitCode::FAILURE;
    };
    let mut sim = SimConfig::new(args.np);
    if args.biased {
        sim = sim.with_policy(MatchPolicy::LowestRank);
    }
    if args.replay_vt.is_some() || args.replay_wall.is_some() {
        let mut budget = ReplayBudget::default();
        if let Some(vt) = args.replay_vt {
            budget = budget.with_max_virtual_time(vt);
        }
        if let Some(wall) = args.replay_wall {
            budget = budget.with_max_wall_clock(Duration::from_secs_f64(wall));
        }
        sim = sim.with_budget(budget);
    }
    if args.isp {
        if args.resume.is_some() || args.journal.is_some() {
            eprintln!("error: --resume/--journal are DAMPI-only (checkpointing lives in the distributed scheduler, not the ISP baseline)");
            return ExitCode::FAILURE;
        }
        if args.jobs.is_some() {
            eprintln!("error: --jobs is DAMPI-only (the ISP baseline is the centralized scheduler whose sequential-replay cost DAMPI avoids)");
            return ExitCode::FAILURE;
        }
        if args.metrics.is_some() || args.trace.is_some() || args.progress {
            eprintln!("error: --metrics/--trace/--progress are DAMPI-only (campaign observability instruments the distributed scheduler)");
            return ExitCode::FAILURE;
        }
        if args.prune_static {
            eprintln!("error: --prune-static is DAMPI-only (the prune plan feeds the distributed scheduler's frontier, which the ISP baseline does not have)");
            return ExitCode::FAILURE;
        }
        let mut v = IspVerifier::new(sim);
        v.cfg.max_interleavings = Some(args.max);
        let report = v.verify(prog.as_ref());
        if args.json {
            println!("{}", report.to_json());
        } else {
            println!("{report}");
        }
        return if report.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    // Default to every available core: each frontier fork is an
    // independent simulation and the merge is deterministic either way.
    let jobs = args.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let mut cfg = DampiConfig::default()
        .with_clock_mode(args.clock)
        .with_max_interleavings(args.max)
        .with_jobs(jobs);
    if let Some(k) = args.k {
        cfg = cfg.with_bound(MixingBound::K(k));
    }
    if args.deferred {
        cfg = cfg.with_deferred_clock_sync();
    }
    if let Some(path) = &args.journal {
        cfg = cfg.with_journal(path.clone());
    }
    let mut verifier = DampiVerifier::with_config(sim, cfg);
    // Observability is opt-in: the metrics arc exists iff a snapshot file
    // or live progress was requested, so the default path stays untouched.
    let metrics = if args.metrics.is_some() || args.progress {
        let m = CampaignMetrics::new();
        verifier = verifier.with_metrics(m.clone());
        Some(m)
    } else {
        None
    };
    if let Some(path) = &args.trace {
        match CampaignTrace::to_file(path) {
            Ok(t) => verifier = verifier.with_trace(t),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let mut prune_run = None;
    if args.prune_static {
        if args.resume.is_some() {
            eprintln!("error: --prune-static cannot join a resumed campaign (the plan is keyed to a fresh free run, not the journaled one)");
            return ExitCode::FAILURE;
        }
        // The traced free run feeds the static analysis *and* becomes the
        // campaign's SELF_RUN, so the plan prunes exactly the frontier
        // that run produced.
        let (events, run) = verifier.traced_run(prog.as_ref());
        let analysis = dampi::analysis::analyze(prog.name(), args.np, &events, &run);
        let plan = analysis.prune_plan();
        eprintln!(
            "prune-static: {} infeasible alternate(s) (+{} refined), {} deterministic wildcard(s) (+{} refined), {} symmetry orbit(s) ({} oblivious receive(s))",
            plan.infeasible.len(),
            plan.refined_infeasible.len(),
            plan.deterministic.len(),
            plan.refined_deterministic.len(),
            plan.orbits.len(),
            plan.oblivious_receives.len()
        );
        verifier = verifier.with_prune_plan(plan);
        prune_run = Some(run);
    }
    let progress_reporter = args.progress.then(|| {
        let m = metrics.clone().expect("progress implies metrics");
        let max = args.max;
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // One line every 500ms until the campaign signals completion.
            while stop_rx.recv_timeout(Duration::from_millis(500)).is_err() {
                let p = m.progress();
                let eta = p
                    .eta_s(Some(max))
                    .map_or_else(|| "?".to_owned(), |s| format!("{s:.0}s"));
                eprintln!(
                    "progress: {} replays committed ({:.1}/s), frontier {}, eta {eta}",
                    p.committed,
                    p.rate(),
                    p.frontier
                );
            }
        });
        (stop_tx, handle)
    });
    let report = match (&args.resume, prune_run) {
        (Some(journal), _) => match verifier.verify_resumed(prog.as_ref(), journal) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", journal.display());
                return ExitCode::FAILURE;
            }
        },
        (None, Some(run)) => verifier.verify_with_first_run(prog.as_ref(), run),
        (None, None) => verifier.verify(prog.as_ref()),
    };
    if let Some((stop_tx, handle)) = progress_reporter {
        let _ = stop_tx.send(());
        let _ = handle.join();
    }
    if let (Some(m), Some(path)) = (&metrics, &args.metrics) {
        let clock = match args.clock {
            ClockMode::Lamport => "lamport",
            ClockMode::Vector => "vector",
        };
        let snap = m.snapshot(name, args.np, clock, jobs);
        let json = serde_json::to_string_pretty(&snap).expect("metrics snapshot serializes");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: cannot write metrics file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_analyze(name: &str, rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((_, prog)) = registry(args.np).into_iter().find(|(n, _)| n == name) else {
        eprintln!("unknown workload `{name}` — try `dampi-cli list`");
        return ExitCode::FAILURE;
    };
    let mut sim = SimConfig::new(args.np);
    if args.biased {
        sim = sim.with_policy(MatchPolicy::LowestRank);
    }
    let cfg = DampiConfig::default().with_clock_mode(args.clock);
    let verifier = DampiVerifier::with_config(sim, cfg);
    let report = dampi::analysis::analyze_program(&verifier, prog.as_ref());
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if report.error_lints() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_overhead(rest: &[String]) -> ExitCode {
    let args = match parse_flags(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>7}",
        "program", "slowdown", "R*", "C-leak", "R-leak"
    );
    for (name, prog) in registry(args.np) {
        let sim = SimConfig::new(args.np);
        let native = run_native(&sim, prog.as_ref());
        if !native.succeeded() {
            println!("{name:<14} (native run fails: intentional-bug workload, skipped)");
            continue;
        }
        let inst =
            DampiVerifier::new(sim).instrumented_run(prog.as_ref(), &DecisionSet::self_run());
        if !inst.outcome.succeeded() {
            println!("{name:<14} (instrumented run fails, skipped)");
            continue;
        }
        println!(
            "{name:<14} {:>8.2}x {:>9} {:>7} {:>7}",
            inst.outcome.makespan / native.makespan.max(1e-12),
            inst.stats.wildcards,
            if inst.outcome.leaks.has_comm_leak() {
                "Yes"
            } else {
                "No"
            },
            if inst.outcome.leaks.has_request_leak() {
                "Yes"
            } else {
                "No"
            },
        );
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dampi-cli list\n  dampi-cli verify <workload> [--np N] [--k K] [--max M] \
         [--clock lamport|vector] [--isp] [--deferred-clock] [--unbiased] [--json]\n    \
         [--jobs N]            parallel replay workers (default: all cores; result is\n    \
                               identical to --jobs 1, only faster)\n    \
         [--journal PATH]      checkpoint the exploration frontier after every run\n    \
         [--resume PATH]       continue an interrupted campaign from its journal\n    \
         [--replay-vt SECS]    kill any replay exceeding this virtual-time budget\n    \
         [--replay-wall SECS]  kill any replay exceeding this wall-clock budget\n    \
         [--metrics PATH]      write a campaign metrics snapshot (JSON) after the run\n    \
         [--trace PATH]        stream a schema-versioned JSONL campaign trace\n    \
         [--progress]          print a live progress line (replays/sec, frontier, ETA)\n    \
         [--prune-static]      run the static pre-analysis first and prune the frontier\n    \
                               (same error set, fewer replays)\n  \
         dampi-cli analyze <workload> [--np N] [--json]\n    \
                               static pre-replay analysis: match sets, prunable\n    \
                               alternates, symmetry orbits, definite-bug lints\n    \
                               (exit 2 when an error-severity lint fires)\n  \
         dampi-cli overhead [--np N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => cmd_list(),
            "verify" => match rest.split_first() {
                Some((name, flags)) => cmd_verify(name, flags),
                None => usage(),
            },
            "analyze" => match rest.split_first() {
                Some((name, flags)) => cmd_analyze(name, flags),
                None => usage(),
            },
            "overhead" => cmd_overhead(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
