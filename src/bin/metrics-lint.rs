//! `metrics-lint` — validate `dampi-cli verify --metrics` snapshots.
//!
//! ```text
//! metrics-lint <snapshot.json>... [--expect-semantic-match]
//! ```
//!
//! Checks every file against the schema and its internal invariants:
//!
//! * `schema` equals the supported version and the `semantic` and
//!   `wall_clock` sections are present;
//! * `replays_started == replays_committed + replays_aborted` (every
//!   dispatched replay is accounted for exactly once);
//! * every histogram's `count` equals the sum of its bucket counts plus
//!   `overflow`;
//! * `wall_clock.deterministic` is `false` (the section is honestly
//!   labelled);
//! * the `wall_clock.shard` fleet counters are present and consistent:
//!   `workers_lost <= workers_spawned` and
//!   `workers_restarted <= workers_lost`;
//! * the `cache` ledger is present and consistent: with the cache enabled
//!   every committed subtree was tallied exactly once on the commit path
//!   (`hits + misses == replays_committed`, so hits can never outnumber
//!   commits), `stores <= misses` (only misses populate the store), and
//!   with the cache disabled all four counters are zero.
//!
//! With `--expect-semantic-match`, additionally requires the `semantic`
//! section of every file to be byte-identical once serialized — the
//! determinism contract for snapshots of the same campaign taken at
//! different `--jobs` levels.

use std::path::PathBuf;
use std::process::ExitCode;

use dampi::core::METRICS_SCHEMA_VERSION;
use serde_json::Value;

fn fail(file: &str, msg: &str) -> String {
    format!("{file}: {msg}")
}

fn require_u64(obj: &Value, key: &str, file: &str, errs: &mut Vec<String>) -> u64 {
    match obj.get(key).and_then(Value::as_u64) {
        Some(v) => v,
        None => {
            errs.push(fail(file, &format!("missing or non-integer `{key}`")));
            0
        }
    }
}

fn check_histogram(h: &Value, name: &str, file: &str, errs: &mut Vec<String>) {
    let Some(buckets) = h.get("buckets").and_then(Value::as_array) else {
        errs.push(fail(file, &format!("histogram `{name}` has no buckets")));
        return;
    };
    let in_buckets: u64 = buckets
        .iter()
        .filter_map(|b| b.get("n").and_then(Value::as_u64))
        .sum();
    let overflow = require_u64(h, "overflow", file, errs);
    let count = require_u64(h, "count", file, errs);
    if in_buckets + overflow != count {
        errs.push(fail(
            file,
            &format!(
                "histogram `{name}`: bucket sum {in_buckets} + overflow {overflow} != count {count}"
            ),
        ));
    }
}

fn check_file(path: &PathBuf, errs: &mut Vec<String>) -> Option<String> {
    let file = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errs.push(fail(&file, &format!("unreadable: {e}")));
            return None;
        }
    };
    let v: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            errs.push(fail(&file, &format!("invalid JSON: {e}")));
            return None;
        }
    };
    match v.get("schema").and_then(Value::as_u64) {
        Some(s) if s == u64::from(METRICS_SCHEMA_VERSION) => {}
        Some(s) => {
            errs.push(fail(
                &file,
                &format!("schema {s} unsupported (expected {METRICS_SCHEMA_VERSION})"),
            ));
            return None;
        }
        None => {
            errs.push(fail(&file, "missing `schema`"));
            return None;
        }
    }
    let Some(semantic) = v.get("semantic") else {
        errs.push(fail(&file, "missing `semantic` section"));
        return None;
    };
    let Some(wall) = v.get("wall_clock") else {
        errs.push(fail(&file, "missing `wall_clock` section"));
        return None;
    };
    if wall.get("deterministic").and_then(Value::as_bool) != Some(false) {
        errs.push(fail(&file, "`wall_clock.deterministic` must be false"));
    }
    let started = require_u64(wall, "replays_started", &file, errs);
    let committed = require_u64(wall, "replays_committed", &file, errs);
    let aborted = require_u64(wall, "replays_aborted", &file, errs);
    if started != committed + aborted {
        errs.push(fail(
            &file,
            &format!("replays_started {started} != committed {committed} + aborted {aborted}"),
        ));
    }
    for name in ["replay_wall_us", "journal_write_us"] {
        match wall.get(name) {
            Some(h) => check_histogram(h, name, &file, errs),
            None => errs.push(fail(&file, &format!("missing histogram `{name}`"))),
        }
    }
    match wall.get("shard") {
        Some(shard) => {
            let spawned = require_u64(shard, "workers_spawned", &file, errs);
            let lost = require_u64(shard, "workers_lost", &file, errs);
            let restarted = require_u64(shard, "workers_restarted", &file, errs);
            require_u64(shard, "subtrees_redispatched", &file, errs);
            require_u64(shard, "quarantined", &file, errs);
            // Every loss names a previously spawned incarnation, and every
            // restart answers a loss — violations mean the supervisor's
            // ledger double-counted a failure.
            if lost > spawned {
                errs.push(fail(
                    &file,
                    &format!("shard: workers_lost {lost} > workers_spawned {spawned}"),
                ));
            }
            if restarted > lost {
                errs.push(fail(
                    &file,
                    &format!("shard: workers_restarted {restarted} > workers_lost {lost}"),
                ));
            }
        }
        None => errs.push(fail(&file, "missing `wall_clock.shard` section")),
    }
    match v.get("cache") {
        Some(cache) => {
            let enabled = match cache.get("enabled").and_then(Value::as_bool) {
                Some(b) => b,
                None => {
                    errs.push(fail(&file, "missing or non-bool `cache.enabled`"));
                    false
                }
            };
            if cache.get("readonly").and_then(Value::as_bool).is_none() {
                errs.push(fail(&file, "missing or non-bool `cache.readonly`"));
            }
            let hits = require_u64(cache, "hits", &file, errs);
            let misses = require_u64(cache, "misses", &file, errs);
            let stores = require_u64(cache, "stores", &file, errs);
            let stale = require_u64(cache, "stale", &file, errs);
            if enabled {
                // Hits and misses are tallied only on the deterministic
                // commit path, so together they account for every
                // committed subtree exactly once — the invariant that
                // makes the hit rate identical at any --jobs/--shards.
                if hits + misses != committed {
                    errs.push(fail(
                        &file,
                        &format!(
                            "cache: hits {hits} + misses {misses} != replays_committed {committed}"
                        ),
                    ));
                }
                if stores > misses {
                    errs.push(fail(
                        &file,
                        &format!("cache: stores {stores} > misses {misses}"),
                    ));
                }
            } else if hits + misses + stores + stale != 0 {
                errs.push(fail(
                    &file,
                    "cache disabled but hits/misses/stores/stale not all zero",
                ));
            }
        }
        None => errs.push(fail(&file, "missing `cache` section")),
    }
    // Canonical serialization for the cross-file determinism comparison.
    Some(serde_json::to_string(semantic).expect("reserializes"))
}

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut expect_match = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-semantic-match" => expect_match = true,
            "--help" | "-h" => {
                eprintln!("usage: metrics-lint <snapshot.json>... [--expect-semantic-match]");
                return ExitCode::FAILURE;
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if files.is_empty() {
        eprintln!("usage: metrics-lint <snapshot.json>... [--expect-semantic-match]");
        return ExitCode::FAILURE;
    }
    let mut errs: Vec<String> = Vec::new();
    let semantics: Vec<(String, Option<String>)> = files
        .iter()
        .map(|p| (p.display().to_string(), check_file(p, &mut errs)))
        .collect();
    if expect_match {
        let mut valid = semantics.iter().filter_map(|(f, s)| Some((f, s.as_ref()?)));
        if let Some((first_file, first)) = valid.next() {
            for (file, s) in valid {
                if s != first {
                    errs.push(format!(
                        "{file}: semantic section differs from {first_file} (determinism contract violated)"
                    ));
                }
            }
        }
    }
    if errs.is_empty() {
        println!("metrics-lint: {} file(s) ok", files.len());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("metrics-lint: {e}");
        }
        ExitCode::FAILURE
    }
}
