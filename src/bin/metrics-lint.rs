//! `metrics-lint` — validate `dampi-cli verify --metrics` snapshots and
//! `dampi-cli analyze --json` reports.
//!
//! ```text
//! metrics-lint <snapshot.json>... [--expect-semantic-match]
//! metrics-lint --analysis <report.json>...
//! ```
//!
//! Checks every metrics file against the schema and its internal
//! invariants:
//!
//! * `schema` equals the supported version and the `semantic` and
//!   `wall_clock` sections are present;
//! * `replays_started == replays_committed + replays_aborted` (every
//!   dispatched replay is accounted for exactly once);
//! * every histogram's `count` equals the sum of its bucket counts plus
//!   `overflow`;
//! * `wall_clock.deterministic` is `false` (the section is honestly
//!   labelled);
//! * the `wall_clock.shard` fleet counters are present and consistent:
//!   `workers_lost <= workers_spawned` and
//!   `workers_restarted <= workers_lost`;
//! * the `cache` ledger is present and consistent: with the cache enabled
//!   every committed subtree was tallied exactly once on the commit path
//!   (`hits + misses == replays_committed`, so hits can never outnumber
//!   commits), `stores <= misses` (only misses populate the store), and
//!   with the cache disabled all four counters are zero.
//!
//! With `--expect-semantic-match`, additionally requires the `semantic`
//! section of every file to be byte-identical once serialized — the
//! determinism contract for snapshots of the same campaign taken at
//! different `--jobs` levels.
//!
//! With `--analysis`, every file is instead validated as an analyzer
//! report (`analyze --json`, schema v2): all required keys present,
//! `plan_version` current, every lint carrying exactly the stable
//! fields, and the `protocol` block — when present — internally
//! consistent (hex digest, per-rank status vector, L006–L008 counts
//! agreeing with the lint list, and pruning facts withheld unless every
//! rank is conformant).

use std::path::PathBuf;
use std::process::ExitCode;

use dampi::analysis::ANALYSIS_SCHEMA_VERSION;
use dampi::core::prune::PRUNE_PLAN_VERSION;
use dampi::core::METRICS_SCHEMA_VERSION;
use serde_json::Value;

fn fail(file: &str, msg: &str) -> String {
    format!("{file}: {msg}")
}

fn require_u64(obj: &Value, key: &str, file: &str, errs: &mut Vec<String>) -> u64 {
    match obj.get(key).and_then(Value::as_u64) {
        Some(v) => v,
        None => {
            errs.push(fail(file, &format!("missing or non-integer `{key}`")));
            0
        }
    }
}

fn check_histogram(h: &Value, name: &str, file: &str, errs: &mut Vec<String>) {
    let Some(buckets) = h.get("buckets").and_then(Value::as_array) else {
        errs.push(fail(file, &format!("histogram `{name}` has no buckets")));
        return;
    };
    let in_buckets: u64 = buckets
        .iter()
        .filter_map(|b| b.get("n").and_then(Value::as_u64))
        .sum();
    let overflow = require_u64(h, "overflow", file, errs);
    let count = require_u64(h, "count", file, errs);
    if in_buckets + overflow != count {
        errs.push(fail(
            file,
            &format!(
                "histogram `{name}`: bucket sum {in_buckets} + overflow {overflow} != count {count}"
            ),
        ));
    }
}

fn check_file(path: &PathBuf, errs: &mut Vec<String>) -> Option<String> {
    let file = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errs.push(fail(&file, &format!("unreadable: {e}")));
            return None;
        }
    };
    let v: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            errs.push(fail(&file, &format!("invalid JSON: {e}")));
            return None;
        }
    };
    match v.get("schema").and_then(Value::as_u64) {
        Some(s) if s == u64::from(METRICS_SCHEMA_VERSION) => {}
        Some(s) => {
            errs.push(fail(
                &file,
                &format!("schema {s} unsupported (expected {METRICS_SCHEMA_VERSION})"),
            ));
            return None;
        }
        None => {
            errs.push(fail(&file, "missing `schema`"));
            return None;
        }
    }
    let Some(semantic) = v.get("semantic") else {
        errs.push(fail(&file, "missing `semantic` section"));
        return None;
    };
    let Some(wall) = v.get("wall_clock") else {
        errs.push(fail(&file, "missing `wall_clock` section"));
        return None;
    };
    if wall.get("deterministic").and_then(Value::as_bool) != Some(false) {
        errs.push(fail(&file, "`wall_clock.deterministic` must be false"));
    }
    let started = require_u64(wall, "replays_started", &file, errs);
    let committed = require_u64(wall, "replays_committed", &file, errs);
    let aborted = require_u64(wall, "replays_aborted", &file, errs);
    if started != committed + aborted {
        errs.push(fail(
            &file,
            &format!("replays_started {started} != committed {committed} + aborted {aborted}"),
        ));
    }
    for name in ["replay_wall_us", "journal_write_us"] {
        match wall.get(name) {
            Some(h) => check_histogram(h, name, &file, errs),
            None => errs.push(fail(&file, &format!("missing histogram `{name}`"))),
        }
    }
    match wall.get("shard") {
        Some(shard) => {
            let spawned = require_u64(shard, "workers_spawned", &file, errs);
            let lost = require_u64(shard, "workers_lost", &file, errs);
            let restarted = require_u64(shard, "workers_restarted", &file, errs);
            require_u64(shard, "subtrees_redispatched", &file, errs);
            require_u64(shard, "quarantined", &file, errs);
            // Every loss names a previously spawned incarnation, and every
            // restart answers a loss — violations mean the supervisor's
            // ledger double-counted a failure.
            if lost > spawned {
                errs.push(fail(
                    &file,
                    &format!("shard: workers_lost {lost} > workers_spawned {spawned}"),
                ));
            }
            if restarted > lost {
                errs.push(fail(
                    &file,
                    &format!("shard: workers_restarted {restarted} > workers_lost {lost}"),
                ));
            }
        }
        None => errs.push(fail(&file, "missing `wall_clock.shard` section")),
    }
    match v.get("cache") {
        Some(cache) => {
            let enabled = match cache.get("enabled").and_then(Value::as_bool) {
                Some(b) => b,
                None => {
                    errs.push(fail(&file, "missing or non-bool `cache.enabled`"));
                    false
                }
            };
            if cache.get("readonly").and_then(Value::as_bool).is_none() {
                errs.push(fail(&file, "missing or non-bool `cache.readonly`"));
            }
            let hits = require_u64(cache, "hits", &file, errs);
            let misses = require_u64(cache, "misses", &file, errs);
            let stores = require_u64(cache, "stores", &file, errs);
            let stale = require_u64(cache, "stale", &file, errs);
            if enabled {
                // Hits and misses are tallied only on the deterministic
                // commit path, so together they account for every
                // committed subtree exactly once — the invariant that
                // makes the hit rate identical at any --jobs/--shards.
                if hits + misses != committed {
                    errs.push(fail(
                        &file,
                        &format!(
                            "cache: hits {hits} + misses {misses} != replays_committed {committed}"
                        ),
                    ));
                }
                if stores > misses {
                    errs.push(fail(
                        &file,
                        &format!("cache: stores {stores} > misses {misses}"),
                    ));
                }
            } else if hits + misses + stores + stale != 0 {
                errs.push(fail(
                    &file,
                    "cache disabled but hits/misses/stores/stale not all zero",
                ));
            }
        }
        None => errs.push(fail(&file, "missing `cache` section")),
    }
    // Canonical serialization for the cross-file determinism comparison.
    Some(serde_json::to_string(semantic).expect("reserializes"))
}

/// Keys every schema-v2 analyzer report must carry.
const ANALYSIS_KEYS: &[&str] = &[
    "schema_version",
    "program",
    "nprocs",
    "epochs",
    "epochs_mapped",
    "alternates_recorded",
    "match_set_sizes",
    "deterministic_wildcards",
    "infeasible_alternates",
    "orbits",
    "lints",
    "error_lints",
    "notes",
    "plan_version",
    "refined_match_set_sizes",
    "refinement_iterations",
    "refined_deterministic_wildcards",
    "refined_infeasible_alternates",
    "oblivious_receives",
    "protocol_deterministic_wildcards",
    "protocol_infeasible_alternates",
    "protocol",
];

fn check_analysis(path: &PathBuf, errs: &mut Vec<String>) {
    let file = path.display().to_string();
    let v: Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            errs.push(fail(&file, &format!("unreadable or invalid JSON: {e}")));
            return;
        }
    };
    for key in ANALYSIS_KEYS {
        if v.get(key).is_none() {
            errs.push(fail(&file, &format!("missing `{key}`")));
        }
    }
    if v.get("schema_version").and_then(Value::as_u64) != Some(u64::from(ANALYSIS_SCHEMA_VERSION)) {
        errs.push(fail(
            &file,
            &format!("schema_version != {ANALYSIS_SCHEMA_VERSION}"),
        ));
    }
    if v.get("plan_version").and_then(Value::as_u64) != Some(u64::from(PRUNE_PLAN_VERSION)) {
        errs.push(fail(
            &file,
            &format!("plan_version != {PRUNE_PLAN_VERSION}"),
        ));
    }
    let lints = v
        .get("lints")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    for lint in &lints {
        let keys: Vec<&str> = lint
            .as_object()
            .map(|o| o.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        if sorted != ["id", "kind", "message", "ranks", "severity"] {
            errs.push(fail(&file, &format!("lint with unexpected fields: {lint}")));
            continue;
        }
        let id = lint["id"].as_str().unwrap_or_default();
        let sev = lint["severity"].as_str().unwrap_or_default();
        if !id.starts_with('L') || !matches!(sev, "error" | "warning") {
            errs.push(fail(&file, &format!("malformed lint: {lint}")));
        }
    }
    let count = |want: &str| lints.iter().filter(|l| l["id"] == want).count() as u64;
    let proto_facts = [
        "protocol_deterministic_wildcards",
        "protocol_infeasible_alternates",
    ]
    .iter()
    .map(|k| v.get(k).and_then(Value::as_array).map_or(0, Vec::len))
    .sum::<usize>();
    match v.get("protocol") {
        None | Some(Value::Null) => {
            // No spec supplied: the protocol fact sections must be empty
            // and no conformance lint may appear.
            if proto_facts != 0 {
                errs.push(fail(
                    &file,
                    "protocol facts present without a protocol block",
                ));
            }
            if count("L006") + count("L007") + count("L008") != 0 {
                errs.push(fail(&file, "conformance lints without a protocol block"));
            }
        }
        Some(p) => {
            for key in [
                "spec_name",
                "spec_digest",
                "rank_status",
                "l006",
                "l007",
                "l008",
            ] {
                if p.get(key).is_none() {
                    errs.push(fail(&file, &format!("protocol block missing `{key}`")));
                }
            }
            let digest = p
                .get("spec_digest")
                .and_then(Value::as_str)
                .unwrap_or_default();
            if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
                errs.push(fail(
                    &file,
                    &format!("spec_digest `{digest}` is not 16 hex chars"),
                ));
            }
            let status: Vec<&str> = p
                .get("rank_status")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_str).collect())
                .unwrap_or_default();
            if Some(status.len() as u64) != v.get("nprocs").and_then(Value::as_u64) {
                errs.push(fail(&file, "rank_status length != nprocs"));
            }
            let mut violations = 0;
            for (id, key) in [("L006", "l006"), ("L007", "l007"), ("L008", "l008")] {
                let n = p.get(key).and_then(Value::as_u64).unwrap_or(0);
                violations += n;
                if n != count(id) {
                    errs.push(fail(
                        &file,
                        &format!("protocol.{key} = {n} but {} {id} lint(s)", count(id)),
                    ));
                }
            }
            let all_conformant = !status.is_empty() && status.iter().all(|s| *s == "conformant");
            if violations > 0 && all_conformant {
                errs.push(fail(&file, "violations counted but every rank conformant"));
            }
            // The soundness gate: protocol pruning facts are only
            // admissible off a fully conformant traced run.
            if !all_conformant && proto_facts != 0 {
                errs.push(fail(
                    &file,
                    "protocol facts present on a non-conformant run",
                ));
            }
        }
    }
}

const USAGE: &str =
    "usage: metrics-lint <snapshot.json>... [--expect-semantic-match]\n       metrics-lint --analysis <report.json>...";

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut expect_match = false;
    let mut analysis_mode = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-semantic-match" => expect_match = true,
            "--analysis" => analysis_mode = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut errs: Vec<String> = Vec::new();
    if analysis_mode {
        for path in &files {
            check_analysis(path, &mut errs);
        }
        return if errs.is_empty() {
            println!("metrics-lint: {} analysis report(s) ok", files.len());
            ExitCode::SUCCESS
        } else {
            for e in &errs {
                eprintln!("metrics-lint: {e}");
            }
            ExitCode::FAILURE
        };
    }
    let semantics: Vec<(String, Option<String>)> = files
        .iter()
        .map(|p| (p.display().to_string(), check_file(p, &mut errs)))
        .collect();
    if expect_match {
        let mut valid = semantics.iter().filter_map(|(f, s)| Some((f, s.as_ref()?)));
        if let Some((first_file, first)) = valid.next() {
            for (file, s) in valid {
                if s != first {
                    errs.push(format!(
                        "{file}: semantic section differs from {first_file} (determinism contract violated)"
                    ));
                }
            }
        }
    }
    if errs.is_empty() {
        println!("metrics-lint: {} file(s) ok", files.len());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("metrics-lint: {e}");
        }
        ExitCode::FAILURE
    }
}
