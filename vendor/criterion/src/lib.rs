//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure once and prints the elapsed time — no
//! statistics, warmup, or HTML reports. Enough for the paper-figure bench
//! binaries to run and print their tables in an offline environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` (run once by the stub).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    /// Time `routine` on one input produced by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
    };
    println!("bench {id:<48} {per_iter:>12.3?}/iter");
}

/// Top-level benchmark driver, like `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) command-line configuration.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Print the final summary (a no-op in the stub).
    pub fn final_summary(&self) {}

    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}
