//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` with the builder API is used by the
//! runtime (named rank threads with bounded stacks). Implemented on top of
//! `std::thread::scope` + `Builder::spawn_scoped`, which cover the same
//! ground since Rust 1.63.

#![forbid(unsafe_code)]

/// Scoped threads with a builder API, like `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::io;

    /// Handle to a spawn scope; passed to the closure of [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Start configuring a new scoped thread.
        pub fn builder(&self) -> ScopedThreadBuilder<'_, 'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Builder for a scoped thread (name, stack size).
    pub struct ScopedThreadBuilder<'a, 'scope, 'env> {
        scope: &'a Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope> ScopedThreadBuilder<'_, 'scope, '_> {
        /// Name the thread.
        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Set the thread's stack size in bytes.
        #[must_use]
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawn the thread. The closure receives the scope handle (unused
        /// by this workspace, but part of the crossbeam signature).
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, '_>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.scope.inner;
            let handle = self
                .builder
                .spawn_scoped(inner, move || f(&Scope { inner }))?;
            Ok(ScopedJoinHandle { inner: handle })
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, named scoped threads can
    /// be spawned; joins any remaining threads before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }
}
