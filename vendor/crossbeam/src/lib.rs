//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! Two pieces of the real crate are used by this workspace:
//!
//! - `crossbeam::thread::scope` with the builder API (named rank threads
//!   with bounded stacks), implemented on top of `std::thread::scope` +
//!   `Builder::spawn_scoped`, which cover the same ground since Rust 1.63;
//! - `crossbeam::channel` MPMC channels (the parallel exploration worker
//!   pool), implemented as a `Mutex<VecDeque>` + `Condvar` queue with
//!   disconnect semantics matching the real crate: `recv` errors once every
//!   sender is gone *and* the queue is drained, `send` errors once every
//!   receiver is gone.

#![forbid(unsafe_code)]

/// Scoped threads with a builder API, like `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::io;

    /// Handle to a spawn scope; passed to the closure of [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Start configuring a new scoped thread.
        pub fn builder(&self) -> ScopedThreadBuilder<'_, 'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Builder for a scoped thread (name, stack size).
    pub struct ScopedThreadBuilder<'a, 'scope, 'env> {
        scope: &'a Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope> ScopedThreadBuilder<'_, 'scope, '_> {
        /// Name the thread.
        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Set the thread's stack size in bytes.
        #[must_use]
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawn the thread. The closure receives the scope handle (unused
        /// by this workspace, but part of the crossbeam signature).
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, '_>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.scope.inner;
            let handle = self
                .builder
                .spawn_scoped(inner, move || f(&Scope { inner }))?;
            Ok(ScopedJoinHandle { inner: handle })
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, named scoped threads can
    /// be spawned; joins any remaining threads before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }
}

/// Multi-producer multi-consumer FIFO channels, like `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        /// Signalled when a message arrives or the last sender disconnects.
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Clonable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable
    /// (multi-consumer); each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; errors when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut g = self.inner.queue.lock().expect("channel lock");
            if g.receivers == 0 {
                return Err(SendError(msg));
            }
            g.queue.push_back(msg);
            drop(g);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.inner.queue.lock().expect("channel lock");
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                // Wake every blocked receiver so it can observe disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = g.queue.pop_front() {
                    return Ok(msg);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.inner.ready.wait(g).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.inner.queue.lock().expect("channel lock");
            match g.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if g.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_producer() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn mpmc_delivers_each_message_once() {
            let (tx, rx) = unbounded::<u64>();
            let n: u64 = 1000;
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=n {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n * (n + 1) / 2);
        }
    }
}
