//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! shape: `lock()` returns the guard directly, and `Condvar::wait` takes
//! the guard by `&mut` instead of by value. A poisoned std lock (a rank
//! thread panicked while holding it) is entered anyway, matching
//! `parking_lot`'s no-poisoning semantics — exactly what the panic
//! isolation in the runtime needs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can take the std
/// guard by value and put the re-acquired one back — `parking_lot`'s
/// `&mut` condvar API on top of std's by-value one.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s `&mut`-guard API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self
            .inner
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
