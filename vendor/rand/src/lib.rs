//! Vendored minimal stand-in for the `rand` crate.
//!
//! Provides a deterministic `SmallRng` (xorshift64*, seeded via
//! splitmix64) and the `Rng::gen_range` / `SeedableRng::seed_from_u64`
//! surface the match engine uses. Not cryptographic; statistically fine
//! for seeded wildcard-pick simulation.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seed a generator from a `u64`, like `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation, like `rand::Rng` (tiny subset).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Small, fast deterministic RNGs.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}
