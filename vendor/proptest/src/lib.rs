//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Deterministic random testing without shrinking: each property runs a
//! configurable number of cases drawn from a per-test seeded RNG, so runs
//! are reproducible across machines. Supports the strategy surface this
//! workspace uses — integer ranges, tuples of strategies, and
//! `prop::collection::vec` (including nesting) — plus the `proptest!`,
//! `prop_assert!`, and `prop_assert_eq!` macros.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-block configuration, like `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic RNG seeded from the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identity and case number (FNV-1a over the name).
    #[must_use]
    pub fn deterministic(case: u32, name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            state: if h == 0 { 0x1234_5678_9ABC_DEF0 } else { h },
        }
    }

    /// Next raw 64 bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.lo < self.size.hi, "empty vec-size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Namespaced strategy modules, like `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert within a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    __case,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}
