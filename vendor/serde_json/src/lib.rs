//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Implements the JSON value model, a strict recursive-descent parser,
//! compact/pretty printers, and the `json!` macro on top of the vendored
//! serde's simplified `Content` tree. Output is valid JSON with the same
//! shape real serde_json would produce for the types this workspace
//! serializes (insertion-ordered object keys, externally tagged enums).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Error from parsing or printing JSON.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Specialized result type.
pub type Result<T> = std::result::Result<T, Error>;

// ---- Number ---------------------------------------------------------------

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Value as `u64` when representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(n) => Some(n),
            N::I(n) => u64::try_from(n).ok(),
            N::F(_) => None,
        }
    }

    /// Value as `i64` when representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(n) => i64::try_from(n).ok(),
            N::I(n) => Some(n),
            N::F(_) => None,
        }
    }

    /// Value as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(n) => Some(n as f64),
            N::I(n) => Some(n as f64),
            N::F(n) => Some(n),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::I(b)) => a == b,
            (N::F(a), N::F(b)) => a == b,
            (N::U(a), N::I(b)) | (N::I(b), N::U(a)) => i64::try_from(a) == Ok(b),
            (N::F(f), N::U(u)) | (N::U(u), N::F(f)) => f == u as f64,
            (N::F(f), N::I(i)) | (N::I(i), N::F(f)) => f == i as f64,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(n) => write!(f, "{n}"),
            N::I(n) => write!(f, "{n}"),
            N::F(n) if n.is_finite() => write!(f, "{n:?}"),
            N::F(_) => f.write_str("null"),
        }
    }
}

// ---- Map ------------------------------------------------------------------

/// An insertion-ordered JSON object, like `serde_json::Map` with the
/// `preserve_order` feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing and returning any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup of a key.
    #[must_use]
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove a key, returning its value if it was present. Later entries
    /// shift down, preserving insertion order.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Whether the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Serialize for Map<String, Value> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

// ---- Value ----------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// String content, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `u64` content, when this is a representable number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` content, when this is a representable number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` content, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Boolean content.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object content.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object content.
    #[must_use]
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object member lookup.
    #[must_use]
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn from_content_tree(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(n) => Value::Number(Number(N::U(*n))),
            Content::I64(n) => Value::Number(Number(N::I(*n))),
            Content::F64(n) => Value::Number(Number(N::F(*n))),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(s) => Value::Array(s.iter().map(Self::from_content_tree).collect()),
            Content::Map(m) => Value::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), Self::from_content_tree(v)))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number(N::U(n))) => Content::U64(*n),
            Value::Number(Number(N::I(n))) => Content::I64(*n),
            Value::Number(Number(N::F(n))) => Content::F64(*n),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> std::result::Result<Self, serde::DeError> {
        Ok(Self::from_content_tree(content))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == to_value(other)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

// ---- printing -------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(elem, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(elem, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { s: s.as_bytes(), i: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.i)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|()| Value::Null),
            Some(b't') => self.eat_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.i
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.s[self.i..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .s
            .get(self.i..self.i + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))?;
        self.i += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| Error::new(e.to_string()))?;
        let n = if float {
            N::F(text.parse().map_err(|e| Error::new(format!("{e}: `{text}`")))?)
        } else if text.starts_with('-') {
            N::I(text.parse().map_err(|e| Error::new(format!("{e}: `{text}`")))?)
        } else {
            N::U(text.parse().map_err(|e| Error::new(format!("{e}: `{text}`")))?)
        };
        Ok(Value::Number(Number(n)))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(out));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(out));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.i
                    )))
                }
            }
        }
    }
}

// ---- public API -----------------------------------------------------------

/// Convert any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content_tree(&value.to_content())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new(format!("trailing garbage at byte {}", p.i)));
    }
    T::from_content(&value.to_content()).map_err(|e| Error::new(e.0))
}

/// Build a [`Value`] from a JSON-ish literal. Supports one level of
/// object/array literal syntax with expression values; nested structure
/// comes from the expressions themselves (any `Serialize` type).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $crate::to_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::to_value(&$val)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}
