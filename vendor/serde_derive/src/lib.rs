//! Vendored minimal stand-in for `serde_derive`.
//!
//! A hand-rolled derive (no `syn`/`quote` available offline) that walks
//! the raw token stream of a `struct`/`enum` definition and emits
//! `serde::Serialize` / `serde::Deserialize` impls against the vendored
//! serde's simplified `Content` model. Supports exactly what this
//! workspace derives:
//!
//! * named-field structs, with `#[serde(skip)]`
//! * tuple (newtype) structs
//! * enums with unit, newtype, tuple, and struct variants
//!
//! Generics are not supported (none of the workspace's derived types are
//! generic); deriving on a generic type is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored simplified model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize` (vendored simplified model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let code = match parse(input) {
        Ok(item) => {
            if ser {
                gen_ser(&item)
            } else {
                gen_de(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive output is valid Rust")
}

// ---- model ----------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` (serialization is unaffected).
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- parsing --------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected a type name")?;
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    let kind = match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Named(parse_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream())?)
        }
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };
    Ok(Item { name, kind })
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Field-level serde attributes this stand-in understands.
#[derive(Default, Clone, Copy)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
}

/// Advance past any `#[...]` attributes and a `pub`/`pub(...)` visibility.
/// Returns the `#[serde(...)]` attributes found among them.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    let found = parse_serde_attr(g.stream());
                    attrs.skip |= found.skip;
                    attrs.default |= found.default;
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return attrs,
        }
    }
}

/// Parse an attribute body (the tokens inside `#[...]`) as `serde(...)`.
fn parse_serde_attr(body: TokenStream) -> SerdeAttrs {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut attrs = SerdeAttrs::default();
    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) = (toks.first(), toks.get(1)) {
        if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis {
            for t in g.stream() {
                if let TokenTree::Ident(i) = &t {
                    match i.to_string().as_str() {
                        "skip" => attrs.skip = true,
                        "default" => attrs.default = true,
                        _ => {}
                    }
                }
            }
        }
    }
    attrs
}

/// Skip a type expression up to (and past) the next top-level comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let attrs = skip_attrs_and_vis(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("expected a field name")?;
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&toks, &mut i);
        out.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(out)
}

/// Count the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_type(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("expected a variant name")?;
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Variant { name, shape });
    }
    Ok(out)
}

// ---- codegen: Serialize ---------------------------------------------------

const ALLOW: &str = "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all, clippy::pedantic)]\n";

fn map_entries(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(::std::string::String::from({:?}), ::serde::Serialize::to_content({})),",
                f.name,
                access(&f.name)
            )
        })
        .collect();
    if entries.is_empty() {
        "::serde::Content::Map(::std::vec::Vec::new())".to_owned()
    } else {
        format!(
            "::serde::Content::Map(::std::vec::Vec::from([{}]))",
            entries.join("")
        )
    }
}

fn gen_ser(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => map_entries(fields, |f| format!("&self.{f}")),
        Kind::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!(
                "::serde::Content::Seq(::std::vec::Vec::from([{}]))",
                elems.join("")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_content(__f0)".to_owned()
                            } else {
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b}),"))
                                    .collect();
                                format!(
                                    "::serde::Content::Seq(::std::vec::Vec::from([{}]))",
                                    elems.join("")
                                )
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Content::Map(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from({vname:?}), {payload})])),",
                                binds = binders.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect();
                            let payload = map_entries(fields, |f| f.to_owned());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from({vname:?}), {payload})])),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "{ALLOW}impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}"
    )
}

// ---- codegen: Deserialize -------------------------------------------------

fn named_constructor(ty_path: &str, fields: &[Field], map_var: &str, what: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default(),", f.name)
            } else {
                let lookup = if f.default { "field_or_default" } else { "field" };
                format!(
                    "{}: ::serde::{lookup}({map_var}, {:?}).map_err(|e| \
                     ::serde::DeError(format!(\"{what}.{}: {{e}}\")))?,",
                    f.name, f.name, f.name
                )
            }
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(" "))
}

fn tuple_args(n: usize, seq_var: &str, what: &str) -> String {
    (0..n)
        .map(|i| format!("::serde::seq_field({seq_var}, {i}, {what:?})?,"))
        .collect()
}

fn gen_de(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let ctor = named_constructor(name, fields, "__m", name);
            format!(
                "let __m = ::serde::expect_map(__c, {name:?})?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
        ),
        Kind::Tuple(n) => {
            let args = tuple_args(*n, "__s", name);
            format!(
                "let __s = ::serde::expect_seq(__c, {name:?})?;\n\
                 ::std::result::Result::Ok({name}({args}))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let what = format!("{name}::{vname}");
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__v)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let args = tuple_args(*n, "__s", &what);
                            Some(format!(
                                "{vname:?} => {{\
                                 let __s = ::serde::expect_seq(__v, {what:?})?;\
                                 ::std::result::Result::Ok({name}::{vname}({args})) }}"
                            ))
                        }
                        Shape::Named(fields) => {
                            let ctor = named_constructor(
                                &format!("{name}::{vname}"),
                                fields,
                                "__m",
                                &what,
                            );
                            Some(format!(
                                "{vname:?} => {{\
                                 let __m = ::serde::expect_map(__v, {what:?})?;\
                                 ::std::result::Result::Ok({ctor}) }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {tagged}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"invalid content for enum {name}: {{__other:?}}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "{ALLOW}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
