//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny subset of the `bytes` API it actually uses:
//! cheaply clonable immutable byte buffers (`Bytes`), a growable builder
//! (`BytesMut`), and the `BufMut` write helpers. Semantics match the real
//! crate for this subset; performance characteristics are close enough for
//! a simulator (clone is an `Arc` bump, `slice` is zero-copy).

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// Buffer backed by a static slice (copied here; the real crate
    /// borrows, but the observable behavior is identical).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Buffer holding a copy of `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Self { data, start: 0, end }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same backing storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like the real crate.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds: {lo}..{hi} of {len}");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Self { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian write helpers, as used by the envelope/piggyback codecs.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
