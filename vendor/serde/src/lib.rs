//! Vendored minimal stand-in for the `serde` crate.
//!
//! The real serde abstracts over data formats with visitor-based
//! `Serializer`/`Deserializer` traits. This workspace only ever talks to
//! one format (JSON, via the vendored `serde_json`), so the stand-in uses
//! a much simpler model: every serializable value converts to and from a
//! JSON-shaped [`Content`] tree. The derive macros (`serde_derive`,
//! re-exported here) generate `to_content`/`from_content` impls matching
//! serde's externally-tagged conventions:
//!
//! * named struct → map of fields (`#[serde(skip)]` fields omitted and
//!   rebuilt with `Default` on deserialize)
//! * newtype struct → the inner value
//! * unit enum variant → the variant name as a string
//! * newtype/tuple/struct enum variant → one-entry map
//!   `{ "Variant": payload }`
//!
//! This matches real serde_json's wire format for the types this
//! workspace derives, so persisted artifacts stay compatible if the real
//! crates are ever restored.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;

/// A format-independent, JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object with insertion-ordered entries.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// Convert to the format-independent tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the format-independent tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the serialized map.
    /// Errors by default; `Option` fields yield `None`, matching serde.
    #[doc(hidden)]
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

// ---- helpers used by derive-generated code --------------------------------

/// Expect a map, or report what was found.
#[doc(hidden)]
pub fn expect_map<'c>(content: &'c Content, what: &str) -> Result<&'c [(String, Content)], DeError> {
    match content {
        Content::Map(m) => Ok(m),
        other => Err(DeError(format!("{what}: expected a map, got {other:?}"))),
    }
}

/// Expect a sequence, or report what was found.
#[doc(hidden)]
pub fn expect_seq<'c>(content: &'c Content, what: &str) -> Result<&'c [Content], DeError> {
    match content {
        Content::Seq(s) => Ok(s),
        other => Err(DeError(format!("{what}: expected a sequence, got {other:?}"))),
    }
}

/// Look up and deserialize a named struct field.
#[doc(hidden)]
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => T::from_missing(name),
    }
}

/// Look up and deserialize a `#[serde(default)]` struct field: a missing
/// key yields `Default::default()` instead of an error.
#[doc(hidden)]
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Ok(T::default()),
    }
}

/// Deserialize the `i`-th element of a tuple payload.
#[doc(hidden)]
pub fn seq_field<T: Deserialize>(seq: &[Content], i: usize, what: &str) -> Result<T, DeError> {
    match seq.get(i) {
        Some(c) => T::from_content(c),
        None => Err(DeError(format!("{what}: missing tuple field {i}"))),
    }
}

// ---- primitive impls ------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let err = || DeError(format!(
                    "expected {}, got {content:?}", stringify!($t)
                ));
                match content {
                    Content::U64(n) => <$t>::try_from(*n).map_err(|_| err()),
                    Content::I64(n) => <$t>::try_from(*n).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(i64::from(*self))
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let err = || DeError(format!(
                    "expected {}, got {content:?}", stringify!($t)
                ));
                match content {
                    Content::U64(n) => <$t>::try_from(*n).map_err(|_| err()),
                    Content::I64(n) => <$t>::try_from(*n).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        if *self >= 0 {
            Content::U64(*self as u64)
        } else {
            Content::I64(*self as i64)
        }
    }
}
impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        i64::from_content(content)
            .and_then(|n| isize::try_from(n).map_err(|e| DeError(e.to_string())))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(n) => Ok(*n),
            Content::U64(n) => Ok(*n as f64),
            Content::I64(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for Cow<'_, str> {
    fn to_content(&self) -> Content {
        Content::Str(self.clone().into_owned())
    }
}
impl Deserialize for Cow<'static, str> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        String::from_content(content).map(Cow::Owned)
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        expect_seq(content, "Vec")?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        expect_seq(content, "BTreeSet")?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        expect_map(content, "BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

// Matches real serde's `{ "secs": u64, "nanos": u32 }` wire format for
// `std::time::Duration`, so persisted artifacts stay compatible.
impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_owned(), Content::U64(self.as_secs())),
            ("nanos".to_owned(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = expect_map(content, "Duration")?;
        let secs: u64 = field(m, "secs")?;
        let nanos: u32 = field(m, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = expect_seq(content, "2-tuple")?;
        Ok((seq_field(s, 0, "2-tuple")?, seq_field(s, 1, "2-tuple")?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = expect_seq(content, "3-tuple")?;
        Ok((
            seq_field(s, 0, "3-tuple")?,
            seq_field(s, 1, "3-tuple")?,
            seq_field(s, 2, "3-tuple")?,
        ))
    }
}
