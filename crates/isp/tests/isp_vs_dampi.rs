//! End-to-end ISP tests and the ISP-vs-DAMPI architectural comparison
//! that underlies the paper's Fig. 5 and Fig. 6.

use dampi_core::DampiVerifier;
use dampi_isp::IspVerifier;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::{Comm, FnProgram, MatchPolicy, Mpi, MpiError, SimConfig, ANY_SOURCE};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::parmetis::{Parmetis, ParmetisParams};
use dampi_workloads::patterns;

#[test]
fn isp_finds_the_fig3_bug() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let report = IspVerifier::new(sim).verify(&patterns::fig3());
    assert!(
        report
            .errors
            .iter()
            .any(|e| matches!(e.error, MpiError::UserAssert { .. })),
        "{report}"
    );
    assert!(report.interleavings >= 2);
}

#[test]
fn isp_finds_alternate_schedule_deadlock() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let report = IspVerifier::new(sim).verify(&patterns::deadlock_on_alternate_schedule());
    assert!(report.deadlocks() >= 1, "{report}");
}

#[test]
fn isp_is_complete_on_the_cross_coupled_pattern() {
    // §II-F: ISP's central vector clocks never miss the cross-coupled
    // match that Lamport-mode DAMPI misses. Compare coverage from
    // identical forced initial schedules.
    use dampi_core::{DecisionSet, EpochDecision};
    let initial = DecisionSet::guided(
        0,
        vec![
            EpochDecision {
                rank: 1,
                clock: 0,
                src: 0,
            },
            EpochDecision {
                rank: 2,
                clock: 0,
                src: 3,
            },
        ],
    );
    let isp = IspVerifier::new(SimConfig::new(4));
    let res = isp.instrumented_run(&patterns::fig4_cross_coupled(), &initial);
    assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
    let e10 = res
        .epochs
        .iter()
        .find(|e| e.rank == 1 && e.clock == 0)
        .expect("rank 1 epoch 0");
    assert!(
        e10.alternates.contains(&2),
        "ISP (vector-precise) must see P2's concurrent forward: {e10:?}"
    );
}

#[test]
fn isp_and_dampi_agree_on_clean_programs() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let n = mpi.world_size();
        if mpi.world_rank() == 0 {
            for _ in 1..n {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            }
        } else {
            mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(7))?;
        }
        Ok(())
    });
    let dampi = DampiVerifier::new(SimConfig::new(4)).verify(&prog);
    let isp = IspVerifier::new(SimConfig::new(4)).verify(&prog);
    assert!(dampi.errors.is_empty());
    assert!(isp.errors.is_empty());
    // Same interleaving space for this symmetric pattern: 3! = 6.
    assert_eq!(dampi.interleavings, 6);
    assert_eq!(isp.interleavings, 6);
    // Same coverage.
    assert_eq!(
        dampi.total_discovered_matches(),
        isp.total_discovered_matches()
    );
}

#[test]
fn isp_single_run_is_slower_than_dampi_single_run() {
    // The core architectural claim: on the same workload, ISP's serialized
    // per-op transactions cost far more virtual time than DAMPI's
    // piggyback traffic.
    let prog = Parmetis::new(ParmetisParams {
        coarsen_rounds: 4,
        exchanges_per_round: 2,
        msg_bytes: 128,
        round_cost: 0.0,
        leak_comm: false,
    });
    let sim = SimConfig::new(8);
    let native = dampi_mpi::run_native(&sim, &prog).makespan;
    let dampi = DampiVerifier::new(sim.clone())
        .instrumented_run(&prog, &dampi_core::DecisionSet::self_run())
        .outcome
        .makespan;
    let isp = IspVerifier::new(sim)
        .instrumented_run(&prog, &dampi_core::DecisionSet::self_run())
        .outcome
        .makespan;
    assert!(dampi > native, "instrumentation is not free");
    assert!(
        isp > dampi * 2.0,
        "centralized scheduling must dominate: native={native:.6} dampi={dampi:.6} isp={isp:.6}"
    );
}

#[test]
fn isp_slowdown_grows_with_scale_dampi_stays_flat() {
    // Fig. 5's shape in miniature: the ISP/native ratio grows with process
    // count; the DAMPI/native ratio does not (beyond noise).
    let ratios = |np: usize| {
        let prog = Parmetis::new(ParmetisParams::nominal(np, 0.05));
        let sim = SimConfig::new(np);
        let native = dampi_mpi::run_native(&sim, &prog).makespan;
        let dampi = DampiVerifier::new(sim.clone())
            .instrumented_run(&prog, &dampi_core::DecisionSet::self_run())
            .outcome
            .makespan;
        let isp = IspVerifier::new(sim)
            .instrumented_run(&prog, &dampi_core::DecisionSet::self_run())
            .outcome
            .makespan;
        (dampi / native, isp / native)
    };
    let (d8, i8) = ratios(8);
    let (d32, i32_) = ratios(32);
    assert!(
        i32_ > i8,
        "ISP slowdown must grow with scale: {i8:.2} -> {i32_:.2}"
    );
    assert!(
        d32 < i32_ / 2.0,
        "DAMPI must stay well under ISP at scale: dampi={d32:.2} isp={i32_:.2}"
    );
    assert!(
        d8 < 5.0 && d32 < 5.0,
        "DAMPI overhead stays near-native: {d8:.2}, {d32:.2}"
    );
}

#[test]
fn isp_explores_matmul_interleavings() {
    let prog = Matmul::new(MatmulParams {
        n: 4,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let mut isp = IspVerifier::new(SimConfig::new(3));
    isp.cfg.max_interleavings = Some(50);
    let report = isp.verify(&prog);
    assert!(report.errors.is_empty(), "{report}");
    assert!(report.interleavings >= 2, "{report}");
}

#[test]
fn isp_respects_budget() {
    let prog = Matmul::new(MatmulParams {
        n: 4,
        rounds_per_slave: 2,
        task_cost: 0.0,
        ..Default::default()
    });
    let mut isp = IspVerifier::new(SimConfig::new(4));
    isp.cfg.max_interleavings = Some(3);
    let report = isp.verify(&prog);
    assert_eq!(report.interleavings, 3);
    assert!(report.budget_exhausted);
}

#[test]
fn isp_guided_replay_reproduces_bug() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let isp = IspVerifier::new(sim);
    let report = isp.verify(&patterns::fig3());
    let repro = report
        .errors
        .iter()
        .find(|e| matches!(e.error, MpiError::UserAssert { .. }))
        .expect("bug found")
        .decisions
        .clone();
    let rerun = isp.instrumented_run(&patterns::fig3(), &repro);
    assert!(rerun
        .outcome
        .program_bugs()
        .iter()
        .any(|b| matches!(b.error, MpiError::UserAssert { .. })));
}

#[test]
fn isp_counts_wildcards() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
        } else {
            mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(1))?;
        }
        user_assert(true, "fine")?;
        Ok(())
    });
    let mut isp = IspVerifier::new(SimConfig::new(3));
    isp.cfg.max_interleavings = Some(1);
    let report = isp.verify(&prog);
    assert_eq!(report.wildcards_analyzed, 2);
}

#[test]
fn isp_transaction_counts_scale_with_ops() {
    use dampi_isp::IspScheduler;
    use dampi_mpi::vtime::VTimeParams;
    let sched = IspScheduler::new(4, VTimeParams::default());
    assert_eq!(sched.transactions(), 0);
    for _ in 0..10 {
        sched.transact(0.0);
    }
    assert_eq!(sched.transactions(), 10);
}

#[test]
fn isp_handles_waitsome_completions() {
    use dampi_mpi::envelope::codec;
    // Master uses waitsome over wildcard receives: the ISP layer must
    // report each completion to the central scheduler.
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let n = mpi.world_size();
        if mpi.world_rank() == 0 {
            let reqs: Vec<_> = (1..n)
                .map(|_| mpi.irecv(Comm::WORLD, ANY_SOURCE, 0))
                .collect::<dampi_mpi::Result<_>>()?;
            let mut remaining = reqs;
            while !remaining.is_empty() {
                let done = mpi.waitsome(&remaining)?;
                let taken: Vec<usize> = done.iter().map(|(i, _, _)| *i).collect();
                remaining = remaining
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| !taken.contains(i))
                    .map(|(_, r)| r)
                    .collect();
            }
        } else {
            mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(9))?;
        }
        Ok(())
    });
    let mut isp = IspVerifier::new(SimConfig::new(4));
    isp.cfg.max_interleavings = Some(200);
    let report = isp.verify(&prog);
    assert!(report.errors.is_empty(), "{report}");
    assert_eq!(report.wildcards_analyzed, 3);
    assert!(report.interleavings >= 2, "{report}");
}

#[test]
fn isp_probe_epochs_counted() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            let info = mpi.probe(Comm::WORLD, ANY_SOURCE, 0)?;
            let _ = mpi.recv(Comm::WORLD, info.src as i32, 0)?;
        } else {
            mpi.send(Comm::WORLD, 0, 0, dampi_mpi::envelope::codec::encode_u64(1))?;
        }
        Ok(())
    });
    let mut isp = IspVerifier::new(SimConfig::new(3));
    isp.cfg.max_interleavings = Some(1);
    let report = isp.verify(&prog);
    assert_eq!(report.wildcards_analyzed, 1, "{report}");
}
