//! The ISP central scheduler.
//!
//! Every MPI call of every rank performs a synchronous transaction here
//! (paper §II-A: "each MPI call involves a synchronous communication
//! between the MPI process and the scheduler"). Two consequences, both
//! reproduced:
//!
//! * **Cost** — transactions serialize on one virtual clock
//!   ([`dampi_mpi::vtime::CentralClock`]); with total MPI op counts growing
//!   super-linearly in process count (Table I), this is the bottleneck that
//!   produces Fig. 5's exploding curve.
//! * **Precision** — the scheduler sees everything, so it maintains exact
//!   vector clocks per rank, a complete message log, and epoch records with
//!   vector-precise late analysis. Unlike DAMPI it needs no piggyback
//!   messages and never misses a cross-coupled match (§II-F) — at the cost
//!   of the architecture that cannot scale.

use std::collections::{BTreeSet, HashMap, VecDeque};

use dampi_clocks::{ClockMode, ClockStamp, LogicalClock, VectorClock};
use dampi_core::epoch::{EpochRecord, NdKind, ToolRunStats};
use dampi_core::late;
use dampi_mpi::vtime::{CentralClock, VTimeParams};
use dampi_mpi::{Comm, Tag};
use parking_lot::Mutex;
use std::sync::Arc;

/// Clock-exchange semantics of a collective (paper §II-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollClockKind {
    /// Barrier/allreduce/allgather/alltoall: everyone receives from all.
    AllMax,
    /// Bcast/scatter: everyone receives the root's clock.
    FromRoot,
    /// Reduce/gather: the root receives from all.
    ToRoot,
}

#[derive(Debug)]
struct SendRec {
    stamp: Vec<u64>,
    src_crank: usize,
}

#[derive(Debug)]
struct CollGather {
    kind: CollClockKind,
    root_crank: usize,
    /// (world rank, comm rank, pre-collective vector) per contributor.
    contributions: Vec<(usize, usize, Vec<u64>)>,
    expected: usize,
}

#[derive(Debug)]
struct SchedInner {
    clock: CentralClock,
    params: VTimeParams,
    vcs: Vec<VectorClock>,
    nd_counters: Vec<u64>,
    epochs: Vec<EpochRecord>,
    /// (comm, src world, dst world, tag) → pending sends in order.
    send_log: HashMap<(Comm, usize, usize, Tag), VecDeque<SendRec>>,
    /// In-flight collective gathers per communicator.
    colls: HashMap<Comm, CollGather>,
    stats: ToolRunStats,
}

/// The central scheduler shared by every rank's [`crate::IspLayer`].
#[derive(Debug)]
pub struct IspScheduler {
    nprocs: usize,
    inner: Mutex<SchedInner>,
}

impl IspScheduler {
    /// Scheduler for an `nprocs`-rank job.
    #[must_use]
    pub fn new(nprocs: usize, params: VTimeParams) -> Arc<Self> {
        Arc::new(Self {
            nprocs,
            inner: Mutex::new(SchedInner {
                clock: CentralClock::new(),
                params,
                vcs: (0..nprocs).map(|r| VectorClock::new(r, nprocs)).collect(),
                nd_counters: vec![0; nprocs],
                epochs: Vec::new(),
                send_log: HashMap::new(),
                colls: HashMap::new(),
                stats: ToolRunStats::default(),
            }),
        })
    }

    /// One synchronous scheduler transaction: serialize on the central
    /// clock and return the caller's new local virtual time.
    pub fn transact(&self, caller_vt: f64) -> f64 {
        let mut g = self.inner.lock();
        let params = g.params;
        g.clock.transact(caller_vt, &params)
    }

    /// Total transactions processed (diagnostics).
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.inner.lock().clock.transactions()
    }

    /// Fold a rank's replay-divergence count into the run stats.
    pub fn report_divergences(&self, count: u64) {
        self.inner.lock().stats.divergences += count;
    }

    /// A send was issued: log it with the sender's current vector stamp.
    pub fn on_send(
        &self,
        src_world: usize,
        src_crank: usize,
        dst_world: usize,
        comm: Comm,
        tag: Tag,
    ) {
        let mut g = self.inner.lock();
        let stamp = g.vcs[src_world].components().to_vec();
        g.send_log
            .entry((comm, src_world, dst_world, tag))
            .or_default()
            .push_back(SendRec { stamp, src_crank });
    }

    /// A wildcard receive/probe was posted: open an epoch. Returns the
    /// per-rank epoch counter (the Epoch Decisions key for ISP).
    pub fn on_nd_post(
        &self,
        world_rank: usize,
        comm: Comm,
        tag_spec: Tag,
        kind: NdKind,
        guided: bool,
        matched_src: Option<usize>,
    ) -> u64 {
        let mut g = self.inner.lock();
        let counter = g.nd_counters[world_rank];
        g.nd_counters[world_rank] += 1;
        g.vcs[world_rank].tick();
        let stamp = ClockStamp::Vector(g.vcs[world_rank].components().to_vec());
        g.epochs.push(EpochRecord {
            rank: world_rank,
            clock: counter,
            stamp,
            comm,
            tag_spec,
            kind,
            in_region: false,
            guided,
            matched_src,
            alternates: BTreeSet::new(),
        });
        g.stats.wildcards += 1;
        counter
    }

    /// A receive completed: pair it with the sender's logged stamp
    /// (non-overtaking: first unconsumed send of the stream), run exact
    /// late analysis, merge vector clocks, and bind the epoch's match.
    pub fn on_recv_complete(
        &self,
        dst_world: usize,
        comm: Comm,
        src_world: usize,
        src_crank: usize,
        tag: Tag,
        epoch_counter: Option<u64>,
    ) {
        let mut g = self.inner.lock();
        let rec = g
            .send_log
            .get_mut(&(comm, src_world, dst_world, tag))
            .and_then(VecDeque::pop_front);
        let stamp_words = match rec {
            Some(r) => r.stamp,
            // A send the layer did not report (should not happen) — fall
            // back to the sender's current clock.
            None => g.vcs[src_world].components().to_vec(),
        };
        if let Some(counter) = epoch_counter {
            if let Some(e) = g
                .epochs
                .iter_mut()
                .find(|e| e.rank == dst_world && e.clock == counter)
            {
                e.matched_src = Some(src_crank);
            }
        }
        let stamp = ClockStamp::Vector(stamp_words);
        let mut epochs = std::mem::take(&mut g.epochs);
        let dst_epochs: Vec<usize> = (0..epochs.len())
            .filter(|&i| epochs[i].rank == dst_world)
            .collect();
        let mut late_hit = false;
        {
            // Analyze only this destination's epochs.
            let mut view: Vec<EpochRecord> =
                dst_epochs.iter().map(|&i| epochs[i].clone()).collect();
            late_hit = late::analyze_incoming(
                &mut view,
                ClockMode::Vector,
                &stamp,
                src_crank,
                tag,
                comm,
                epoch_counter,
            ) || late_hit;
            for (slot, updated) in dst_epochs.iter().zip(view) {
                epochs[*slot] = updated;
            }
        }
        g.epochs = epochs;
        if late_hit {
            g.stats.late_messages += 1;
        }
        g.vcs[dst_world].merge(&stamp);
    }

    /// A rank is entering a collective: deposit its pre-collective vector.
    /// When the last member deposits, the exchange is applied to every
    /// contributor per the operation's clock semantics. Must be called
    /// *before* the rank enters the underlying collective so contributions
    /// are pre-collective values.
    pub fn on_collective(
        &self,
        world_rank: usize,
        crank: usize,
        comm: Comm,
        comm_size: usize,
        kind: CollClockKind,
        root_crank: usize,
    ) {
        let mut g = self.inner.lock();
        let vec = g.vcs[world_rank].components().to_vec();
        let gather = g.colls.entry(comm).or_insert_with(|| CollGather {
            kind,
            root_crank,
            contributions: Vec::with_capacity(comm_size),
            expected: comm_size,
        });
        debug_assert_eq!(gather.kind, kind, "mismatched collective reported");
        gather.contributions.push((world_rank, crank, vec));
        if gather.contributions.len() == gather.expected {
            let gather = g.colls.remove(&comm).expect("just inserted");
            let merged: Vec<u64> = (0..self.nprocs)
                .map(|i| {
                    gather
                        .contributions
                        .iter()
                        .map(|(_, _, v)| v[i])
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            let root_vec = gather
                .contributions
                .iter()
                .find(|(_, c, _)| *c == gather.root_crank)
                .map(|(_, _, v)| v.clone());
            for (wr, crank, _) in &gather.contributions {
                let apply = match gather.kind {
                    CollClockKind::AllMax => Some(&merged),
                    CollClockKind::FromRoot => root_vec.as_ref(),
                    CollClockKind::ToRoot => {
                        if *crank == gather.root_crank {
                            Some(&merged)
                        } else {
                            None
                        }
                    }
                };
                if let Some(v) = apply {
                    g.vcs[*wr].merge(&ClockStamp::Vector(v.clone()));
                }
            }
        }
    }

    /// End of run: analyze every *unconsumed* logged send against its
    /// destination's epochs (the central analog of DAMPI's finalize-time
    /// drain), then return the epoch log and stats.
    pub fn collect(&self) -> (Vec<EpochRecord>, ToolRunStats) {
        let mut g = self.inner.lock();
        type StreamKey = (Comm, usize, usize, Tag);
        let leftovers: Vec<(StreamKey, Vec<SendRec>)> = g
            .send_log
            .drain()
            .map(|(k, q)| (k, q.into_iter().collect()))
            .collect();
        let mut epochs = std::mem::take(&mut g.epochs);
        for ((comm, _src_world, dst_world, tag), recs) in leftovers {
            for rec in recs {
                let stamp = ClockStamp::Vector(rec.stamp);
                let mut view: Vec<EpochRecord> = epochs
                    .iter()
                    .filter(|e| e.rank == dst_world)
                    .cloned()
                    .collect();
                if late::analyze_incoming(
                    &mut view,
                    ClockMode::Vector,
                    &stamp,
                    rec.src_crank,
                    tag,
                    comm,
                    None,
                ) {
                    g.stats.drained_messages += 1;
                }
                let mut vi = view.into_iter();
                for e in epochs.iter_mut().filter(|e| e.rank == dst_world) {
                    *e = vi.next().expect("same filter");
                }
            }
        }
        // Final hygiene: matched sources are not alternates.
        for e in &mut epochs {
            if let Some(m) = e.matched_src {
                e.alternates.remove(&m);
            }
        }
        let stats = g.stats;
        (epochs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> Arc<IspScheduler> {
        IspScheduler::new(n, VTimeParams::default())
    }

    #[test]
    fn transactions_serialize_time() {
        let s = sched(2);
        let t1 = s.transact(0.0);
        let t2 = s.transact(0.0);
        assert!(t2 > t1);
        assert_eq!(s.transactions(), 2);
    }

    #[test]
    fn send_recv_updates_vector_clocks_and_epochs() {
        let s = sched(3);
        // Rank 1 posts a wildcard (epoch 0), ticking its VC.
        let c = s.on_nd_post(1, Comm::WORLD, 0, NdKind::Recv, false, None);
        assert_eq!(c, 0);
        // Ranks 0 and 2 send to rank 1 concurrently.
        s.on_send(0, 0, 1, Comm::WORLD, 0);
        s.on_send(2, 2, 1, Comm::WORLD, 0);
        // Rank 1's receive completes from rank 0.
        s.on_recv_complete(1, Comm::WORLD, 0, 0, 0, Some(0));
        // Rank 2's message arrives via a second (deterministic) receive.
        s.on_recv_complete(1, Comm::WORLD, 2, 2, 0, None);
        let (epochs, stats) = s.collect();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].matched_src, Some(0));
        assert!(epochs[0].alternates.contains(&2), "{epochs:?}");
        assert_eq!(stats.wildcards, 1);
    }

    #[test]
    fn unreceived_sends_analyzed_at_collect() {
        let s = sched(3);
        s.on_nd_post(1, Comm::WORLD, 0, NdKind::Recv, false, None);
        s.on_send(0, 0, 1, Comm::WORLD, 0);
        s.on_send(2, 2, 1, Comm::WORLD, 0);
        s.on_recv_complete(1, Comm::WORLD, 0, 0, 0, Some(0));
        // Rank 2's message is never received — collect must still see it.
        let (epochs, stats) = s.collect();
        assert!(epochs[0].alternates.contains(&2));
        assert_eq!(stats.drained_messages, 1);
    }

    #[test]
    fn causally_after_send_not_an_alternate() {
        let s = sched(2);
        s.on_nd_post(1, Comm::WORLD, 0, NdKind::Recv, false, None);
        s.on_send(0, 0, 1, Comm::WORLD, 0);
        s.on_recv_complete(1, Comm::WORLD, 0, 0, 0, Some(0));
        // Rank 1 replies to 0; rank 0's next send is causally after the
        // epoch and must not become an alternate.
        s.on_send(1, 1, 0, Comm::WORLD, 1);
        s.on_recv_complete(0, Comm::WORLD, 1, 1, 1, None);
        s.on_send(0, 0, 1, Comm::WORLD, 0);
        s.on_recv_complete(1, Comm::WORLD, 0, 0, 0, None);
        let (epochs, _) = s.collect();
        assert!(
            epochs[0].alternates.is_empty(),
            "reply chain is causally after: {epochs:?}"
        );
    }

    #[test]
    fn collective_allmax_merges_everyone() {
        let s = sched(2);
        // Rank 1 ticks via an epoch, then both enter a barrier.
        s.on_nd_post(1, Comm::WORLD, 0, NdKind::Recv, false, Some(0));
        s.on_collective(0, 0, Comm::WORLD, 2, CollClockKind::AllMax, 0);
        s.on_collective(1, 1, Comm::WORLD, 2, CollClockKind::AllMax, 0);
        // Rank 0 now knows rank 1's tick: a send from rank 0 is causally
        // after the epoch.
        s.on_send(0, 0, 1, Comm::WORLD, 0);
        s.on_recv_complete(1, Comm::WORLD, 0, 0, 0, None);
        let (epochs, _) = s.collect();
        assert!(epochs[0].alternates.is_empty(), "{epochs:?}");
    }

    #[test]
    fn collective_from_root_only_spreads_root() {
        let s = sched(3);
        // Rank 2 ticks; then a bcast from root 0: rank 2's knowledge must
        // NOT spread to others (only root's clock flows).
        s.on_nd_post(2, Comm::WORLD, 0, NdKind::Recv, false, Some(0));
        s.on_collective(0, 0, Comm::WORLD, 3, CollClockKind::FromRoot, 0);
        s.on_collective(1, 1, Comm::WORLD, 3, CollClockKind::FromRoot, 0);
        s.on_collective(2, 2, Comm::WORLD, 3, CollClockKind::FromRoot, 0);
        // A send from rank 1 remains concurrent with rank 2's epoch.
        s.on_send(1, 1, 2, Comm::WORLD, 0);
        s.on_recv_complete(2, Comm::WORLD, 1, 1, 0, None);
        let (epochs, _) = s.collect();
        assert!(
            epochs[0].alternates.contains(&1),
            "bcast must not leak non-root clocks: {epochs:?}"
        );
    }
}
