//! The ISP verification driver.
//!
//! Reuses DAMPI's depth-first schedule generator
//! ([`dampi_core::scheduler::explore`]) so ISP and DAMPI differ only in
//! *architecture*: centralized synchronous scheduling (serialized virtual
//! time, exact vector-clock match detection) versus decentralized
//! piggyback analysis. This isolates exactly the comparison of the paper's
//! Fig. 5/6.

use std::sync::Arc;

use dampi_core::bounds::MixingBound;
use dampi_core::decisions::DecisionSet;
use dampi_core::report::VerificationReport;
use dampi_core::scheduler::{self, ExploreOptions, RunResult};
use dampi_mpi::program::{MpiProgram, RunOutcome};
use dampi_mpi::runtime::{run_with_layers, SimConfig};
use dampi_mpi::Mpi;

use crate::sched::IspScheduler;
use crate::tool::IspLayer;

/// Configuration of an ISP verification session.
#[derive(Debug, Clone)]
pub struct IspConfig {
    /// Hard cap on explored interleavings.
    pub max_interleavings: Option<u64>,
    /// Stop at the first program bug.
    pub stop_on_first_error: bool,
}

impl Default for IspConfig {
    fn default() -> Self {
        Self {
            max_interleavings: Some(100_000),
            stop_on_first_error: false,
        }
    }
}

/// The ISP verifier (centralized baseline).
#[derive(Debug, Clone)]
pub struct IspVerifier {
    /// Simulated-world configuration.
    pub sim: SimConfig,
    /// Session configuration.
    pub cfg: IspConfig,
}

impl IspVerifier {
    /// Verifier with the default configuration.
    #[must_use]
    pub fn new(sim: SimConfig) -> Self {
        Self {
            sim,
            cfg: IspConfig::default(),
        }
    }

    /// Execute one run under the ISP stack with the given decisions.
    pub fn instrumented_run(&self, program: &dyn MpiProgram, decisions: &DecisionSet) -> RunResult {
        let sched = IspScheduler::new(self.sim.nprocs, self.sim.vtime);
        let ds = Arc::new(decisions.clone());
        let outcome = run_with_layers(&self.sim, program, &|_rank, pmpi| {
            Ok(Box::new(IspLayer::new(pmpi, Arc::clone(&sched), Arc::clone(&ds))) as Box<dyn Mpi>)
        });
        let (epochs, stats) = sched.collect();
        RunResult {
            outcome,
            epochs,
            stats,
        }
    }

    /// Execute `program` without instrumentation.
    #[must_use]
    pub fn native_run(&self, program: &dyn MpiProgram) -> RunOutcome {
        dampi_mpi::runtime::run_native(&self.sim, program)
    }

    /// Full verification over the space of non-deterministic matches.
    #[must_use]
    pub fn verify(&self, program: &dyn MpiProgram) -> VerificationReport {
        let opts = ExploreOptions {
            // ISP explores the full space: it has no bounded mixing or
            // loop-abstraction heuristics (they are DAMPI contributions).
            bound: MixingBound::Unbounded,
            honor_regions: false,
            max_interleavings: self.cfg.max_interleavings,
            stop_on_first_error: self.cfg.stop_on_first_error,
            ..ExploreOptions::default()
        };
        let ex = scheduler::explore(|ds| self.instrumented_run(program, ds), &opts);
        VerificationReport {
            program: program.name().to_owned(),
            nprocs: self.sim.nprocs,
            clock_mode: dampi_clocks::ClockMode::Vector,
            bound: MixingBound::Unbounded,
            interleavings: ex.interleavings,
            errors: ex.errors,
            leaks: ex.first_run_leaks,
            wildcards_analyzed: ex.first_run_stats.wildcards,
            unsafe_alerts: 0,
            divergences: ex.divergences,
            retries: ex.retries,
            timeouts: ex.timeouts,
            // Sharding is a DAMPI-side feature; the centralized baseline
            // runs in-process only.
            quarantined: 0,
            drained: false,
            pb_messages: 0,
            first_run_makespan: ex.first_run_makespan,
            total_virtual_time: ex.total_virtual_time,
            budget_exhausted: ex.budget_exhausted,
            // Static pruning is a DAMPI-side feature; the centralized
            // baseline never consumes a plan.
            alternates_pruned: 0,
            wildcards_deterministic: 0,
            refined_alternates_pruned: 0,
            refined_wildcards_deterministic: 0,
            protocol_alternates_pruned: 0,
            protocol_wildcards_deterministic: 0,
            discovered: ex.discovered,
        }
    }
}
