//! **ISP** — the centralized dynamic verifier baseline (paper §II-A).
//!
//! ISP preceded DAMPI: it intercepts every MPI call and performs a
//! *synchronous transaction* with one central scheduler, which therefore
//! holds a complete global picture — match detection is exact (vector-clock
//! quality) and replay is driven centrally. The price is that every MPI
//! call in the entire job serializes through the scheduler, which is why
//! ISP's verification time explodes with scale (paper Fig. 5/6) while
//! DAMPI's stays near-native.
//!
//! This crate reproduces both aspects:
//!
//! * [`sched::IspScheduler`] — the central scheduler: a serialized virtual
//!   clock (every transaction advances `max(sched, caller) + per_op`) plus
//!   centrally-maintained vector clocks, message logs, and epoch records.
//! * [`tool::IspLayer`] — the interposition layer: each operation round
//!   trips through the scheduler (cost) and reports enough information for
//!   central match detection. Wildcard receives are forced from the same
//!   [`dampi_core::DecisionSet`](dampi_core::decisions::DecisionSet) format
//!   DAMPI uses.
//! * [`verifier::IspVerifier`] — the driver, reusing DAMPI's depth-first
//!   schedule generator so the two tools differ *only* in architecture
//!   (centralized vs decentralized), exactly the comparison the paper
//!   makes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;
pub mod tool;
pub mod verifier;

pub use sched::IspScheduler;
pub use tool::IspLayer;
pub use verifier::IspVerifier;
