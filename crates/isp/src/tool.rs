//! `IspLayer`: ISP's interposition layer.
//!
//! Every MPI operation performs a synchronous transaction with the central
//! scheduler (cost: serialized virtual time plus a round trip, §II-A) and
//! reports the information the scheduler needs for exact central match
//! detection. Wildcard receives are forced from an Epoch Decisions set —
//! the same replay mechanism as DAMPI, but keyed by ISP's per-rank
//! non-deterministic event counters.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use dampi_core::decisions::DecisionSet;
use dampi_core::epoch::NdKind;
use dampi_mpi::matching::ProbeInfo;
use dampi_mpi::proc_api::{Mpi, Status};
use dampi_mpi::{Comm, ReduceOp, Request, Result, Tag, ANY_SOURCE};

use crate::sched::{CollClockKind, IspScheduler};

/// Request bookkeeping: what to report at completion time.
enum IspMeta {
    Send,
    Recv {
        comm: Comm,
        /// Epoch counter for wildcard receives.
        epoch: Option<u64>,
    },
}

/// The ISP tool layer for one rank.
pub struct IspLayer<M: Mpi> {
    inner: M,
    sched: Arc<IspScheduler>,
    decisions: Arc<DecisionSet>,
    rank: usize,
    nd_counter: u64,
    meta: HashMap<Request, IspMeta>,
    divergences: u64,
}

impl<M: Mpi> IspLayer<M> {
    /// Build the layer for one rank.
    pub fn new(inner: M, sched: Arc<IspScheduler>, decisions: Arc<DecisionSet>) -> Self {
        let rank = inner.world_rank();
        Self {
            inner,
            sched,
            decisions,
            rank,
            nd_counter: 0,
            meta: HashMap::new(),
            divergences: 0,
        }
    }

    /// The synchronous scheduler exchange every call performs.
    fn transact(&mut self) -> Result<()> {
        let now = self.inner.now();
        let new_vt = self.sched.transact(now);
        self.inner.compute((new_vt - now).max(0.0))
    }

    /// Resolve a wildcard source: ISP's central replay forcing.
    fn nd_source(&mut self) -> (i32, bool) {
        let counter = self.nd_counter;
        match self.decisions.lookup(self.rank, counter) {
            Some(src) => (src as i32, true),
            None => {
                if !self.decisions.is_self_run() && counter <= self.decisions.guided_epoch {
                    self.divergences += 1;
                }
                (ANY_SOURCE, false)
            }
        }
    }

    fn report_collective(
        &mut self,
        comm: Comm,
        _dataflow: CollClockKind,
        root: usize,
    ) -> Result<()> {
        self.transact()?;
        let crank = self.inner.comm_rank(comm)?;
        let size = self.inner.comm_size(comm)?;
        // The simulated runtime executes every collective as a full
        // rendezvous (each rank's exit happens-after every rank's entry),
        // so the causal model must carry all-to-all edges regardless of
        // the operation's MPI dataflow. Recording only the dataflow kind
        // (`_dataflow`, paper §II-E) under-orders post-collective sends
        // against pre-collective wildcard receives, and the scheduler
        // then proposes matches the runtime cannot realize — surfacing
        // as phantom deadlocks on clean programs (fuzz seed 66). The
        // DAMPI layer applies the same strengthening (`clock_allmax`);
        // both sides must agree or differential fuzzing diverges.
        self.sched
            .on_collective(self.rank, crank, comm, size, CollClockKind::AllMax, root);
        Ok(())
    }

    fn after_recv_complete(&mut self, req: Request, status: &Status) -> Result<()> {
        match self.meta.remove(&req) {
            Some(IspMeta::Recv { comm, epoch }) => {
                let src_world = self.inner.translate_rank(comm, status.source)?;
                self.sched.on_recv_complete(
                    self.rank,
                    comm,
                    src_world,
                    status.source,
                    status.tag,
                    epoch,
                );
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

impl<M: Mpi> Mpi for IspLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }
    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.transact()?;
        let crank = self.inner.comm_rank(comm)?;
        let dst_world = self.inner.translate_rank(comm, dest as usize)?;
        self.sched.on_send(self.rank, crank, dst_world, comm, tag);
        let req = self.inner.isend(comm, dest, tag, data)?;
        self.meta.insert(req, IspMeta::Send);
        Ok(req)
    }

    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.transact()?;
        if src == ANY_SOURCE {
            let (post_src, guided) = self.nd_source();
            let epoch = self
                .sched
                .on_nd_post(self.rank, comm, tag, NdKind::Recv, guided, None);
            debug_assert_eq!(epoch, self.nd_counter);
            self.nd_counter += 1;
            let req = self.inner.irecv(comm, post_src, tag)?;
            self.meta.insert(
                req,
                IspMeta::Recv {
                    comm,
                    epoch: Some(epoch),
                },
            );
            Ok(req)
        } else {
            let req = self.inner.irecv(comm, src, tag)?;
            self.meta.insert(req, IspMeta::Recv { comm, epoch: None });
            Ok(req)
        }
    }

    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        self.transact()?;
        let (status, data) = self.inner.wait(req)?;
        self.after_recv_complete(req, &status)?;
        Ok((status, data))
    }

    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        self.transact()?;
        match self.inner.test(req)? {
            Some((status, data)) => {
                self.after_recv_complete(req, &status)?;
                Ok(Some((status, data)))
            }
            None => Ok(None),
        }
    }

    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        self.transact()?;
        let (idx, status, data) = self.inner.waitany(reqs)?;
        self.after_recv_complete(reqs[idx], &status)?;
        Ok((idx, status, data))
    }

    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        self.transact()?;
        match self.inner.testany(reqs)? {
            Some((idx, status, data)) => {
                self.after_recv_complete(reqs[idx], &status)?;
                Ok(Some((idx, status, data)))
            }
            None => Ok(None),
        }
    }

    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        self.transact()?;
        let completed = self.inner.waitsome(reqs)?;
        for (idx, status, _) in &completed {
            self.after_recv_complete(reqs[*idx], status)?;
        }
        Ok(completed)
    }

    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        self.transact()?;
        if src == ANY_SOURCE {
            let (post_src, guided) = self.nd_source();
            let info = self.inner.probe(comm, post_src, tag)?;
            self.sched
                .on_nd_post(self.rank, comm, tag, NdKind::Probe, guided, Some(info.src));
            self.nd_counter += 1;
            return Ok(info);
        }
        self.inner.probe(comm, src, tag)
    }

    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        self.transact()?;
        if src == ANY_SOURCE {
            let (post_src, guided) = self.nd_source();
            return match self.inner.iprobe(comm, post_src, tag)? {
                Some(info) => {
                    self.sched.on_nd_post(
                        self.rank,
                        comm,
                        tag,
                        NdKind::Probe,
                        guided,
                        Some(info.src),
                    );
                    self.nd_counter += 1;
                    Ok(Some(info))
                }
                None => Ok(None),
            };
        }
        self.inner.iprobe(comm, src, tag)
    }

    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.barrier(comm)
    }

    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.report_collective(comm, CollClockKind::FromRoot, root)?;
        self.inner.bcast(comm, root, data)
    }

    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.report_collective(comm, CollClockKind::ToRoot, root)?;
        self.inner.reduce_u64(comm, root, value, op)
    }

    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.allreduce_u64(comm, value, op)
    }

    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.report_collective(comm, CollClockKind::ToRoot, root)?;
        self.inner.reduce_f64(comm, root, value, op)
    }

    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.allreduce_f64(comm, value, op)
    }

    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.report_collective(comm, CollClockKind::ToRoot, root)?;
        self.inner.gather(comm, root, data)
    }

    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.allgather(comm, data)
    }

    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.report_collective(comm, CollClockKind::FromRoot, root)?;
        self.inner.scatter(comm, root, data)
    }

    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.alltoall(comm, data)
    }

    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.comm_dup(comm)
    }

    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.comm_split(comm, color, key)
    }

    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.report_collective(comm, CollClockKind::AllMax, 0)?;
        self.inner.comm_free(comm)
    }

    fn pcontrol(&mut self, code: i32) -> Result<()> {
        self.inner.pcontrol(code)
    }

    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }

    fn finalize(&mut self) -> Result<()> {
        // One last transaction: the tool detaches from the scheduler.
        self.transact()?;
        self.sched.report_divergences(self.divergences);
        self.inner.finalize()
    }
}
