//! Campaign observability: counters, histograms, and a span-style trace.
//!
//! A long verification campaign (paper §IV: thousands of replays) must not
//! be a black box between launch and the final [`VerificationReport`](crate::report::VerificationReport). This
//! module provides the instrumentation layer every perf PR is judged with:
//!
//! * [`CampaignMetrics`] — cheap atomic counters and fixed-bucket
//!   histograms, shared by the scheduler walk, the replay workers, and the
//!   CLI's live progress reporter. When no sink is installed the
//!   exploration pays only an `Option` check per replay.
//! * [`CampaignTrace`] — a schema-versioned JSONL event stream (the
//!   [`dampi_mpi::trace`] event-writer pattern lifted to campaign
//!   granularity): one line per replay start/commit, checkpoint, timeout,
//!   and campaign boundary.
//!
//! # Determinism contract
//!
//! Metrics come in two classes, kept in separate sections of the exported
//! snapshot:
//!
//! * **Semantic** (`"semantic"`, deterministic): quantities defined by the
//!   exploration itself — interleaving counts, epoch-tree depth/width,
//!   error sets, late-message classification totals, piggyback wire bytes.
//!   These are updated exclusively from the walk's commit path, which the
//!   parallel driver executes in exactly the sequential order (see
//!   [`crate::scheduler`]), so the serialized `semantic` object is
//!   **byte-identical** for `--jobs 1` and `--jobs N`.
//! * **Wall-clock** (`"wall_clock"`, explicitly marked
//!   `"deterministic": false`): scheduling and timing facts — replays
//!   started/aborted, speculation hits, worker busy/idle time, journal
//!   write latency, per-replay wall latency. These depend on thread timing
//!   and differ run to run.
//!
//! The [`CampaignTrace`] is wall-clock-ordered by construction (events are
//! appended as they happen across threads) and is therefore *not*
//! deterministic across worker counts; its per-event payloads for commit
//! events are.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::Serialize;

use crate::epoch::ToolRunStats;
use crate::scheduler::Exploration;

/// Version of the metrics snapshot schema (the `"schema"` key).
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Version of the campaign-trace JSONL schema (the `"v"` key on every
/// line).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

// ---- Fixed-bucket histogram -----------------------------------------------

/// Lock-free fixed-bucket histogram: `record` is one atomic increment per
/// bucket plus two for the running sum/count, cheap enough for hot paths.
#[derive(Debug)]
pub struct FixedHistogram {
    /// Inclusive upper bounds, ascending; values above the last bound land
    /// in the overflow bucket.
    bounds: Vec<u64>,
    /// One counter per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl FixedHistogram {
    /// Histogram over the given inclusive upper bounds (must be ascending).
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Microsecond-latency buckets (1µs .. 10s), the default for I/O and
    /// replay latencies.
    #[must_use]
    pub fn latency_us() -> Self {
        Self::new(&[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000])
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// JSON snapshot: `{"buckets": [{"le": bound, "n": count}, ...],
    /// "overflow": n, "count": c, "sum": s}`.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let buckets: Vec<serde_json::Value> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(le, n)| serde_json::json!({"le": le, "n": n.load(Ordering::Relaxed)}))
            .collect();
        serde_json::json!({
            "buckets": buckets,
            "overflow": self.counts[self.bounds.len()].load(Ordering::Relaxed),
            "count": self.count(),
            "sum": self.sum(),
        })
    }
}

// ---- Semantic metrics ------------------------------------------------------

/// Deterministic, commit-ordered campaign quantities. Updated only by the
/// walk's commit path, which runs in the identical order for any `--jobs`
/// value; see the module docs for the determinism contract.
#[derive(Debug, Default, Clone)]
pub struct SemanticMetrics {
    /// Forks pushed onto the frontier across the campaign.
    pub forks_discovered: u64,
    /// Largest frontier ever observed (after a commit's fork pushes).
    pub frontier_peak: u64,
    /// Frontier size after the most recent commit.
    pub frontier_size: u64,
    /// Deepest committed replay (number of forced decisions; the initial
    /// `SELF_RUN` has depth 0).
    pub tree_depth_max: u64,
    /// Committed replays per decision depth — the epoch tree's width
    /// profile.
    pub replays_by_depth: BTreeMap<u64, u64>,
    /// Tool-stat sums over every committed run (final attempt of each).
    pub wildcards: u64,
    /// Messages analyzed by `FindPotentialMatches` across committed runs.
    pub messages_analyzed: u64,
    /// Of those, messages classified *late* (potential alternate matches).
    pub late_messages: u64,
    /// Piggyback messages generated across committed runs.
    pub pb_messages: u64,
    /// Piggyback wire bytes across committed runs (grows with world size
    /// under vector clocks — the §II-C scalability argument, measured).
    pub pb_wire_bytes: u64,
    /// Unreceived messages drained and analyzed at finalize.
    pub drained_messages: u64,
    /// §V unsafe-pattern monitor alerts across committed runs.
    pub unsafe_alerts: u64,
    /// Frontier alternates dropped by the static prune plan across
    /// committed runs (see `dampi_core::prune`).
    pub alternates_pruned: u64,
    /// Committed epoch instances the static analysis proved deterministic
    /// (singleton feasible sender set — no branching possible).
    pub wildcards_deterministic: u64,
    /// Frontier alternates dropped only by the fixed-point positional
    /// refinement (disjoint from `alternates_pruned`).
    pub refined_alternates_pruned: u64,
    /// Committed epoch instances only the refinement fixed point proved
    /// deterministic (disjoint from `wildcards_deterministic`).
    pub refined_wildcards_deterministic: u64,
    /// Frontier alternates dropped because the protocol's local type
    /// forbids their sender at that receive state (plan v3, disjoint from
    /// the envelope/refinement counters).
    pub protocol_alternates_pruned: u64,
    /// Committed epoch instances whose wildcard the protocol proved
    /// deterministic (the local type admits exactly one sender role).
    pub protocol_wildcards_deterministic: u64,
}

impl SemanticMetrics {
    fn absorb_commit(&mut self, oc: &ObservedCommit, frontier: usize) {
        self.forks_discovered += oc.forks_pushed as u64;
        self.frontier_size = frontier as u64;
        self.frontier_peak = self.frontier_peak.max(frontier as u64);
        self.tree_depth_max = self.tree_depth_max.max(oc.depth as u64);
        *self.replays_by_depth.entry(oc.depth as u64).or_insert(0) += 1;
        self.wildcards += oc.stats.wildcards;
        self.messages_analyzed += oc.stats.messages_analyzed;
        self.late_messages += oc.stats.late_messages;
        self.pb_messages += oc.stats.pb_messages;
        self.pb_wire_bytes += oc.stats.pb_wire_bytes;
        self.drained_messages += oc.stats.drained_messages;
        self.unsafe_alerts += oc.stats.unsafe_alerts;
        self.alternates_pruned += oc.alternates_pruned;
        self.wildcards_deterministic += oc.wildcards_deterministic;
        self.refined_alternates_pruned += oc.refined_alternates_pruned;
        self.refined_wildcards_deterministic += oc.refined_wildcards_deterministic;
        self.protocol_alternates_pruned += oc.protocol_alternates_pruned;
        self.protocol_wildcards_deterministic += oc.protocol_wildcards_deterministic;
    }
}

/// What the walk reports to the sinks when it commits one replay.
#[derive(Debug, Clone, Copy)]
pub struct ObservedCommit {
    /// 1-based interleaving number.
    pub interleaving: u64,
    /// Forced-decision count of the committed schedule (0 = `SELF_RUN`).
    pub depth: usize,
    /// Forks this commit pushed onto the frontier.
    pub forks_pushed: usize,
    /// Distinct new errors this commit contributed.
    pub new_errors: usize,
    /// Simulated makespan of the final attempt.
    pub makespan: f64,
    /// Execution attempts (1 + divergence retries).
    pub attempts: u64,
    /// Final attempt's tool stats.
    pub stats: ToolRunStats,
    /// Watchdog detail when the replay was killed over budget.
    pub timed_out: bool,
    /// Frontier alternates the static prune plan dropped at this commit.
    pub alternates_pruned: u64,
    /// Epoch instances in this commit the plan proved deterministic.
    pub wildcards_deterministic: u64,
    /// Alternates dropped at this commit by the refinement fixed point
    /// alone (disjoint from `alternates_pruned`).
    pub refined_alternates_pruned: u64,
    /// Epoch instances only the refinement proved deterministic.
    pub refined_wildcards_deterministic: u64,
    /// Alternates dropped at this commit because the protocol forbids
    /// their sender (disjoint from the other prune counters).
    pub protocol_alternates_pruned: u64,
    /// Epoch instances the protocol proved deterministic at this commit.
    pub protocol_wildcards_deterministic: u64,
}

// ---- Campaign metrics ------------------------------------------------------

/// Aggregated end-of-campaign numbers copied from the final
/// [`Exploration`] (deterministic — they are the exploration's own
/// fields).
#[derive(Debug, Default, Clone)]
struct FinalMetrics {
    interleavings: u64,
    errors: Vec<(u64, usize, String)>,
    divergences: u64,
    retries: u64,
    timeouts: u64,
    total_virtual_time: f64,
    budget_exhausted: bool,
    finished: bool,
}

/// The campaign metrics sink. One instance observes one exploration; share
/// it via [`Arc`] between the verifier, the CLI progress reporter, and the
/// snapshot writer. All methods take `&self` and are thread-safe.
#[derive(Debug)]
pub struct CampaignMetrics {
    /// Replays dispatched for execution (root + every job handed to a
    /// worker or popped by the sequential walk). Wall-clock-dependent
    /// under `--jobs N`: speculation dispatches ahead of the commit order.
    started: AtomicU64,
    /// Replays committed (mirror of the semantic interleaving count, kept
    /// atomic so the progress reporter can read it without locking).
    committed: AtomicU64,
    /// Replays dispatched but never committed: speculation past a
    /// budget/stop boundary, cancelled or still in flight at shutdown.
    aborted: AtomicU64,
    /// Commits whose replay had already completed speculatively before the
    /// fork reached the top of the frontier (latency fully hidden).
    speculation_hits: AtomicU64,
    /// Worker-pool size of the exploration (0 = sequential).
    workers: AtomicU64,
    /// Wall-clock nanoseconds workers spent executing replays.
    worker_busy_ns: AtomicU64,
    /// Wall-clock nanoseconds workers spent waiting for work.
    worker_idle_ns: AtomicU64,
    /// Per-replay wall latency (execution only, µs).
    replay_wall_us: FixedHistogram,
    /// Journal checkpoint write latency (µs).
    journal_write_us: FixedHistogram,
    /// Worker processes (or in-process stand-ins) spawned by the shard
    /// supervisor, initial fleet and restarts included. Zero outside
    /// `--shards` runs.
    workers_spawned: AtomicU64,
    /// Workers declared lost (crash, silence past the heartbeat timeout,
    /// wedged past the lease, or a corrupt result frame).
    workers_lost: AtomicU64,
    /// Lost workers successfully replaced (`workers_restarted <=
    /// workers_lost`; the difference is slots that exhausted their restart
    /// budget).
    workers_restarted: AtomicU64,
    /// Subtrees dispatched again after their worker was lost (attempt 2+).
    subtrees_redispatched: AtomicU64,
    /// Subtrees quarantined after exhausting their dispatch attempts.
    quarantined: AtomicU64,
    /// 1 when a persistent replay cache was attached to the campaign.
    cache_enabled: AtomicU64,
    /// 1 when the attached cache was opened read-only.
    cache_readonly: AtomicU64,
    /// Commits satisfied from the persistent replay cache (counted on the
    /// deterministic commit path only, so the tally is identical at any
    /// `--jobs`/`--shards` setting).
    cache_hits: AtomicU64,
    /// Commits that had to execute (or quarantine) because the cache had
    /// no valid entry. `hits + misses == replays_committed` exactly.
    cache_misses: AtomicU64,
    /// Cache entries successfully written after a miss committed.
    cache_stores: AtomicU64,
    /// On-disk entries rejected as corrupt/stale by the cache handle.
    cache_stale: AtomicU64,
    /// Campaign wall-clock epoch.
    start: Instant,
    semantic: Mutex<SemanticMetrics>,
    fin: Mutex<FinalMetrics>,
}

impl Default for CampaignMetrics {
    fn default() -> Self {
        Self {
            started: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            speculation_hits: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            worker_busy_ns: AtomicU64::new(0),
            worker_idle_ns: AtomicU64::new(0),
            replay_wall_us: FixedHistogram::latency_us(),
            journal_write_us: FixedHistogram::latency_us(),
            workers_spawned: AtomicU64::new(0),
            workers_lost: AtomicU64::new(0),
            workers_restarted: AtomicU64::new(0),
            subtrees_redispatched: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            cache_enabled: AtomicU64::new(0),
            cache_readonly: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_stores: AtomicU64::new(0),
            cache_stale: AtomicU64::new(0),
            start: Instant::now(),
            semantic: Mutex::new(SemanticMetrics::default()),
            fin: Mutex::new(FinalMetrics::default()),
        }
    }
}

impl CampaignMetrics {
    /// Fresh sink behind an `Arc` for sharing with the exploration.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// One schedule was dispatched for execution.
    pub fn on_started(&self) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }

    /// One replay finished executing (wall latency of the execution
    /// itself, all attempts included).
    pub fn on_executed(&self, wall: Duration) {
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        self.replay_wall_us.record(us);
        self.worker_busy_ns.fetch_add(
            u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// A worker spent `idle` blocked waiting for work.
    pub fn on_worker_idle(&self, idle: Duration) {
        self.worker_idle_ns.fetch_add(
            u64::try_from(idle.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Record the worker-pool size.
    pub fn on_pool(&self, workers: usize) {
        self.workers.store(workers as u64, Ordering::Relaxed);
    }

    /// The walk committed one replay with `frontier` forks now pending.
    pub fn on_commit(&self, oc: &ObservedCommit, frontier: usize) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.semantic.lock().absorb_commit(oc, frontier);
    }

    /// A commit's result had already completed speculatively.
    pub fn on_speculation_hit(&self) {
        self.speculation_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` dispatched replays were discarded without committing.
    pub fn on_aborted(&self, n: u64) {
        self.aborted.fetch_add(n, Ordering::Relaxed);
    }

    /// The shard supervisor spawned a worker (initial fleet or restart).
    pub fn on_worker_spawned(&self) {
        self.workers_spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// The shard supervisor declared a worker lost.
    pub fn on_worker_lost(&self) {
        self.workers_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// A lost worker's slot was successfully respawned.
    pub fn on_worker_restarted(&self) {
        self.workers_restarted.fetch_add(1, Ordering::Relaxed);
    }

    /// A subtree was dispatched again after its worker was lost.
    pub fn on_subtree_redispatched(&self) {
        self.subtrees_redispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// A subtree was quarantined after exhausting its dispatch attempts.
    pub fn on_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// A persistent replay cache is attached to this campaign.
    pub fn on_cache_enabled(&self, readonly: bool) {
        self.cache_enabled.store(1, Ordering::Relaxed);
        self.cache_readonly
            .store(u64::from(readonly), Ordering::Relaxed);
    }

    /// A commit was satisfied from the persistent replay cache.
    pub fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A commit executed (or quarantined) because the cache missed.
    pub fn on_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A missed result was written back to the cache.
    pub fn on_cache_store(&self) {
        self.cache_stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the cache handle's total stale-entry count (idempotent
    /// store, called once at campaign end).
    pub fn on_cache_stale(&self, total: u64) {
        self.cache_stale.store(total, Ordering::Relaxed);
    }

    /// One journal checkpoint was written.
    pub fn on_checkpoint(&self, latency: Duration) {
        self.journal_write_us
            .record(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// The exploration ended; copy its deterministic aggregates.
    pub fn on_finish(&self, ex: &Exploration) {
        let mut f = self.fin.lock();
        f.interleavings = ex.interleavings;
        f.errors = ex
            .errors
            .iter()
            .map(|e| (e.interleaving, e.rank, e.error.to_string()))
            .collect();
        f.divergences = ex.divergences;
        f.retries = ex.retries;
        f.timeouts = ex.timeouts.len() as u64;
        f.total_virtual_time = ex.total_virtual_time;
        f.budget_exhausted = ex.budget_exhausted;
        f.finished = true;
    }

    /// Live counters for a progress display (safe to call mid-campaign).
    #[must_use]
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            started: self.started.load(Ordering::Relaxed),
            frontier: self.semantic.lock().frontier_size,
            elapsed: self.start.elapsed(),
        }
    }

    /// Replays committed so far (lock-free).
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Replays dispatched so far (lock-free).
    #[must_use]
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Replays dispatched but never committed (final after the
    /// exploration returns).
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// End-of-campaign snapshot as schema-versioned JSON. The `semantic`
    /// section is byte-identical across `--jobs` values; the `wall_clock`
    /// section is explicitly marked non-deterministic. Call after the
    /// exploration returns ([`Self::on_finish`] has run).
    #[must_use]
    pub fn snapshot(
        &self,
        program: &str,
        nprocs: usize,
        clock_mode: &str,
        jobs: usize,
    ) -> serde_json::Value {
        let s = self.semantic.lock().clone();
        let f = self.fin.lock().clone();
        let errors: Vec<serde_json::Value> = f
            .errors
            .iter()
            .map(|(interleaving, rank, message)| {
                serde_json::json!({
                    "interleaving": interleaving,
                    "rank": rank,
                    "message": message,
                })
            })
            .collect();
        let by_depth: serde_json::Map<String, serde_json::Value> = s
            .replays_by_depth
            .iter()
            .map(|(d, n)| (d.to_string(), serde_json::json!(n)))
            .collect();
        let late_rate = if s.messages_analyzed > 0 {
            s.late_messages as f64 / s.messages_analyzed as f64
        } else {
            0.0
        };
        let elapsed = self.start.elapsed().as_secs_f64();
        let committed = self.committed();
        let semantic = serde_json::json!({
            "clock_mode": clock_mode,
            "interleavings": f.interleavings,
            "errors": errors,
            "divergences": f.divergences,
            "retries": f.retries,
            "timeouts": f.timeouts,
            "budget_exhausted": f.budget_exhausted,
            "total_virtual_time_s": f.total_virtual_time,
            "forks_discovered": s.forks_discovered,
            "frontier_peak": s.frontier_peak,
            "frontier_final": s.frontier_size,
            "tree_depth_max": s.tree_depth_max,
            "replays_by_depth": serde_json::Value::Object(by_depth),
            "wildcards": s.wildcards,
            "messages_analyzed": s.messages_analyzed,
            "late_messages": s.late_messages,
            "late_message_rate": late_rate,
            "pb_messages": s.pb_messages,
            "pb_wire_bytes": s.pb_wire_bytes,
            "drained_messages": s.drained_messages,
            "unsafe_alerts": s.unsafe_alerts,
            "alternates_pruned": s.alternates_pruned,
            "wildcards_deterministic": s.wildcards_deterministic,
            "refined_alternates_pruned": s.refined_alternates_pruned,
            "refined_wildcards_deterministic": s.refined_wildcards_deterministic,
            "protocol_alternates_pruned": s.protocol_alternates_pruned,
            "protocol_wildcards_deterministic": s.protocol_wildcards_deterministic,
        });
        let shard = serde_json::json!({
            "workers_spawned": self.workers_spawned.load(Ordering::Relaxed),
            "workers_lost": self.workers_lost.load(Ordering::Relaxed),
            "workers_restarted": self.workers_restarted.load(Ordering::Relaxed),
            "subtrees_redispatched": self.subtrees_redispatched.load(Ordering::Relaxed),
            "quarantined": self.quarantined.load(Ordering::Relaxed),
        });
        let cache = serde_json::json!({
            "enabled": self.cache_enabled.load(Ordering::Relaxed) == 1,
            "readonly": self.cache_readonly.load(Ordering::Relaxed) == 1,
            "hits": self.cache_hits.load(Ordering::Relaxed),
            "misses": self.cache_misses.load(Ordering::Relaxed),
            "stores": self.cache_stores.load(Ordering::Relaxed),
            "stale": self.cache_stale.load(Ordering::Relaxed),
        });
        let wall_clock = serde_json::json!({
            "deterministic": false,
            "wall_s": elapsed,
            "replays_per_s": if elapsed > 0.0 { committed as f64 / elapsed } else { 0.0 },
            "replays_started": self.started(),
            "replays_committed": committed,
            "replays_aborted": self.aborted(),
            "speculation_hits": self.speculation_hits.load(Ordering::Relaxed),
            "workers": self.workers.load(Ordering::Relaxed),
            "worker_busy_s": self.worker_busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            "worker_idle_s": self.worker_idle_ns.load(Ordering::Relaxed) as f64 / 1e9,
            "replay_wall_us": self.replay_wall_us.to_json(),
            "journal_write_us": self.journal_write_us.to_json(),
            "shard": shard,
        });
        serde_json::json!({
            "schema": METRICS_SCHEMA_VERSION,
            "program": program,
            "nprocs": nprocs,
            "jobs": jobs,
            "finished": f.finished,
            "semantic": semantic,
            "wall_clock": wall_clock,
            "cache": cache,
        })
    }
}

/// Live counters read by a progress display.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot {
    /// Replays committed so far.
    pub committed: u64,
    /// Replays dispatched so far.
    pub started: u64,
    /// Frontier size after the latest commit.
    pub frontier: u64,
    /// Wall-clock time since the sink was created.
    pub elapsed: Duration,
}

impl ProgressSnapshot {
    /// Committed replays per wall-clock second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.committed as f64 / s
        } else {
            0.0
        }
    }

    /// Estimated seconds to exhaust the remaining interleaving budget at
    /// the current rate (an upper bound — the frontier may drain first).
    #[must_use]
    pub fn eta_s(&self, max_interleavings: Option<u64>) -> Option<f64> {
        let max = max_interleavings?;
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        Some(max.saturating_sub(self.committed) as f64 / rate)
    }
}

// ---- Campaign trace --------------------------------------------------------

/// One campaign event, serialized as the JSONL line payload.
#[derive(Debug, Clone, Serialize)]
pub enum CampaignEvent {
    /// The exploration began.
    CampaignStart {
        /// Worker-pool size (1 = sequential).
        jobs: usize,
        /// True when continuing from a checkpoint journal.
        resumed: bool,
    },
    /// A replay began executing (wall-clock order, any worker).
    ReplayStart {
        /// Decision-prefix signature of the schedule.
        signature: u64,
    },
    /// The walk committed a replay (commit order — deterministic payload).
    ReplayCommit {
        /// 1-based interleaving number.
        interleaving: u64,
        /// Forced-decision count (0 = `SELF_RUN`).
        depth: usize,
        /// Forks pushed onto the frontier by this commit.
        forks_pushed: usize,
        /// Frontier size after the pushes.
        frontier: usize,
        /// Distinct new errors contributed.
        new_errors: usize,
        /// Simulated makespan of the final attempt.
        makespan_s: f64,
        /// Execution attempts (1 + divergence retries).
        attempts: u64,
        /// True when the watchdog killed the replay (subtree not
        /// expanded).
        timed_out: bool,
    },
    /// A commit was satisfied from the persistent replay cache — no
    /// replay was spawned for this schedule (hence no `ReplayStart`).
    CacheHit {
        /// Decision-prefix signature of the schedule.
        signature: u64,
    },
    /// A frontier checkpoint was journaled.
    Checkpoint {
        /// Write latency in microseconds.
        latency_us: u64,
        /// Frontier size journaled.
        frontier: usize,
    },
    /// The shard supervisor spawned a worker into a slot (`generation`
    /// counts incarnations of the slot, 0 = initial fleet).
    WorkerSpawned {
        /// Supervisor slot index.
        slot: usize,
        /// Incarnation number within the slot.
        generation: u64,
    },
    /// A worker was declared lost and killed.
    WorkerLost {
        /// Supervisor slot index.
        slot: usize,
        /// Human-readable loss verdict (heartbeat timeout, lease expiry,
        /// connection error, corrupt frame, ...).
        reason: String,
    },
    /// A subtree lost with its worker was dispatched again.
    SubtreeRedispatched {
        /// Decision-prefix signature of the schedule.
        signature: u64,
        /// 1-based dispatch attempt this event begins.
        attempt: u32,
    },
    /// A subtree exhausted its dispatch attempts and was quarantined: the
    /// campaign records it as a timeout (honest partial coverage) and
    /// keeps exploring the rest of the frontier.
    SubtreeQuarantined {
        /// Decision-prefix signature of the schedule.
        signature: u64,
        /// Dispatch attempts consumed before giving up.
        attempts: u32,
    },
    /// A sharded campaign was drained early (SIGTERM) and checkpointed.
    CampaignDrained {
        /// Frontier size preserved in the checkpoint journal.
        frontier: usize,
    },
    /// The exploration ended.
    CampaignEnd {
        /// Total interleavings executed.
        interleavings: u64,
        /// Distinct errors found.
        errors: usize,
        /// True when the interleaving budget stopped the walk.
        budget_exhausted: bool,
    },
}

/// One JSONL line: schema version, microseconds since campaign start, and
/// the event payload.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRecord {
    /// Trace schema version ([`TRACE_SCHEMA_VERSION`]).
    pub v: u32,
    /// Microseconds since the trace was opened (wall clock).
    pub t_us: u64,
    /// The event.
    pub event: CampaignEvent,
}

/// Append-only JSONL sink for [`CampaignEvent`]s. Thread-safe; writes are
/// line-atomic under an internal lock.
pub struct CampaignTrace {
    start: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for CampaignTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignTrace").finish_non_exhaustive()
    }
}

impl CampaignTrace {
    /// Trace into any writer (buffer it yourself if it is a raw file).
    #[must_use]
    pub fn to_writer(w: Box<dyn Write + Send>) -> Arc<Self> {
        Arc::new(Self {
            start: Instant::now(),
            sink: Mutex::new(w),
        })
    }

    /// Trace into a buffered file created (truncated) at `path`.
    pub fn to_file(path: &Path) -> io::Result<Arc<Self>> {
        let f = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(io::BufWriter::new(f))))
    }

    /// Trace into a shared in-memory buffer (tests).
    #[must_use]
    pub fn to_shared_buffer() -> (Arc<Self>, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedBuffer(Arc::clone(&buf));
        (Self::to_writer(Box::new(writer)), buf)
    }

    /// Append one event as a JSONL line. Errors are swallowed after a
    /// best-effort stderr note — tracing must never kill a healthy
    /// campaign.
    pub fn emit(&self, event: CampaignEvent) {
        let rec = TraceRecord {
            v: TRACE_SCHEMA_VERSION,
            t_us: u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            event,
        };
        let line = match serde_json::to_string(&rec) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("dampi: trace serialize failed: {e}");
                return;
            }
        };
        let mut g = self.sink.lock();
        if let Err(e) = writeln!(g, "{line}") {
            eprintln!("dampi: trace write failed: {e}");
        }
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&self) {
        let _ = self.sink.lock().flush();
    }
}

impl Drop for CampaignTrace {
    fn drop(&mut self) {
        let _ = self.sink.get_mut().flush();
    }
}

struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = FixedHistogram::new(&[10, 100]);
        h.record(5);
        h.record(10);
        h.record(50);
        h.record(1_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        let j = h.to_json();
        assert_eq!(j["buckets"][0]["n"], 2, "{j:?}");
        assert_eq!(j["buckets"][1]["n"], 1);
        assert_eq!(j["overflow"], 1);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = FixedHistogram::new(&[10, 10]);
    }

    #[test]
    fn commit_updates_semantic_counters() {
        let m = CampaignMetrics::new();
        let stats = ToolRunStats {
            wildcards: 3,
            late_messages: 2,
            messages_analyzed: 5,
            pb_messages: 7,
            pb_wire_bytes: 168,
            ..Default::default()
        };
        m.on_commit(
            &ObservedCommit {
                interleaving: 1,
                depth: 0,
                forks_pushed: 4,
                new_errors: 0,
                makespan: 0.5,
                attempts: 1,
                stats,
                timed_out: false,
                alternates_pruned: 2,
                wildcards_deterministic: 1,
                refined_alternates_pruned: 3,
                refined_wildcards_deterministic: 1,
                protocol_alternates_pruned: 2,
                protocol_wildcards_deterministic: 1,
            },
            4,
        );
        m.on_commit(
            &ObservedCommit {
                interleaving: 2,
                depth: 1,
                forks_pushed: 0,
                new_errors: 1,
                makespan: 0.5,
                attempts: 1,
                stats,
                timed_out: false,
                alternates_pruned: 0,
                wildcards_deterministic: 1,
                refined_alternates_pruned: 1,
                refined_wildcards_deterministic: 0,
                protocol_alternates_pruned: 0,
                protocol_wildcards_deterministic: 1,
            },
            3,
        );
        let s = m.semantic.lock().clone();
        assert_eq!(s.forks_discovered, 4);
        assert_eq!(s.frontier_peak, 4);
        assert_eq!(s.frontier_size, 3);
        assert_eq!(s.tree_depth_max, 1);
        assert_eq!(s.replays_by_depth[&0], 1);
        assert_eq!(s.replays_by_depth[&1], 1);
        assert_eq!(s.wildcards, 6);
        assert_eq!(s.pb_wire_bytes, 336);
        assert_eq!(s.alternates_pruned, 2);
        assert_eq!(s.wildcards_deterministic, 2);
        assert_eq!(s.refined_alternates_pruned, 4);
        assert_eq!(s.refined_wildcards_deterministic, 1);
        assert_eq!(s.protocol_alternates_pruned, 2);
        assert_eq!(s.protocol_wildcards_deterministic, 2);
        assert_eq!(m.committed(), 2);
    }

    #[test]
    fn snapshot_has_schema_and_sections() {
        let m = CampaignMetrics::new();
        m.on_started();
        m.on_finish(&Exploration::default());
        let j = m.snapshot("demo", 4, "lamport", 2);
        assert_eq!(j["schema"], METRICS_SCHEMA_VERSION);
        assert_eq!(j["semantic"]["clock_mode"], "lamport");
        assert_eq!(j["wall_clock"]["deterministic"], false);
        assert_eq!(j["wall_clock"]["replays_started"], 1);
        assert_eq!(j["finished"], true);
    }

    #[test]
    fn trace_emits_schema_versioned_jsonl() {
        let (trace, buf) = CampaignTrace::to_shared_buffer();
        trace.emit(CampaignEvent::CampaignStart {
            jobs: 2,
            resumed: false,
        });
        trace.emit(CampaignEvent::CampaignEnd {
            interleavings: 7,
            errors: 1,
            budget_exhausted: false,
        });
        trace.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert_eq!(v["v"], TRACE_SCHEMA_VERSION);
        }
        let last: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(last["event"]["CampaignEnd"]["interleavings"], 7);
    }

    #[test]
    fn eta_uses_remaining_budget() {
        let p = ProgressSnapshot {
            committed: 50,
            started: 60,
            frontier: 10,
            elapsed: Duration::from_secs(10),
        };
        assert!((p.rate() - 5.0).abs() < 1e-9);
        let eta = p.eta_s(Some(100)).unwrap();
        assert!((eta - 10.0).abs() < 1e-9, "{eta}");
        assert!(p.eta_s(None).is_none());
    }
}
