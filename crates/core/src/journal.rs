//! Checkpoint/resume for verification campaigns.
//!
//! A long exploration (hours of replays on the paper's larger benchmarks)
//! must survive the driver being killed — a preempted batch job, an OOM'd
//! login node, a ^C. The scheduler therefore journals its frontier after
//! every run: the visited-prefix signatures, the pending [`DecisionSet`]
//! stack, and every partial counter needed to rebuild the
//! [`crate::scheduler::Exploration`] exactly. `dampi-cli verify
//! --resume <journal>` reloads the journal and continues where the
//! campaign stopped; a resumed campaign finishes with the same
//! interleaving count and error set as an uninterrupted one because the
//! frontier order is preserved verbatim.
//!
//! Writes are crash-consistent: the journal is written to a `.tmp`
//! sibling, fsync'd, renamed over the target, and the directory entry is
//! fsync'd — so a kill at *any* instant (including `kill -9` mid-write or
//! mid-rename) leaves either the previous checkpoint or the new one, never
//! a torn file. A torn `.tmp` left behind by a crash is dead weight the
//! next checkpoint simply overwrites.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use dampi_mpi::LeakReport;
use serde::{Deserialize, Serialize};

use crate::decisions::DecisionSet;
use crate::epoch::ToolRunStats;
use crate::report::{FoundError, ReplayTimeoutRecord};

/// Journal format version; bumped on incompatible shape changes.
///
/// History:
/// - **1** — initial format (sequential exploration only).
/// - **2** — adds the `in_flight` set: signatures of forks a parallel
///   campaign had dispatched to workers but not yet committed when the
///   checkpoint was written. Version-1 journals load via
///   [`ExplorationJournal::load`]'s migration path (an empty in-flight
///   set), so pre-parallel journals resume unchanged.
pub const JOURNAL_VERSION: u32 = 2;

/// Oldest journal version [`ExplorationJournal::load`] can migrate.
pub const JOURNAL_MIN_VERSION: u32 = 1;

/// One pending branch of the depth-first frontier, as persisted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalFork {
    /// The guided schedule to replay.
    pub decisions: DecisionSet,
    /// Inherited bounded-mixing window (see `scheduler::Fork`).
    pub window_end: Option<usize>,
}

/// One epoch's discovered match set, flattened for JSON (object keys must
/// be strings, so the `(rank, clock)` map key becomes explicit fields).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveredEntry {
    /// World rank of the epoch.
    pub rank: usize,
    /// Scalar clock of the epoch.
    pub clock: u64,
    /// Every source discovered for it so far.
    pub sources: Vec<usize>,
}

/// A consistent snapshot of an in-progress exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorationJournal {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Interleavings executed so far (including the initial run).
    pub interleavings: u64,
    /// Divergence-triggered replay retries so far.
    pub retries: u64,
    /// Guided-lookup misses so far.
    pub divergences: u64,
    /// Simulated seconds summed over every run so far.
    pub total_virtual_time: f64,
    /// Tool stats of the initial `SELF_RUN`.
    pub first_run_stats: ToolRunStats,
    /// Simulated makespan of the initial run.
    pub first_run_makespan: f64,
    /// Leak census of the initial run.
    pub first_run_leaks: LeakReport,
    /// Distinct program bugs found so far, with reproduction schedules.
    pub errors: Vec<FoundError>,
    /// Replays the watchdog killed so far.
    pub timeouts: Vec<ReplayTimeoutRecord>,
    /// Discovered match coverage so far.
    pub discovered: Vec<DiscoveredEntry>,
    /// Signatures of every decision prefix already scheduled.
    pub visited: Vec<u64>,
    /// Signatures of frontier forks that were dispatched to replay workers
    /// but not yet committed when this checkpoint was written (format v2;
    /// empty for sequential campaigns and migrated v1 journals). Advisory:
    /// these forks are still in `frontier`, so a resume — parallel or
    /// sequential — simply re-runs them and lands on the same interleaving
    /// count and error set as an uninterrupted campaign.
    #[serde(default)]
    pub in_flight: Vec<u64>,
    /// Subtrees quarantined by the shard supervisor so far (each also has
    /// a record in `timeouts`). `#[serde(default)]` so journals written
    /// before sharding existed still load; always zero for in-process
    /// campaigns.
    #[serde(default)]
    pub quarantined: u64,
    /// The pending frontier, bottom-of-stack first (resume pops from the
    /// back, exactly as the interrupted walk would have).
    pub frontier: Vec<JournalFork>,
}

impl ExplorationJournal {
    /// Persist crash-consistently: write a `.tmp` sibling, fsync it, rename
    /// it over `path`, then fsync the parent directory. The data fsync
    /// orders the bytes before the rename commits them (a rename alone can
    /// be made durable ahead of the data it points at, leaving a
    /// zero-length or torn journal after a power cut); the directory fsync
    /// makes the rename itself durable.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        use std::io::Write;
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        let tmp = tmp_sibling(path);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directories open read-only on Unix; syncing one flushes the
            // rename. Best-effort: some filesystems refuse directory
            // fsync, and the journal itself is already durable.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load a journal, migrating older supported formats, and rebuild
    /// every deserialized decision index.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let mut j: Self = serde_json::from_str(&json).map_err(io::Error::other)?;
        if !(JOURNAL_MIN_VERSION..=JOURNAL_VERSION).contains(&j.version) {
            return Err(io::Error::other(format!(
                "journal version {} unsupported (expected {JOURNAL_MIN_VERSION}..={JOURNAL_VERSION})",
                j.version
            )));
        }
        if j.version < 2 {
            // v1 predates parallel exploration: nothing was ever in flight.
            j.in_flight = Vec::new();
        }
        j.version = JOURNAL_VERSION;
        for f in &mut j.frontier {
            f.decisions.rebuild_index();
        }
        for e in &mut j.errors {
            e.decisions.rebuild_index();
        }
        for t in &mut j.timeouts {
            t.decisions.rebuild_index();
        }
        Ok(j)
    }

    /// Rebuild the coverage map from the flattened entries.
    #[must_use]
    pub fn discovered_map(&self) -> BTreeMap<(usize, u64), BTreeSet<usize>> {
        self.discovered
            .iter()
            .map(|d| ((d.rank, d.clock), d.sources.iter().copied().collect()))
            .collect()
    }

    /// Flatten a coverage map into journal entries.
    #[must_use]
    pub fn flatten_discovered(
        map: &BTreeMap<(usize, u64), BTreeSet<usize>>,
    ) -> Vec<DiscoveredEntry> {
        map.iter()
            .map(|(&(rank, clock), srcs)| DiscoveredEntry {
                rank,
                clock,
                sources: srcs.iter().copied().collect(),
            })
            .collect()
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("journal"), ToOwned::to_owned);
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::EpochDecision;

    fn sample() -> ExplorationJournal {
        ExplorationJournal {
            version: JOURNAL_VERSION,
            interleavings: 5,
            retries: 1,
            divergences: 2,
            total_virtual_time: 1.25,
            first_run_stats: ToolRunStats {
                wildcards: 3,
                ..Default::default()
            },
            first_run_makespan: 0.25,
            first_run_leaks: LeakReport::default(),
            errors: vec![],
            timeouts: vec![],
            discovered: vec![DiscoveredEntry {
                rank: 0,
                clock: 2,
                sources: vec![0, 1],
            }],
            visited: vec![11, 22],
            in_flight: vec![22],
            quarantined: 0,
            frontier: vec![JournalFork {
                decisions: DecisionSet::guided(
                    4,
                    vec![EpochDecision {
                        rank: 0,
                        clock: 4,
                        src: 1,
                    }],
                ),
                window_end: Some(6),
            }],
        }
    }

    #[test]
    fn roundtrip_restores_indices() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        sample().save(&path).unwrap();
        let j = ExplorationJournal::load(&path).unwrap();
        assert_eq!(j.interleavings, 5);
        // The decision index is #[serde(skip)]; load must have rebuilt it.
        assert_eq!(j.frontier[0].decisions.lookup(0, 4), Some(1));
        assert_eq!(j.discovered_map()[&(0, 2)], BTreeSet::from([0, 1]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.json");
        let mut j = sample();
        j.version = JOURNAL_VERSION + 1;
        j.save(&path).unwrap();
        assert!(ExplorationJournal::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Apply a structured edit to a saved journal's JSON. Editing the
    /// parsed [`serde_json::Value`] (instead of string surgery on the
    /// serialized text) keeps the corruption tests correct under any serde
    /// field order or formatting.
    fn rewrite_json(
        path: &Path,
        edit: impl FnOnce(&mut serde_json::Map<String, serde_json::Value>),
    ) {
        let text = std::fs::read_to_string(path).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
        edit(v.as_object_mut().expect("journal serializes as an object"));
        std::fs::write(path, serde_json::to_string_pretty(&v).unwrap()).unwrap();
    }

    #[test]
    fn v1_journal_migrates_with_empty_in_flight() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1_migration.json");
        // A pre-parallel journal: version 1, no `in_flight` key at all.
        let mut v1 = sample();
        v1.version = 1;
        v1.save(&path).unwrap();
        rewrite_json(&path, |obj| {
            assert!(obj.remove("in_flight").is_some(), "field serialized");
        });
        let j = ExplorationJournal::load(&path).unwrap();
        assert_eq!(j.version, JOURNAL_VERSION, "migrated to current format");
        assert!(j.in_flight.is_empty(), "v1 never had work in flight");
        assert_eq!(j.interleavings, 5);
        assert_eq!(j.frontier[0].decisions.lookup(0, 4), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_in_file_is_rejected() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future_version.json");
        sample().save(&path).unwrap();
        rewrite_json(&path, |obj| {
            obj.insert("version".to_owned(), serde_json::json!(JOURNAL_VERSION + 1));
        });
        assert!(ExplorationJournal::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tmp_from_killed_checkpoint_leaves_previous_intact() {
        // Simulate a kill -9 mid-checkpoint: the previous journal is on
        // disk, and the in-progress write died partway through its `.tmp`
        // sibling (before the rename). Loading must resume from the
        // previous checkpoint; the next save must overwrite the debris.
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_tmp.json");
        sample().save(&path).unwrap();
        let full = serde_json::to_string_pretty(&sample()).unwrap();
        std::fs::write(tmp_sibling(&path), &full[..full.len() / 2]).unwrap();
        let j = ExplorationJournal::load(&path).unwrap();
        assert_eq!(j.interleavings, 5, "previous checkpoint resumes cleanly");
        let mut next = sample();
        next.interleavings = 6;
        next.save(&path).unwrap();
        assert!(
            !tmp_sibling(&path).exists(),
            "debris overwritten and renamed"
        );
        assert_eq!(ExplorationJournal::load(&path).unwrap().interleavings, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_journal_is_detected_not_misparsed() {
        // A journal torn at the *target* path (pre-fsync filesystems could
        // produce this; so can manual copying) must fail loudly instead of
        // resuming from garbage.
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        sample().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            std::fs::write(&path, &text[..cut]).unwrap();
            assert!(
                ExplorationJournal::load(&path).is_err(),
                "truncation at {cut} bytes must be detected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantined_defaults_to_zero_on_old_journals() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no_quarantine_field.json");
        let mut j = sample();
        j.quarantined = 3;
        j.save(&path).unwrap();
        assert_eq!(ExplorationJournal::load(&path).unwrap().quarantined, 3);
        rewrite_json(&path, |obj| {
            assert!(obj.remove("quarantined").is_some(), "field serialized");
        });
        let j = ExplorationJournal::load(&path).unwrap();
        assert_eq!(j.quarantined, 0, "pre-shard journals load as zero");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_rename() {
        let dir = std::env::temp_dir().join("dampi-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.json");
        sample().save(&path).unwrap();
        sample().save(&path).unwrap();
        // No .tmp residue after a successful save.
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}
