//! `DampiLayer`: the DAMPI interposition tool (paper Algorithm 1).
//!
//! One instance wraps each rank's MPI stack and implements, per operation:
//!
//! * **`MPI_Irecv`** — a wildcard source opens an epoch
//!   (`RecordEpochData`), ticks the clock, and — under `GUIDED_RUN` with
//!   the clock inside the guided horizon — is rewritten to the source the
//!   Epoch Decisions file prescribes (`GetSrcFromEpoch`). In
//!   separate-message mode *every* piggyback receive (named or wildcard)
//!   is deferred to completion time and consumed in posting-sequence
//!   order (§II-D; see `settle_earlier` for why posting named piggyback
//!   receives eagerly mispairs stamps on mixed streams).
//! * **`MPI_Isend`** — piggybacks the current clock stamp (separate shadow
//!   message or payload packing, per configuration).
//! * **`MPI_Wait`/`Test`/`Waitany`** — completes the piggyback exchange,
//!   merges the incoming stamp, and runs `FindPotentialMatches` (late
//!   message analysis) against the rank's epoch log.
//! * **Probes** — wildcard probes are epochs too; `Iprobe` is recorded only
//!   when its flag is true (§II-E).
//! * **Collectives** — the clock is exchanged all-to-all (max) for every
//!   collective, matching the simulated runtime's rendezvous semantics
//!   (see `clock_allmax`; the paper's per-dataflow exchange of §II-E
//!   would under-order this runtime's collectives).
//! * **`MPI_Pcontrol`** — brackets loop-iteration-abstraction regions
//!   (§III-B1).
//!
//! The layer also hosts the §V unsafe-pattern monitor.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use dampi_clocks::{ClockMode, ClockStamp};
use dampi_mpi::matching::ProbeInfo;
use dampi_mpi::proc_api::{Mpi, Status};
use dampi_mpi::{Comm, MpiError, ReduceOp, Request, Result, Tag, ANY_SOURCE, ANY_TAG};

use crate::clock::AnyClock;
use crate::config::PiggybackMechanism;
use crate::decisions::DecisionSet;
use crate::epoch::{EpochRecord, NdKind, ToolRunStats, TraceCollector};
use crate::late;
use crate::monitor::UnsafePatternMonitor;
use crate::pb;

/// `MPI_Pcontrol` code opening a loop-iteration-abstraction region.
pub const PCONTROL_LOOP_BEGIN: i32 = 2;
/// `MPI_Pcontrol` code closing a loop-iteration-abstraction region.
pub const PCONTROL_LOOP_END: i32 = 3;

/// Per-run shared context: decisions in, trace out.
#[derive(Debug)]
pub struct DampiCtx {
    /// Epoch Decisions driving this run (`self_run()` for the first).
    pub decisions: DecisionSet,
    /// Where each rank submits its epoch log at finalize.
    pub collector: Arc<TraceCollector>,
    /// Clock algebra for this session.
    pub clock_mode: ClockMode,
    /// Piggyback transport.
    pub piggyback: PiggybackMechanism,
    /// Run the §V monitor.
    pub monitor: bool,
    /// Virtual CPU seconds charged per late message analyzed.
    pub analysis_cost: f64,
    /// §V paired-clock fix: keep a separate transmittal clock that only
    /// learns of a wildcard receive's tick once its Wait/Test completes.
    pub deferred_clock: bool,
}

/// What the layer must do when an application request completes.
enum ReqMeta {
    /// Send with a separate piggyback message in flight.
    SendPb(Request),
    /// Send with the stamp packed into the payload: nothing pending.
    SendPacked,
    /// Separate-message receive (named or wildcard). The piggyback
    /// receive is deferred to completion time, and `seq` — the posting
    /// sequence number — orders shadow-stream consumption so stamps pair
    /// with the payloads the matcher actually gave each receive.
    RecvSep {
        comm: Comm,
        epoch_idx: Option<usize>,
        seq: u64,
    },
    /// Packing-mode receive: stamp arrives inside the payload.
    RecvPacked {
        comm: Comm,
        epoch_idx: Option<usize>,
    },
}

/// The DAMPI tool layer for one rank.
pub struct DampiLayer<M: Mpi> {
    inner: M,
    ctx: Arc<DampiCtx>,
    rank: usize,
    nprocs: usize,
    clock: AnyClock,
    /// §V paired-clock fix: the clock actually piggybacked on outgoing
    /// traffic. Identical to `clock` unless `deferred_clock` is on, in
    /// which case wildcard ticks reach it only at Wait/Test time.
    xmit: AnyClock,
    /// Currently in `GUIDED_RUN` (reverts to `SELF_RUN` past the horizon).
    guided: bool,
    epochs: Vec<EpochRecord>,
    meta: HashMap<Request, ReqMeta>,
    /// Application comm → shadow piggyback comm (separate-message mode).
    /// Ordered so finalize-time cleanup frees collectively in one order.
    shadow: BTreeMap<Comm, Comm>,
    /// Every live application communicator, for the finalize-time drain.
    known_comms: BTreeSet<Comm>,
    /// Monotone posting counter for separate-message receives.
    recv_seq: u64,
    /// Still-pending separate-message receives in posting order
    /// (`seq` → request and application comm), for `settle_earlier`.
    posted_recvs: BTreeMap<u64, (Request, Comm)>,
    /// Receives force-completed by piggyback sequencing, held with their
    /// status, payload, and stamp until the application claims them via
    /// `wait`/`test`/`waitany`/`testany`/`waitsome`. Clock effects are
    /// deferred to claim time so they land exactly where payload-packing
    /// mode would apply them.
    ready: HashMap<Request, (Status, Bytes, ClockStamp)>,
    region_depth: u32,
    monitor: UnsafePatternMonitor,
    stats: ToolRunStats,
    /// Epoch log already handed to the collector (normally at finalize).
    submitted: bool,
}

impl<M: Mpi> DampiLayer<M> {
    /// Build the layer for one rank. Creates the world shadow communicator
    /// (a collective — every rank constructs its layer before the program
    /// starts, so this is safe, mirroring tool setup inside `MPI_Init`).
    pub fn new(mut inner: M, ctx: Arc<DampiCtx>) -> Result<Self> {
        let rank = inner.world_rank();
        let nprocs = inner.world_size();
        let mut shadow = BTreeMap::new();
        if ctx.piggyback == PiggybackMechanism::SeparateMessage {
            let sh = inner.comm_dup(Comm::WORLD)?;
            shadow.insert(Comm::WORLD, sh);
        }
        let guided = !ctx.decisions.is_self_run();
        Ok(Self {
            inner,
            rank,
            nprocs,
            known_comms: BTreeSet::from([Comm::WORLD]),
            clock: AnyClock::new(ctx.clock_mode, rank, nprocs),
            xmit: AnyClock::new(ctx.clock_mode, rank, nprocs),
            guided,
            epochs: Vec::new(),
            meta: HashMap::new(),
            recv_seq: 0,
            posted_recvs: BTreeMap::new(),
            ready: HashMap::new(),
            shadow,
            region_depth: 0,
            monitor: UnsafePatternMonitor::new(ctx.monitor),
            stats: ToolRunStats::default(),
            submitted: false,
            ctx,
        })
    }

    /// Current clock (exposed for tests and diagnostics).
    #[must_use]
    pub fn clock_scalar(&self) -> u64 {
        self.clock.scalar()
    }

    /// The stamp piggybacked on outgoing traffic (§V: the transmittal
    /// clock when the paired-clock fix is on, else the analysis clock).
    fn xmit_stamp(&self) -> dampi_clocks::ClockStamp {
        if self.ctx.deferred_clock {
            self.xmit.stamp()
        } else {
            self.clock.stamp()
        }
    }

    /// §V synchronization point: a wildcard receive committed (Wait/Test),
    /// so its tick may now be transmitted.
    fn sync_clocks(&mut self) {
        if self.ctx.deferred_clock {
            self.xmit.merge(&self.clock.stamp());
        }
    }

    fn shadow_of(&self, comm: Comm) -> Result<Comm> {
        self.shadow
            .get(&comm)
            .copied()
            .ok_or_else(|| MpiError::ToolProtocol {
                detail: format!("no shadow communicator for {comm:?}"),
            })
    }

    fn transmit_guard(&mut self) {
        // §V: transmitting the clock while a wildcard receive is pending
        // makes late analysis unsound for that window.
        let _ = self.monitor.clock_transmitted();
    }

    /// Wildcard receive/probe entry: mode bookkeeping and source rewrite.
    fn nd_source(&mut self) -> (i32, bool) {
        let clock_val = self.clock.scalar();
        if self.guided && clock_val > self.ctx.decisions.guided_epoch {
            // Algorithm 1: past the horizon, revert to SELF_RUN.
            self.guided = false;
        }
        if self.guided {
            match self.ctx.decisions.lookup(self.rank, clock_val) {
                Some(src) => (src as i32, true),
                None => {
                    self.stats.divergences += 1;
                    (ANY_SOURCE, false)
                }
            }
        } else {
            (ANY_SOURCE, false)
        }
    }

    fn record_epoch(
        &mut self,
        comm: Comm,
        tag_spec: Tag,
        kind: NdKind,
        guided: bool,
        matched_src: Option<usize>,
    ) -> usize {
        // The epoch *id* is the pre-tick scalar (Algorithm 1 associates the
        // current LC with the event, then increments); the epoch *stamp* is
        // the event's timestamp — post-tick — so late analysis compares
        // against the receive event itself.
        let clock = self.clock.scalar();
        self.clock.tick();
        self.epochs.push(EpochRecord {
            rank: self.rank,
            clock,
            stamp: self.clock.stamp(),
            comm,
            tag_spec,
            kind,
            in_region: self.region_depth > 0,
            guided,
            matched_src,
            alternates: BTreeSet::new(),
        });
        self.stats.wildcards += 1;
        self.epochs.len() - 1
    }

    /// Non-deterministic receive (Algorithm 1, `MPI_Irecv` wildcard arm).
    fn nd_irecv(&mut self, comm: Comm, tag: Tag) -> Result<Request> {
        let (post_src, guided_flag) = self.nd_source();
        let req = self.inner.irecv(comm, post_src, tag)?;
        let epoch_idx = self.record_epoch(comm, tag, NdKind::Recv, guided_flag, None);
        match self.ctx.piggyback {
            PiggybackMechanism::SeparateMessage => {
                self.track_recv_sep(req, comm, Some(epoch_idx));
            }
            PiggybackMechanism::PayloadPacking => {
                self.meta.insert(
                    req,
                    ReqMeta::RecvPacked {
                        comm,
                        epoch_idx: Some(epoch_idx),
                    },
                );
            }
        }
        self.monitor.nd_posted(req);
        Ok(req)
    }

    /// Register a separate-message receive for deferred, posting-ordered
    /// piggyback consumption.
    fn track_recv_sep(&mut self, req: Request, comm: Comm, epoch_idx: Option<usize>) {
        let seq = self.recv_seq;
        self.recv_seq += 1;
        self.posted_recvs.insert(seq, (req, comm));
        self.meta.insert(
            req,
            ReqMeta::RecvSep {
                comm,
                epoch_idx,
                seq,
            },
        );
    }

    /// Consume one piggyback stamp from the shadow stream of the source
    /// and tag a completed receive actually matched.
    fn take_pb_stamp(&mut self, comm: Comm, status: Status) -> Result<ClockStamp> {
        let shadow = self.shadow_of(comm)?;
        let (_, pbdata) = self.inner.recv(shadow, status.source as i32, status.tag)?;
        Ok(pb::decode_stamp(&pbdata).0)
    }

    /// The `SeparateMessage` mispairing fix. Within one `(source, tag,
    /// comm)` stream the matcher hands payloads to compatible receives in
    /// *posting* order (non-overtaking), so the shadow piggyback stream —
    /// which arrives in send order — must be consumed in posting order
    /// too. Eagerly posting a named receive's piggyback irecv broke that
    /// whenever a wildcard posted earlier on the same stream was still
    /// unclaimed: the named receive stole the wildcard's stamp.
    ///
    /// Before a completing receive takes its own stamp, settle every
    /// earlier-posted receive on the same communicator the matcher has
    /// already completed: `test` it out of the runtime (non-consuming
    /// when incomplete — and an earlier-posted *incomplete* receive
    /// provably shares no stream with any already-matched payload, or the
    /// matcher would have picked it first), consume its piggyback, and
    /// park the result in `ready` for the application's own wait/test.
    fn settle_earlier(&mut self, comm: Comm, before_seq: u64) -> Result<()> {
        let earlier: Vec<(u64, Request)> = self
            .posted_recvs
            .range(..before_seq)
            .filter(|(_, (_, c))| *c == comm)
            .map(|(s, (r, _))| (*s, *r))
            .collect();
        for (seq, req) in earlier {
            if let Some((status, data)) = self.inner.test(req)? {
                self.posted_recvs.remove(&seq);
                let stamp = self.take_pb_stamp(comm, status)?;
                self.ready.insert(req, (status, data, stamp));
            }
        }
        Ok(())
    }

    /// Claim-time processing shared by the direct-completion and
    /// force-completed (`ready`) paths of a separate-message receive:
    /// monitor commit, §V clock sync, epoch bookkeeping, stamp ingestion.
    fn finish_recv_sep(
        &mut self,
        req: Request,
        status: Status,
        epoch_idx: Option<usize>,
        comm: Comm,
        stamp: &ClockStamp,
    ) -> Result<()> {
        self.monitor.nd_completed(req);
        self.sync_clocks();
        let mut matched_clock = None;
        if let Some(i) = epoch_idx {
            self.epochs[i].matched_src = Some(status.source);
            matched_clock = Some(self.epochs[i].clock);
        }
        self.ingest(stamp, status.source, status.tag, comm, matched_clock)
    }

    /// Serve a request force-completed by `settle_earlier`, applying the
    /// deferred clock effects now — the moment the application commits
    /// the completion, exactly where payload-packing mode applies them.
    fn claim_ready(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        let Some((status, data, stamp)) = self.ready.remove(&req) else {
            return Ok(None);
        };
        match self.meta.remove(&req) {
            Some(ReqMeta::RecvSep {
                comm, epoch_idx, ..
            }) => {
                self.finish_recv_sep(req, status, epoch_idx, comm, &stamp)?;
                Ok(Some((status, data)))
            }
            _ => Err(MpiError::ToolProtocol {
                detail: "force-completed request lost its receive metadata".to_owned(),
            }),
        }
    }

    /// Consume an incoming stamp: `FindPotentialMatches` then clock merge.
    fn ingest(
        &mut self,
        stamp: &dampi_clocks::ClockStamp,
        src: usize,
        tag: Tag,
        comm: Comm,
        matched_epoch_clock: Option<u64>,
    ) -> Result<()> {
        let was_late = late::analyze_incoming(
            &mut self.epochs,
            self.ctx.clock_mode,
            stamp,
            src,
            tag,
            comm,
            matched_epoch_clock,
        );
        self.stats.messages_analyzed += 1;
        if was_late {
            self.stats.late_messages += 1;
        }
        // FindPotentialMatches scans the epoch log: its cost grows with
        // the number of wildcard receives recorded so far, which is why
        // wildcard-heavy codes (104.milc) pay far more than sparse ones
        // (Table II). Each comparison is O(1) for scalar Lamport clocks
        // but O(N) for vector clocks — the per-operation side of the
        // §II-C scalability argument.
        if !self.epochs.is_empty() {
            let words = match self.ctx.clock_mode {
                ClockMode::Lamport => 1.0,
                ClockMode::Vector => self.nprocs as f64,
            };
            let per_compare = self.ctx.analysis_cost * (1.0 + words / 16.0);
            self.inner.compute(per_compare * self.epochs.len() as f64)?;
        }
        self.clock.merge(stamp);
        if self.ctx.deferred_clock {
            self.xmit.merge(stamp);
        }
        Ok(())
    }

    /// Post-completion processing shared by wait/test/waitany.
    fn after_completion(
        &mut self,
        req: Request,
        status: Status,
        data: Bytes,
    ) -> Result<(Status, Bytes)> {
        match self.meta.remove(&req) {
            None => Ok((status, data)),
            Some(ReqMeta::SendPb(pb)) => {
                self.inner.wait(pb)?;
                Ok((status, data))
            }
            Some(ReqMeta::SendPacked) => Ok((status, data)),
            Some(ReqMeta::RecvSep {
                comm,
                epoch_idx,
                seq,
            }) => {
                self.posted_recvs.remove(&seq);
                // §II-D: the source is now known, so the piggyback can be
                // received deterministically — after settling every
                // earlier-posted completed receive on this communicator,
                // so the shadow stream is consumed in posting order.
                self.settle_earlier(comm, seq)?;
                let stamp = self.take_pb_stamp(comm, status)?;
                self.finish_recv_sep(req, status, epoch_idx, comm, &stamp)?;
                Ok((status, data))
            }
            Some(ReqMeta::RecvPacked { comm, epoch_idx }) => {
                self.monitor.nd_completed(req);
                self.sync_clocks();
                let (stamp, payload) = pb::unpack(&data);
                let mut matched_clock = None;
                if let Some(i) = epoch_idx {
                    self.epochs[i].matched_src = Some(status.source);
                    matched_clock = Some(self.epochs[i].clock);
                }
                self.ingest(&stamp, status.source, status.tag, comm, matched_clock)?;
                Ok((status, payload))
            }
        }
    }

    /// Clock exchange for every collective: all-to-all max.
    ///
    /// The paper (§II-E) exchanges clocks along each collective's
    /// *dataflow* (root-to-all for bcast/scatter, all-to-root for
    /// reduce/gather), which is sound for real MPI where a non-root
    /// gather may return before other participants enter. This
    /// simulator's collectives are a full rendezvous — every rank's exit
    /// happens-after every rank's entry — so the causal model must carry
    /// the matching all-to-all edges. Tracking only the dataflow edges
    /// under-orders post-collective sends against pre-collective
    /// wildcard receives, and the verifier then forces replays the
    /// runtime cannot realize, which surface as phantom deadlocks on
    /// clean programs (found by `dampi-cli fuzz`, seed 66).
    fn clock_allmax(&mut self, comm: Comm) -> Result<()> {
        let words = AnyClock::stamp_words(&self.xmit_stamp());
        let merged = self.inner.allreduce_u64(comm, words, ReduceOp::Max)?;
        let stamp = AnyClock::stamp_from_words(self.ctx.clock_mode, &merged);
        self.clock.merge(&stamp);
        if self.ctx.deferred_clock {
            self.xmit.merge(&stamp);
        }
        Ok(())
    }

    fn adjust_probe(&self, info: ProbeInfo) -> ProbeInfo {
        match self.ctx.piggyback {
            PiggybackMechanism::SeparateMessage => info,
            PiggybackMechanism::PayloadPacking => ProbeInfo {
                len: info
                    .len
                    .saturating_sub(pb::stamp_wire_bytes(self.ctx.clock_mode, self.nprocs)),
                ..info
            },
        }
    }
}

impl<M: Mpi> Mpi for DampiLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }

    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.transmit_guard();
        self.stats.pb_messages += 1;
        match self.ctx.piggyback {
            PiggybackMechanism::SeparateMessage => {
                let req = self.inner.isend(comm, dest, tag, data)?;
                let stamp = pb::encode_stamp(&self.xmit_stamp());
                self.stats.pb_wire_bytes += stamp.len() as u64;
                let shadow = self.shadow_of(comm)?;
                let pbr = self.inner.isend(shadow, dest, tag, stamp)?;
                self.meta.insert(req, ReqMeta::SendPb(pbr));
                Ok(req)
            }
            PiggybackMechanism::PayloadPacking => {
                let packed = pb::pack(&self.xmit_stamp(), &data);
                // The stamp frame is the packing overhead on the wire.
                self.stats.pb_wire_bytes += (packed.len() - data.len()) as u64;
                let req = self.inner.isend(comm, dest, tag, packed)?;
                self.meta.insert(req, ReqMeta::SendPacked);
                Ok(req)
            }
        }
    }

    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        if src == ANY_SOURCE {
            return self.nd_irecv(comm, tag);
        }
        let req = self.inner.irecv(comm, src, tag)?;
        match self.ctx.piggyback {
            // Named receives defer their piggyback too: eagerly posting
            // it pairs stamps by *shadow arrival* order, which diverges
            // from payload pairing when a wildcard posted earlier on the
            // same stream is still unclaimed (the mispairing fixed by
            // `settle_earlier`).
            PiggybackMechanism::SeparateMessage => self.track_recv_sep(req, comm, None),
            PiggybackMechanism::PayloadPacking => {
                self.meta.insert(
                    req,
                    ReqMeta::RecvPacked {
                        comm,
                        epoch_idx: None,
                    },
                );
            }
        }
        Ok(req)
    }

    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        if let Some(done) = self.claim_ready(req)? {
            return Ok(done);
        }
        let (status, data) = self.inner.wait(req)?;
        self.after_completion(req, status, data)
    }

    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        if let Some(done) = self.claim_ready(req)? {
            return Ok(Some(done));
        }
        match self.inner.test(req)? {
            Some((status, data)) => self.after_completion(req, status, data).map(Some),
            None => Ok(None),
        }
    }

    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        if !self.ready.is_empty() {
            // Some request may have been force-completed by piggyback
            // sequencing; the runtime no longer knows it. Mirror the
            // runtime's lowest-index-completed policy across the mix of
            // parked and live requests.
            for (i, r) in reqs.iter().enumerate() {
                if let Some((status, data)) = self.claim_ready(*r)? {
                    return Ok((i, status, data));
                }
                if let Some((status, data)) = self.inner.test(*r)? {
                    let (status, data) = self.after_completion(*r, status, data)?;
                    return Ok((i, status, data));
                }
            }
        }
        let (idx, status, data) = self.inner.waitany(reqs)?;
        let (status, data) = self.after_completion(reqs[idx], status, data)?;
        Ok((idx, status, data))
    }

    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        if !self.ready.is_empty() {
            for (i, r) in reqs.iter().enumerate() {
                if let Some((status, data)) = self.claim_ready(*r)? {
                    return Ok(Some((i, status, data)));
                }
                if let Some((status, data)) = self.inner.test(*r)? {
                    let (status, data) = self.after_completion(*r, status, data)?;
                    return Ok(Some((i, status, data)));
                }
            }
            return Ok(None);
        }
        match self.inner.testany(reqs)? {
            Some((idx, status, data)) => {
                let (status, data) = self.after_completion(reqs[idx], status, data)?;
                Ok(Some((idx, status, data)))
            }
            None => Ok(None),
        }
    }

    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        if reqs.iter().any(|r| self.ready.contains_key(r)) {
            // A parked completion is immediately available: return
            // everything currently complete in index order, exactly like
            // the runtime's waitsome.
            let mut out = Vec::new();
            for (i, r) in reqs.iter().enumerate() {
                if let Some((status, data)) = self.claim_ready(*r)? {
                    out.push((i, status, data));
                } else if let Some((status, data)) = self.inner.test(*r)? {
                    let (status, data) = self.after_completion(*r, status, data)?;
                    out.push((i, status, data));
                }
            }
            return Ok(out);
        }
        let completed = self.inner.waitsome(reqs)?;
        let mut out = Vec::with_capacity(completed.len());
        for (idx, status, data) in completed {
            let (status, data) = self.after_completion(reqs[idx], status, data)?;
            out.push((idx, status, data));
        }
        Ok(out)
    }

    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        if src == ANY_SOURCE {
            let (post_src, guided_flag) = self.nd_source();
            let info = self.inner.probe(comm, post_src, tag)?;
            self.record_epoch(comm, tag, NdKind::Probe, guided_flag, Some(info.src));
            // A probe commits its match immediately: synchronize now.
            self.sync_clocks();
            return Ok(self.adjust_probe(info));
        }
        self.inner
            .probe(comm, src, tag)
            .map(|i| self.adjust_probe(i))
    }

    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        if src == ANY_SOURCE {
            let (post_src, guided_flag) = self.nd_source();
            return match self.inner.iprobe(comm, post_src, tag)? {
                // §II-E: only record when the flag says a message is ready.
                Some(info) => {
                    self.record_epoch(comm, tag, NdKind::Probe, guided_flag, Some(info.src));
                    self.sync_clocks();
                    Ok(Some(self.adjust_probe(info)))
                }
                None => Ok(None),
            };
        }
        Ok(self
            .inner
            .iprobe(comm, src, tag)?
            .map(|i| self.adjust_probe(i)))
    }

    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.transmit_guard();
        self.inner.barrier(comm)?;
        self.clock_allmax(comm)
    }

    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.transmit_guard();
        let out = self.inner.bcast(comm, root, data)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.transmit_guard();
        let out = self.inner.reduce_u64(comm, root, value, op)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.transmit_guard();
        let out = self.inner.allreduce_u64(comm, value, op)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.transmit_guard();
        let out = self.inner.reduce_f64(comm, root, value, op)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.transmit_guard();
        let out = self.inner.allreduce_f64(comm, value, op)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.transmit_guard();
        let out = self.inner.gather(comm, root, data)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.transmit_guard();
        let out = self.inner.allgather(comm, data)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.transmit_guard();
        let out = self.inner.scatter(comm, root, data)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.transmit_guard();
        let out = self.inner.alltoall(comm, data)?;
        self.clock_allmax(comm)?;
        Ok(out)
    }

    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.transmit_guard();
        let app = self.inner.comm_dup(comm)?;
        self.known_comms.insert(app);
        if self.ctx.piggyback == PiggybackMechanism::SeparateMessage {
            // §II-D: a shadow piggyback communicator for each existing
            // communicator in the program, created where we have collective
            // context.
            let sh = self.inner.comm_dup(comm)?;
            self.shadow.insert(app, sh);
        }
        self.clock_allmax(comm)?;
        Ok(app)
    }

    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.transmit_guard();
        let app = self.inner.comm_split(comm, color, key)?;
        if let Some(a) = app {
            self.known_comms.insert(a);
        }
        if self.ctx.piggyback == PiggybackMechanism::SeparateMessage {
            let sh = self.inner.comm_split(comm, color, key)?;
            if let (Some(a), Some(s)) = (app, sh) {
                self.shadow.insert(a, s);
            }
        }
        self.clock_allmax(comm)?;
        Ok(app)
    }

    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.transmit_guard();
        // Exchange on the communicator while it is still alive, then free
        // the shadow and the app communicator.
        self.clock_allmax(comm)?;
        self.known_comms.remove(&comm);
        if let Some(sh) = self.shadow.remove(&comm) {
            self.inner.comm_free(sh)?;
        }
        self.inner.comm_free(comm)
    }

    fn pcontrol(&mut self, code: i32) -> Result<()> {
        match code {
            PCONTROL_LOOP_BEGIN => self.region_depth += 1,
            PCONTROL_LOOP_END => self.region_depth = self.region_depth.saturating_sub(1),
            _ => {}
        }
        self.inner.pcontrol(code)
    }

    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }

    fn finalize(&mut self) -> Result<()> {
        // Sends that never matched a receive still *impinge* on their
        // destination and are potential matches for its epochs (§II-B, and
        // the paper's Fig. 3, where the alternate sender's message is never
        // received in the SELF_RUN). Synchronize so every pre-finalize send
        // has arrived, then drain and analyze pending messages.
        self.inner.barrier(Comm::WORLD)?;
        let comms: Vec<Comm> = self.known_comms.iter().copied().collect();
        for comm in comms {
            while let Some(info) = self.inner.iprobe(comm, ANY_SOURCE, ANY_TAG)? {
                let (_, data) = self.inner.recv(comm, info.src as i32, info.tag)?;
                let stamp = match self.ctx.piggyback {
                    PiggybackMechanism::SeparateMessage => {
                        let shadow = self.shadow_of(comm)?;
                        let (_, pbdata) = self.inner.recv(shadow, info.src as i32, info.tag)?;
                        pb::decode_stamp(&pbdata).0
                    }
                    PiggybackMechanism::PayloadPacking => pb::unpack(&data).0,
                };
                self.ingest(&stamp, info.src, info.tag, comm, None)?;
                self.stats.drained_messages += 1;
            }
        }
        // Free remaining shadow communicators (deterministic order — every
        // rank iterates the same BTreeMap keys) so tool-created
        // communicators never pollute the application's C-leak census.
        let shadows: Vec<Comm> = self.shadow.values().copied().collect();
        self.shadow.clear();
        for sh in shadows {
            self.inner.comm_free(sh)?;
        }
        self.submit_trace();
        self.inner.finalize()
    }
}

impl<M: Mpi> DampiLayer<M> {
    /// Hand the epoch log and stats to the collector (idempotent).
    fn submit_trace(&mut self) {
        if self.submitted {
            return;
        }
        self.submitted = true;
        // Final epoch hygiene: the matched source is not an alternate.
        for e in &mut self.epochs {
            if let Some(m) = e.matched_src {
                e.alternates.remove(&m);
            }
        }
        self.stats.unsafe_alerts = self.monitor.alerts();
        self.ctx
            .collector
            .submit(std::mem::take(&mut self.epochs), self.stats);
    }
}

impl<M: Mpi> Drop for DampiLayer<M> {
    fn drop(&mut self) {
        // A rank that errored or panicked never reaches `finalize`, but its
        // epoch log still describes real non-determinism the scheduler must
        // branch on — the buggy interleaving may be the SELF_RUN itself, and
        // dropping the log would silently prune every alternate reachable
        // from it. Flush here as a fallback; `finalize` already set the
        // flag on the happy path. (No MPI calls — the world may be dead.)
        self.submit_trace();
    }
}
