//! Verifier configuration.

use std::path::PathBuf;
use std::time::Duration;

use crate::bounds::MixingBound;
use dampi_clocks::ClockMode;

/// How clock stamps travel with messages (paper §II-D; mechanisms from
/// Schulz et al. \[15\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PiggybackMechanism {
    /// A separate piggyback message per payload message, sent on a shadow
    /// communicator — the mechanism DAMPI chose for implementation
    /// simplicity without sacrificing performance. *All* receives defer
    /// their piggyback receive until the main receive completes (so the
    /// source is known), per §II-D, and deferred piggybacks for one
    /// communicator are consumed in the posting order of the matched
    /// receives. Within a single (source, tag, communicator) stream the
    /// payload matcher hands messages to receives in posting order, so
    /// sequenced consumption pairs every stamp with its own payload even
    /// when wildcard and named receives interleave on the same stream —
    /// the mispairing that eager per-named-receive posting used to cause
    /// (regression: `crates/core/tests/piggyback_mispair.rs`).
    ///
    /// Remaining (accepted) divergence from [`Self::PayloadPacking`]: a
    /// receive that was matched but never waited on can be force-completed
    /// by the sequencing pass when a *later* receive on the same
    /// communicator completes, so it no longer shows up in the
    /// request-leak census. Programs that abandon matched requests and
    /// then complete another receive on the same communicator are the only
    /// shape affected.
    SeparateMessage,
    /// Prepend the stamp to the payload itself ("data payload packing") —
    /// exact pairing by construction, at the cost of touching every message
    /// buffer. Used as an ablation reference.
    PayloadPacking,
}

/// Exponential retry backoff with deterministic jitter and a cap.
///
/// The naive schedule (`base * 2^attempt`, unbounded, no jitter) has two
/// failure modes at shard scale: delays blow past any useful bound after a
/// handful of attempts, and N workers retrying the same contended resource
/// all sleep the exact same interval and collide again in lockstep. The
/// fix is the classic one: clamp to `cap`, then scale by a jitter factor
/// drawn from `[1 - jitter, 1]`. The draw is a pure hash of
/// `(seed, attempt)` — no global RNG — so a replay's retry schedule is a
/// deterministic function of its identity, which keeps sharded campaigns
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryBackoff {
    /// Delay before the first retry (attempt 0).
    pub base: Duration,
    /// Upper bound the exponential curve saturates at.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor in
    /// `[1 - jitter, 1]`. `0.0` disables jitter (exact exponential).
    pub jitter: f64,
}

impl RetryBackoff {
    /// No waiting at all — for tests that exercise retry *logic* without
    /// sleeping.
    pub const ZERO: RetryBackoff = RetryBackoff {
        base: Duration::ZERO,
        cap: Duration::ZERO,
        jitter: 0.0,
    };

    /// Constant (non-growing, jitter-free) schedule of `d` per attempt.
    #[must_use]
    pub const fn constant(d: Duration) -> Self {
        Self {
            base: d,
            cap: d,
            jitter: 0.0,
        }
    }

    /// The delay before retry number `attempt` (0-based), for the retry
    /// series identified by `seed`. Pure: same `(self, attempt, seed)`
    /// always yields the same `Duration`.
    #[must_use]
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.cap);
        if self.jitter <= 0.0 {
            return exp;
        }
        // splitmix64 over (seed, attempt) → uniform u in [0, 1).
        let mut z = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter.min(1.0) * u;
        Duration::from_secs_f64(exp.as_secs_f64() * factor)
    }
}

impl Default for RetryBackoff {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            jitter: 0.5,
        }
    }
}

/// Configuration of a DAMPI verification session.
#[derive(Debug, Clone)]
pub struct DampiConfig {
    /// Clock algebra: Lamport (scalable, default) or vector (precise
    /// reference mode for the §II-F completeness characterization).
    pub clock_mode: ClockMode,
    /// Bounded-mixing window (paper §III-B2). Default unbounded = full
    /// coverage.
    pub bound: MixingBound,
    /// Honor `pcontrol`-bracketed loop-iteration-abstraction regions
    /// (§III-B1): non-deterministic matches inside such regions follow the
    /// `SELF_RUN` outcome and are never branched on.
    pub honor_regions: bool,
    /// Hard cap on the number of interleavings (replays) explored.
    pub max_interleavings: Option<u64>,
    /// Stop the depth-first walk at the first program bug found.
    pub stop_on_first_error: bool,
    /// Run the §V unsafe-pattern monitor (clock transmitted between a
    /// wildcard `Irecv` and its `Wait`/`Test`).
    pub monitor_unsafe_pattern: bool,
    /// Piggyback transport mechanism.
    pub piggyback: PiggybackMechanism,
    /// Also branch on alternates discovered for *guided* (already-forced)
    /// epochs during replays. The paper's algorithm does not; enabling this
    /// explores additional interleavings a DPOR-style tool would.
    pub branch_on_guided: bool,
    /// The paper's §V proposed fix for the unsafe pattern ("a pair of
    /// Lamport clocks — one for handling wildcard receives, and the other
    /// for transmittal to other processes, synchronized when a Wait/Test
    /// is encountered"). When enabled, the clock a wildcard receive ticks
    /// is *not* transmitted until the receive completes, so a send racing
    /// the receive across an intervening barrier (Fig. 10) is still
    /// classified late. Off by default — the paper left this as future
    /// work and ships the monitor instead.
    pub deferred_clock_sync: bool,
    /// Extra attempts for a guided replay that diverges from its Epoch
    /// Decisions before the divergent result is accepted.
    pub divergence_retries: u32,
    /// Backoff schedule between divergence retries (exponential with
    /// deterministic jitter, capped).
    pub retry_backoff: RetryBackoff,
    /// When set, checkpoint the exploration frontier to this journal file
    /// after every run; `verify_resumed` continues from it.
    pub journal: Option<PathBuf>,
    /// Worker threads replaying frontier forks concurrently. `1` (the
    /// default) is the sequential walk; any `N` produces a bit-identical
    /// exploration (speculative replay, deterministic in-order merge —
    /// see [`crate::scheduler`]), only faster.
    pub jobs: usize,
    /// Simulated per-replay launch cost, paid once at the start of every
    /// *executed* run. On a real cluster each replay is an MPI job launch
    /// (queue + spawn + `MPI_Init`), which the in-process simulator does
    /// not otherwise price; benches and the CI warm-run contract set this
    /// so wall-clock comparisons reflect that bill. Replays served from
    /// the [`crate::cache`] store never execute, so they never pay it.
    /// Wall-clock only — virtual time, reports, and cache keys are
    /// unaffected. Default [`Duration::ZERO`].
    pub replay_cost: Duration,
}

impl Default for DampiConfig {
    fn default() -> Self {
        Self {
            clock_mode: ClockMode::Lamport,
            bound: MixingBound::Unbounded,
            honor_regions: true,
            max_interleavings: Some(100_000),
            stop_on_first_error: false,
            monitor_unsafe_pattern: true,
            piggyback: PiggybackMechanism::SeparateMessage,
            branch_on_guided: false,
            deferred_clock_sync: false,
            divergence_retries: 2,
            retry_backoff: RetryBackoff::default(),
            journal: None,
            jobs: 1,
            replay_cost: Duration::ZERO,
        }
    }
}

impl DampiConfig {
    /// Builder-style: set the clock mode.
    #[must_use]
    pub fn with_clock_mode(mut self, mode: ClockMode) -> Self {
        self.clock_mode = mode;
        self
    }

    /// Builder-style: set the bounded-mixing window.
    #[must_use]
    pub fn with_bound(mut self, bound: MixingBound) -> Self {
        self.bound = bound;
        self
    }

    /// Builder-style: cap interleavings.
    #[must_use]
    pub fn with_max_interleavings(mut self, max: u64) -> Self {
        self.max_interleavings = Some(max);
        self
    }

    /// Builder-style: stop at the first bug.
    #[must_use]
    pub fn stop_at_first_error(mut self) -> Self {
        self.stop_on_first_error = true;
        self
    }

    /// Builder-style: choose the piggyback mechanism.
    #[must_use]
    pub fn with_piggyback(mut self, pb: PiggybackMechanism) -> Self {
        self.piggyback = pb;
        self
    }

    /// Builder-style: enable the §V paired-clock fix.
    #[must_use]
    pub fn with_deferred_clock_sync(mut self) -> Self {
        self.deferred_clock_sync = true;
        self
    }

    /// Builder-style: set the divergence retry budget.
    #[must_use]
    pub fn with_divergence_retries(mut self, retries: u32) -> Self {
        self.divergence_retries = retries;
        self
    }

    /// Builder-style: checkpoint the frontier to `path` after every run.
    #[must_use]
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Builder-style: replay frontier forks on `jobs` worker threads
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Builder-style: charge every executed replay a simulated launch
    /// cost.
    #[must_use]
    pub fn with_replay_cost(mut self, cost: Duration) -> Self {
        self.replay_cost = cost;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = DampiConfig::default();
        assert_eq!(c.clock_mode, ClockMode::Lamport);
        assert_eq!(c.bound, MixingBound::Unbounded);
        assert_eq!(c.piggyback, PiggybackMechanism::SeparateMessage);
        assert!(c.honor_regions);
        assert!(!c.branch_on_guided);
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let b = RetryBackoff {
            base: Duration::from_millis(5),
            cap: Duration::from_secs(10),
            jitter: 0.0,
        };
        assert_eq!(b.delay(0, 7), Duration::from_millis(5));
        assert_eq!(b.delay(1, 7), Duration::from_millis(10));
        assert_eq!(b.delay(2, 7), Duration::from_millis(20));
        assert_eq!(b.delay(6, 7), Duration::from_millis(320));
        // Seed is irrelevant when jitter is off.
        assert_eq!(b.delay(3, 1), b.delay(3, 999));
    }

    #[test]
    fn backoff_saturates_at_cap() {
        let b = RetryBackoff {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            jitter: 0.0,
        };
        assert_eq!(b.delay(20, 0), Duration::from_millis(500));
        // Even an attempt count that overflows 2^attempt stays capped.
        assert_eq!(b.delay(u32::MAX, 0), Duration::from_millis(500));
    }

    #[test]
    fn backoff_jitter_bounded_and_deterministic() {
        let b = RetryBackoff::default();
        for attempt in 0..12 {
            for seed in [0u64, 1, 42, u64::MAX] {
                let exp = b
                    .base
                    .saturating_mul(2u32.saturating_pow(attempt))
                    .min(b.cap);
                let d = b.delay(attempt, seed);
                let lo = exp.as_secs_f64() * (1.0 - b.jitter);
                assert!(d.as_secs_f64() >= lo - 1e-12, "{d:?} below {lo}");
                assert!(d <= exp, "{d:?} above {exp:?}");
                // Pure function of (attempt, seed).
                assert_eq!(d, b.delay(attempt, seed));
            }
        }
        // Different seeds actually spread (the anti-lockstep property).
        assert_ne!(b.delay(3, 1), b.delay(3, 2));
    }

    #[test]
    fn backoff_zero_never_sleeps() {
        for attempt in [0, 1, 31, u32::MAX] {
            assert_eq!(RetryBackoff::ZERO.delay(attempt, 9), Duration::ZERO);
        }
        assert_eq!(
            RetryBackoff::constant(Duration::from_millis(2)).delay(9, 0),
            Duration::from_millis(2)
        );
    }

    #[test]
    fn builders_compose() {
        let c = DampiConfig::default()
            .with_clock_mode(ClockMode::Vector)
            .with_bound(MixingBound::K(2))
            .with_max_interleavings(10)
            .stop_at_first_error();
        assert_eq!(c.clock_mode, ClockMode::Vector);
        assert_eq!(c.bound, MixingBound::K(2));
        assert_eq!(c.max_interleavings, Some(10));
        assert!(c.stop_on_first_error);
    }
}
