//! Verifier configuration.

use std::path::PathBuf;
use std::time::Duration;

use crate::bounds::MixingBound;
use dampi_clocks::ClockMode;

/// How clock stamps travel with messages (paper §II-D; mechanisms from
/// Schulz et al. \[15\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PiggybackMechanism {
    /// A separate piggyback message per payload message, sent on a shadow
    /// communicator — the mechanism DAMPI chose for implementation
    /// simplicity without sacrificing performance. Wildcard receives defer
    /// their piggyback receive until the main receive completes (so the
    /// source is known), per §II-D.
    ///
    /// Known limitation inherited from the paper's scheme: if a program
    /// interleaves wildcard and named receives for the *same*
    /// (source, tag, communicator) stream, the deferred piggyback receive
    /// can pair with the wrong payload message.
    SeparateMessage,
    /// Prepend the stamp to the payload itself ("data payload packing") —
    /// exact pairing by construction, at the cost of touching every message
    /// buffer. Used as an ablation reference.
    PayloadPacking,
}

/// Configuration of a DAMPI verification session.
#[derive(Debug, Clone)]
pub struct DampiConfig {
    /// Clock algebra: Lamport (scalable, default) or vector (precise
    /// reference mode for the §II-F completeness characterization).
    pub clock_mode: ClockMode,
    /// Bounded-mixing window (paper §III-B2). Default unbounded = full
    /// coverage.
    pub bound: MixingBound,
    /// Honor `pcontrol`-bracketed loop-iteration-abstraction regions
    /// (§III-B1): non-deterministic matches inside such regions follow the
    /// `SELF_RUN` outcome and are never branched on.
    pub honor_regions: bool,
    /// Hard cap on the number of interleavings (replays) explored.
    pub max_interleavings: Option<u64>,
    /// Stop the depth-first walk at the first program bug found.
    pub stop_on_first_error: bool,
    /// Run the §V unsafe-pattern monitor (clock transmitted between a
    /// wildcard `Irecv` and its `Wait`/`Test`).
    pub monitor_unsafe_pattern: bool,
    /// Piggyback transport mechanism.
    pub piggyback: PiggybackMechanism,
    /// Also branch on alternates discovered for *guided* (already-forced)
    /// epochs during replays. The paper's algorithm does not; enabling this
    /// explores additional interleavings a DPOR-style tool would.
    pub branch_on_guided: bool,
    /// The paper's §V proposed fix for the unsafe pattern ("a pair of
    /// Lamport clocks — one for handling wildcard receives, and the other
    /// for transmittal to other processes, synchronized when a Wait/Test
    /// is encountered"). When enabled, the clock a wildcard receive ticks
    /// is *not* transmitted until the receive completes, so a send racing
    /// the receive across an intervening barrier (Fig. 10) is still
    /// classified late. Off by default — the paper left this as future
    /// work and ships the monitor instead.
    pub deferred_clock_sync: bool,
    /// Extra attempts for a guided replay that diverges from its Epoch
    /// Decisions before the divergent result is accepted.
    pub divergence_retries: u32,
    /// Base backoff between divergence retries (doubled per attempt).
    pub retry_backoff: Duration,
    /// When set, checkpoint the exploration frontier to this journal file
    /// after every run; `verify_resumed` continues from it.
    pub journal: Option<PathBuf>,
    /// Worker threads replaying frontier forks concurrently. `1` (the
    /// default) is the sequential walk; any `N` produces a bit-identical
    /// exploration (speculative replay, deterministic in-order merge —
    /// see [`crate::scheduler`]), only faster.
    pub jobs: usize,
}

impl Default for DampiConfig {
    fn default() -> Self {
        Self {
            clock_mode: ClockMode::Lamport,
            bound: MixingBound::Unbounded,
            honor_regions: true,
            max_interleavings: Some(100_000),
            stop_on_first_error: false,
            monitor_unsafe_pattern: true,
            piggyback: PiggybackMechanism::SeparateMessage,
            branch_on_guided: false,
            deferred_clock_sync: false,
            divergence_retries: 2,
            retry_backoff: Duration::from_millis(5),
            journal: None,
            jobs: 1,
        }
    }
}

impl DampiConfig {
    /// Builder-style: set the clock mode.
    #[must_use]
    pub fn with_clock_mode(mut self, mode: ClockMode) -> Self {
        self.clock_mode = mode;
        self
    }

    /// Builder-style: set the bounded-mixing window.
    #[must_use]
    pub fn with_bound(mut self, bound: MixingBound) -> Self {
        self.bound = bound;
        self
    }

    /// Builder-style: cap interleavings.
    #[must_use]
    pub fn with_max_interleavings(mut self, max: u64) -> Self {
        self.max_interleavings = Some(max);
        self
    }

    /// Builder-style: stop at the first bug.
    #[must_use]
    pub fn stop_at_first_error(mut self) -> Self {
        self.stop_on_first_error = true;
        self
    }

    /// Builder-style: choose the piggyback mechanism.
    #[must_use]
    pub fn with_piggyback(mut self, pb: PiggybackMechanism) -> Self {
        self.piggyback = pb;
        self
    }

    /// Builder-style: enable the §V paired-clock fix.
    #[must_use]
    pub fn with_deferred_clock_sync(mut self) -> Self {
        self.deferred_clock_sync = true;
        self
    }

    /// Builder-style: set the divergence retry budget.
    #[must_use]
    pub fn with_divergence_retries(mut self, retries: u32) -> Self {
        self.divergence_retries = retries;
        self
    }

    /// Builder-style: checkpoint the frontier to `path` after every run.
    #[must_use]
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Builder-style: replay frontier forks on `jobs` worker threads
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = DampiConfig::default();
        assert_eq!(c.clock_mode, ClockMode::Lamport);
        assert_eq!(c.bound, MixingBound::Unbounded);
        assert_eq!(c.piggyback, PiggybackMechanism::SeparateMessage);
        assert!(c.honor_regions);
        assert!(!c.branch_on_guided);
    }

    #[test]
    fn builders_compose() {
        let c = DampiConfig::default()
            .with_clock_mode(ClockMode::Vector)
            .with_bound(MixingBound::K(2))
            .with_max_interleavings(10)
            .stop_at_first_error();
        assert_eq!(c.clock_mode, ClockMode::Vector);
        assert_eq!(c.bound, MixingBound::K(2));
        assert_eq!(c.max_interleavings, Some(10));
        assert!(c.stop_on_first_error);
    }
}
