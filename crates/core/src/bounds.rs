//! Bounded mixing (paper §III-B2).
//!
//! A full depth-first walk over non-deterministic matches is exponential in
//! the number of wildcard receives. Bounded mixing exploits the paper's
//! empirical observation that MPI programs move through *zones* whose
//! effects rarely reach far: when the schedule generator forces an
//! alternate match at epoch *s*, the replay subtree rooted there may branch
//! only on epochs within *k* further non-deterministic events of *s* —
//! beyond the window, matching reverts to whatever the runtime does
//! (`SELF_RUN`). Every epoch of the initial run anchors its own window, so
//! windows *overlap* and total search cost becomes a sum of `O(P^k)`
//! subtrees instead of one `P^N` tree. `k = 0` yields roughly `P·N`
//! interleavings for a program with `N` wildcards of `P` senders each;
//! `k = ∞` is full coverage. The window arithmetic itself lives in
//! [`crate::scheduler`].

/// Mixing bound: how far below a forced match the search keeps branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixingBound {
    /// Full exploration (the paper's "No Bounds" curve).
    Unbounded,
    /// Branch only on epochs at most `k` non-deterministic events below
    /// the subtree's anchoring forced match.
    K(u32),
}

impl MixingBound {
    /// Short label for reports and bench tables ("k=2", "unbounded").
    #[must_use]
    pub fn label(self) -> String {
        match self {
            MixingBound::Unbounded => "unbounded".to_owned(),
            MixingBound::K(k) => format!("k={k}"),
        }
    }

    /// The window height, if bounded.
    #[must_use]
    pub fn k(self) -> Option<u32> {
        match self {
            MixingBound::Unbounded => None,
            MixingBound::K(k) => Some(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MixingBound::Unbounded.label(), "unbounded");
        assert_eq!(MixingBound::K(3).label(), "k=3");
    }

    #[test]
    fn k_accessor() {
        assert_eq!(MixingBound::Unbounded.k(), None);
        assert_eq!(MixingBound::K(2).k(), Some(2));
    }
}
