//! Verification reports.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dampi_clocks::ClockMode;
use dampi_mpi::{LeakReport, MpiError};
use serde::{Deserialize, Serialize};

use crate::bounds::MixingBound;
use crate::decisions::DecisionSet;

/// A program bug found during exploration, with its reproduction recipe:
/// replaying `decisions` deterministically re-triggers the bug.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundError {
    /// 1-based interleaving number in which the bug first manifested.
    pub interleaving: u64,
    /// World rank that failed.
    pub rank: usize,
    /// The failure.
    pub error: MpiError,
    /// Epoch Decisions that force the failing schedule.
    pub decisions: DecisionSet,
}

/// A replay the watchdog killed ([`dampi_mpi::ReplayBudget`]): coverage of
/// that schedule is *partial* and the report says so instead of silently
/// skipping it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayTimeoutRecord {
    /// 1-based interleaving number of the killed replay.
    pub interleaving: u64,
    /// Which budget tripped, with the limit and observed value.
    pub detail: String,
    /// The decisions that were being forced when the watchdog fired.
    pub decisions: DecisionSet,
}

/// Everything a verification session produced.
#[derive(Debug)]
pub struct VerificationReport {
    /// Program name (from `MpiProgram::name`).
    pub program: String,
    /// World size.
    pub nprocs: usize,
    /// Clock algebra used.
    pub clock_mode: ClockMode,
    /// Bounded-mixing setting.
    pub bound: MixingBound,
    /// Interleavings executed (including the initial `SELF_RUN`).
    pub interleavings: u64,
    /// Distinct program bugs, each with a reproduction schedule.
    pub errors: Vec<FoundError>,
    /// Resource-leak census of the initial run (Table II C-leak/R-leak).
    pub leaks: LeakReport,
    /// Wildcard operations analyzed in the initial run (Table II R\*).
    pub wildcards_analyzed: u64,
    /// §V unsafe-pattern monitor alerts.
    pub unsafe_alerts: u64,
    /// Guided-replay divergences across all runs.
    pub divergences: u64,
    /// Replays re-executed after a divergence (bounded retry-with-backoff).
    pub retries: u64,
    /// Replays killed by the watchdog budget — schedules with only partial
    /// coverage. Quarantined subtrees (see
    /// [`VerificationReport::quarantined`]) are recorded here too, as
    /// synthetic timeouts.
    pub timeouts: Vec<ReplayTimeoutRecord>,
    /// Subtrees a shard supervisor quarantined after exhausting their
    /// dispatch attempts (repeated worker loss). Each one also appears in
    /// [`VerificationReport::timeouts`]; always zero for in-process runs.
    pub quarantined: u64,
    /// True when a sharded campaign was drained early (SIGTERM) and
    /// checkpointed instead of running to completion — the report covers
    /// only the committed prefix and the journal holds the rest.
    pub drained: bool,
    /// Piggyback messages generated in the initial run.
    pub pb_messages: u64,
    /// Simulated seconds of the initial (instrumented) run.
    pub first_run_makespan: f64,
    /// Simulated seconds summed over every interleaving — the cost of the
    /// whole exploration (paper Fig. 6's y-axis).
    pub total_virtual_time: f64,
    /// True when `max_interleavings` cut the walk short.
    pub budget_exhausted: bool,
    /// Frontier alternates dropped by the static prune plan
    /// (`--prune-static`); zero when pruning was off.
    pub alternates_pruned: u64,
    /// Committed epoch instances the static analysis proved deterministic
    /// (singleton feasible sender set).
    pub wildcards_deterministic: u64,
    /// Frontier alternates dropped only by the cross-epoch fixed-point
    /// refinement (plan v2); disjoint from `alternates_pruned`.
    pub refined_alternates_pruned: u64,
    /// Committed epoch instances deterministic only at the refinement
    /// fixed point; disjoint from `wildcards_deterministic`.
    pub refined_wildcards_deterministic: u64,
    /// Frontier alternates dropped because the protocol's local type
    /// forbids their sender (plan v3); disjoint from the other prune
    /// counters.
    pub protocol_alternates_pruned: u64,
    /// Committed epoch instances whose wildcard the protocol proved
    /// deterministic; disjoint from the other deterministic counters.
    pub protocol_wildcards_deterministic: u64,
    /// Per-epoch `(rank, clock)` union of every discovered match (matched
    /// source and alternates, over all runs) — the verifier's coverage.
    pub discovered: BTreeMap<(usize, u64), BTreeSet<usize>>,
}

impl VerificationReport {
    /// Number of deadlocks among the found errors.
    #[must_use]
    pub fn deadlocks(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| matches!(e.error, MpiError::Deadlock { .. }))
            .count()
    }

    /// Number of application assertion failures among the found errors.
    #[must_use]
    pub fn assertion_failures(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| matches!(e.error, MpiError::UserAssert { .. }))
            .count()
    }

    /// True when no bug was found and no resource leaked.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.leaks.is_clean()
    }

    /// Total distinct match outcomes discovered across all epochs — the
    /// quantity vector clocks can strictly increase on cross-coupled
    /// patterns (§II-F).
    #[must_use]
    pub fn total_discovered_matches(&self) -> usize {
        self.discovered.values().map(BTreeSet::len).sum()
    }

    /// Canonical error-set signature for differential comparison between
    /// clock modes, piggyback mechanisms, and the ISP baseline.
    ///
    /// Each found error maps to a stable string that names the bug but not
    /// the schedule that reached it: deadlocks by their blocked-rank set,
    /// assertions by rank and message, collective mismatches and other
    /// errors by kind and rank. Interleaving indices and decision files
    /// are deliberately excluded — two searches that find the same bugs
    /// along different paths have equal signatures.
    #[must_use]
    pub fn error_signature(&self) -> BTreeSet<String> {
        self.errors
            .iter()
            .map(|e| match &e.error {
                // Deliberately rank-free: the *secondary* blocked set (ranks
                // stuck behind the starved one in collectives) depends on how
                // far each rank ran before detection, which differs between
                // the centralized ISP scheduler and DAMPI's decentralized one.
                MpiError::Deadlock { .. } => "deadlock".to_owned(),
                MpiError::UserAssert { message } => {
                    format!("assert:rank{}:{message}", e.rank)
                }
                MpiError::CollectiveMismatch { .. } => {
                    format!("collective-mismatch:rank{}", e.rank)
                }
                other => format!("{}:rank{}", error_kind(other), e.rank),
            })
            .collect()
    }

    /// Machine-readable export of the report (CI integration, the CLI's
    /// `--json` mode). Epoch keys are rendered as `"rank:clock"` strings.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let errors: Vec<serde_json::Value> = self
            .errors
            .iter()
            .map(|e| {
                serde_json::json!({
                    "interleaving": e.interleaving,
                    "rank": e.rank,
                    "error": e.error,
                    "message": e.error.to_string(),
                    "decisions": e.decisions,
                })
            })
            .collect();
        let discovered: serde_json::Map<String, serde_json::Value> = self
            .discovered
            .iter()
            .map(|((rank, clock), srcs)| {
                (
                    format!("{rank}:{clock}"),
                    serde_json::json!(srcs.iter().collect::<Vec<_>>()),
                )
            })
            .collect();
        serde_json::json!({
            "program": self.program,
            "nprocs": self.nprocs,
            "clock_mode": self.clock_mode.name(),
            "bound": self.bound.label(),
            "interleavings": self.interleavings,
            "budget_exhausted": self.budget_exhausted,
            "errors": errors,
            "deadlocks": self.deadlocks(),
            "assertion_failures": self.assertion_failures(),
            "leaks": self.leaks,
            "wildcards_analyzed": self.wildcards_analyzed,
            "unsafe_alerts": self.unsafe_alerts,
            "divergences": self.divergences,
            "retries": self.retries,
            "timeouts": self
                .timeouts
                .iter()
                .map(|t| {
                    serde_json::json!({
                        "interleaving": t.interleaving,
                        "detail": t.detail,
                        "decisions": t.decisions,
                    })
                })
                .collect::<Vec<_>>(),
            "quarantined": self.quarantined,
            "drained": self.drained,
            "pb_messages": self.pb_messages,
            "alternates_pruned": self.alternates_pruned,
            "wildcards_deterministic": self.wildcards_deterministic,
            "refined_alternates_pruned": self.refined_alternates_pruned,
            "refined_wildcards_deterministic": self.refined_wildcards_deterministic,
            "protocol_alternates_pruned": self.protocol_alternates_pruned,
            "protocol_wildcards_deterministic": self.protocol_wildcards_deterministic,
            "first_run_makespan_s": self.first_run_makespan,
            "total_virtual_time_s": self.total_virtual_time,
            "discovered": discovered,
        })
    }
}

/// Stable kind name for the error-signature's catch-all arm.
fn error_kind(e: &MpiError) -> &'static str {
    match e {
        MpiError::Deadlock { .. } => "deadlock",
        MpiError::Aborted { .. } => "aborted",
        MpiError::InvalidRank { .. } => "invalid-rank",
        MpiError::InvalidComm => "invalid-comm",
        MpiError::InvalidRequest => "invalid-request",
        MpiError::CollectiveMismatch { .. } => "collective-mismatch",
        MpiError::UserAssert { .. } => "assert",
        MpiError::Panicked { .. } => "panicked",
        MpiError::ToolProtocol { .. } => "tool-protocol",
        MpiError::Budget { .. } => "budget",
        MpiError::ReplayTimeout { .. } => "replay-timeout",
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DAMPI verification of `{}` ({} procs, {} clocks, {})",
            self.program,
            self.nprocs,
            self.clock_mode.name(),
            self.bound.label()
        )?;
        writeln!(
            f,
            "  interleavings: {}{}",
            self.interleavings,
            if self.budget_exhausted {
                " (budget exhausted)"
            } else {
                ""
            }
        )?;
        writeln!(f, "  wildcards analyzed (R*): {}", self.wildcards_analyzed)?;
        if self.alternates_pruned > 0 || self.wildcards_deterministic > 0 {
            writeln!(
                f,
                "  static pruning: {} alternate(s) dropped, {} deterministic wildcard instance(s)",
                self.alternates_pruned, self.wildcards_deterministic
            )?;
        }
        if self.refined_alternates_pruned > 0 || self.refined_wildcards_deterministic > 0 {
            writeln!(
                f,
                "  fixed-point refinement: {} additional alternate(s) dropped, {} additional deterministic wildcard instance(s)",
                self.refined_alternates_pruned, self.refined_wildcards_deterministic
            )?;
        }
        if self.protocol_alternates_pruned > 0 || self.protocol_wildcards_deterministic > 0 {
            writeln!(
                f,
                "  protocol conformance: {} alternate(s) dropped, {} protocol-deterministic wildcard instance(s)",
                self.protocol_alternates_pruned, self.protocol_wildcards_deterministic
            )?;
        }
        writeln!(
            f,
            "  C-leak: {}   R-leak: {}",
            if self.leaks.has_comm_leak() {
                "Yes"
            } else {
                "No"
            },
            if self.leaks.has_request_leak() {
                "Yes"
            } else {
                "No"
            },
        )?;
        writeln!(
            f,
            "  virtual time: first run {:.6}s, exploration total {:.3}s",
            self.first_run_makespan, self.total_virtual_time
        )?;
        if self.retries > 0 || self.divergences > 0 {
            writeln!(
                f,
                "  divergences: {} (replays retried {} times)",
                self.divergences, self.retries
            )?;
        }
        if !self.timeouts.is_empty() {
            writeln!(
                f,
                "  WARNING: {} replay(s) killed by the watchdog — coverage of those schedules is partial:",
                self.timeouts.len()
            )?;
            for t in &self.timeouts {
                writeln!(f, "    [interleaving {}] {}", t.interleaving, t.detail)?;
            }
        }
        if self.quarantined > 0 {
            writeln!(
                f,
                "  WARNING: {} subtree(s) quarantined after repeated worker loss — coverage of those schedules is partial",
                self.quarantined
            )?;
        }
        if self.drained {
            writeln!(
                f,
                "  NOTE: campaign drained early (SIGTERM) — the checkpoint journal holds the unexplored frontier"
            )?;
        }
        if self.unsafe_alerts > 0 {
            writeln!(
                f,
                "  WARNING: unsafe pattern (clock transmitted before Wait) seen {} times",
                self.unsafe_alerts
            )?;
        }
        if self.errors.is_empty() {
            writeln!(f, "  no errors found")?;
        } else {
            writeln!(f, "  errors ({}):", self.errors.len())?;
            for e in &self.errors {
                writeln!(
                    f,
                    "    [interleaving {}] rank {}: {}",
                    e.interleaving, e.rank, e.error
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> VerificationReport {
        VerificationReport {
            program: "demo".into(),
            nprocs: 4,
            clock_mode: ClockMode::Lamport,
            bound: MixingBound::Unbounded,
            interleavings: 7,
            errors: vec![
                FoundError {
                    interleaving: 3,
                    rank: 1,
                    error: MpiError::UserAssert {
                        message: "x==33".into(),
                    },
                    decisions: DecisionSet::self_run(),
                },
                FoundError {
                    interleaving: 5,
                    rank: 0,
                    error: MpiError::Deadlock {
                        blocked_ranks: vec![0, 1],
                    },
                    decisions: DecisionSet::self_run(),
                },
            ],
            leaks: LeakReport::default(),
            wildcards_analyzed: 12,
            unsafe_alerts: 1,
            divergences: 0,
            retries: 0,
            timeouts: vec![ReplayTimeoutRecord {
                interleaving: 6,
                detail: "wall-clock budget of 2s exceeded".into(),
                decisions: DecisionSet::self_run(),
            }],
            quarantined: 0,
            drained: false,
            pb_messages: 40,
            first_run_makespan: 0.001,
            total_virtual_time: 0.01,
            budget_exhausted: false,
            alternates_pruned: 0,
            wildcards_deterministic: 0,
            refined_alternates_pruned: 0,
            refined_wildcards_deterministic: 0,
            protocol_alternates_pruned: 0,
            protocol_wildcards_deterministic: 0,
            discovered: BTreeMap::new(),
        }
    }

    #[test]
    fn error_classification() {
        let r = report();
        assert_eq!(r.deadlocks(), 1);
        assert_eq!(r.assertion_failures(), 1);
        assert!(!r.clean());
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = report().to_string();
        assert!(s.contains("interleavings: 7"));
        assert!(s.contains("R*"));
        assert!(s.contains("x==33"));
        assert!(s.contains("unsafe pattern"));
        assert!(s.contains("killed by the watchdog"));
    }

    #[test]
    fn json_export_roundtrips_key_fields() {
        let mut r = report();
        r.discovered.insert((1, 3), BTreeSet::from([0, 2]));
        let j = r.to_json();
        assert_eq!(j["interleavings"], 7);
        assert_eq!(j["assertion_failures"], 1);
        assert_eq!(j["deadlocks"], 1);
        assert_eq!(j["clock_mode"], "lamport");
        assert_eq!(j["discovered"]["1:3"], serde_json::json!([0, 2]));
        assert!(j["errors"][0]["message"]
            .as_str()
            .unwrap()
            .contains("x==33"));
        // Full document serializes.
        let text = serde_json::to_string(&j).unwrap();
        assert!(text.contains("wildcards_analyzed"));
    }

    #[test]
    fn shard_robustness_fields_surface_honestly() {
        let mut r = report();
        // Clean run: keys always present (byte parity with sharded runs),
        // but no warning noise.
        let j = r.to_json();
        assert_eq!(j["quarantined"], 0);
        assert_eq!(j["drained"], false);
        assert!(!r.to_string().contains("quarantined"));
        assert!(!r.to_string().contains("drained early"));
        // Chaos run: partial coverage must be called out.
        r.quarantined = 2;
        r.drained = true;
        let s = r.to_string();
        assert!(s.contains("2 subtree(s) quarantined"), "{s}");
        assert!(s.contains("drained early"), "{s}");
        assert_eq!(r.to_json()["quarantined"], 2);
        assert_eq!(r.to_json()["drained"], true);
    }

    #[test]
    fn clean_report_is_clean() {
        let mut r = report();
        r.errors.clear();
        r.unsafe_alerts = 0;
        assert!(r.clean());
        assert!(r.to_string().contains("no errors found"));
    }
}
