//! The Epoch Decisions file (paper §II-B, Algorithm 1).
//!
//! After a run, DAMPI's schedule generator emits a *decisions* artifact: a
//! `guided_epoch` clock value and, for every non-deterministic event whose
//! clock is within the guided prefix, the source to force. On replay, each
//! process runs `GUIDED_RUN` (rewriting `MPI_ANY_SOURCE` to the forced
//! source via `GetSrcFromEpoch`) until its clock passes `guided_epoch`,
//! then reverts to `SELF_RUN` so new non-deterministic possibilities are
//! discovered below the forced prefix.
//!
//! The set serializes to JSON so it can be written to and read from disk
//! exactly like the paper's on-disk decisions file.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One forced match: at (`rank`, `clock`), take the message from `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EpochDecision {
    /// World rank of the non-deterministic event.
    pub rank: usize,
    /// Scalar clock identifying the epoch on that rank.
    pub clock: u64,
    /// Comm-rank source to force.
    pub src: usize,
}

/// A full guided-replay prescription.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionSet {
    /// Clock horizon: events with clock ≤ `guided_epoch` are forced, later
    /// ones run free.
    pub guided_epoch: u64,
    /// The forced matches, in schedule-generator order (the final entry is
    /// the freshly-forced alternate — the branch point).
    pub decisions: Vec<EpochDecision>,
    #[serde(skip)]
    index: HashMap<(usize, u64), usize>,
}

impl DecisionSet {
    /// Empty set: a pure `SELF_RUN`.
    #[must_use]
    pub fn self_run() -> Self {
        Self::default()
    }

    /// Build a guided set from decisions and the branch-point clock.
    #[must_use]
    pub fn guided(guided_epoch: u64, decisions: Vec<EpochDecision>) -> Self {
        let mut s = Self {
            guided_epoch,
            decisions,
            index: HashMap::new(),
        };
        s.rebuild_index();
        s
    }

    /// True when this set forces nothing (initial run).
    #[must_use]
    pub fn is_self_run(&self) -> bool {
        self.decisions.is_empty()
    }

    /// `GetSrcFromEpoch`: the source to force for (`rank`, `clock`), if
    /// prescribed.
    #[must_use]
    pub fn lookup(&self, rank: usize, clock: u64) -> Option<usize> {
        self.index
            .get(&(rank, clock))
            .map(|&i| self.decisions[i].src)
    }

    /// Content hash used by the scheduler to deduplicate visited prefixes.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.guided_epoch.hash(&mut h);
        // Hash as a set: order-independent identity of the forced prefix.
        let mut sorted = self.decisions.clone();
        sorted.sort_unstable_by_key(|d| (d.rank, d.clock, d.src));
        sorted.hash(&mut h);
        h.finish()
    }

    /// Write the decisions file (JSON) — `ExistSchedulerDecisionFile` side.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Read a decisions file back (`importEpochDecision`).
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let mut s: Self = serde_json::from_str(&json).map_err(io::Error::other)?;
        s.rebuild_index();
        Ok(s)
    }

    /// Rebuild the lookup index after deserialization (the index is
    /// `#[serde(skip)]`; any `DecisionSet` coming off disk needs this
    /// before `lookup` works).
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .decisions
            .iter()
            .enumerate()
            .map(|(i, d)| ((d.rank, d.clock), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionSet {
        DecisionSet::guided(
            7,
            vec![
                EpochDecision {
                    rank: 1,
                    clock: 3,
                    src: 0,
                },
                EpochDecision {
                    rank: 2,
                    clock: 7,
                    src: 3,
                },
            ],
        )
    }

    #[test]
    fn self_run_is_empty() {
        let s = DecisionSet::self_run();
        assert!(s.is_self_run());
        assert_eq!(s.lookup(0, 0), None);
    }

    #[test]
    fn lookup_finds_decisions() {
        let s = sample();
        assert!(!s.is_self_run());
        assert_eq!(s.lookup(1, 3), Some(0));
        assert_eq!(s.lookup(2, 7), Some(3));
        assert_eq!(s.lookup(1, 7), None);
    }

    #[test]
    fn signature_is_order_independent() {
        let a = sample();
        let mut decisions = a.decisions.clone();
        decisions.reverse();
        let b = DecisionSet::guided(7, decisions);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_distinguishes_content() {
        let a = sample();
        let mut other = a.decisions.clone();
        other[0].src = 2;
        let b = DecisionSet::guided(7, other);
        assert_ne!(a.signature(), b.signature());
        let c = DecisionSet::guided(8, a.decisions.clone());
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dampi-decisions-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch_decisions.json");
        let s = sample();
        s.save(&path).unwrap();
        let loaded = DecisionSet::load(&path).unwrap();
        assert_eq!(loaded.guided_epoch, 7);
        assert_eq!(loaded.lookup(2, 7), Some(3));
        assert_eq!(loaded.signature(), s.signature());
        std::fs::remove_file(&path).ok();
    }
}
