//! Piggyback wire format (paper §II-D).
//!
//! Clock stamps travel either as **separate messages** on a shadow
//! communicator (DAMPI's choice) or **packed into the payload** (the
//! ablation reference). Both use the same stamp codec: a `u64`-word frame
//! `[mode, nwords, words...]` that is self-describing, so a receiver can
//! split a packed message without out-of-band length information.

use bytes::{BufMut, Bytes, BytesMut};
use dampi_clocks::{ClockMode, ClockStamp};

const MODE_LAMPORT: u64 = 0;
const MODE_VECTOR: u64 = 1;

/// Encode a stamp into its wire frame.
#[must_use]
pub fn encode_stamp(stamp: &ClockStamp) -> Bytes {
    let (mode, words): (u64, &[u64]) = match stamp {
        ClockStamp::Lamport(v) => (MODE_LAMPORT, std::slice::from_ref(v)),
        ClockStamp::Vector(v) => (MODE_VECTOR, v.as_slice()),
    };
    let mut b = BytesMut::with_capacity(16 + words.len() * 8);
    b.put_u64_le(mode);
    b.put_u64_le(words.len() as u64);
    for w in words {
        b.put_u64_le(*w);
    }
    b.freeze()
}

/// Decode a stamp frame; returns the stamp and the number of bytes
/// consumed. Panics on malformed frames (tool-internal traffic only).
#[must_use]
pub fn decode_stamp(data: &[u8]) -> (ClockStamp, usize) {
    assert!(data.len() >= 16, "stamp frame too short");
    let mode = u64::from_le_bytes(data[0..8].try_into().expect("8 bytes"));
    let nwords = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    // `nwords` is untrusted wire data: a corrupt frame can carry a count
    // whose byte length overflows `usize`. Checked arithmetic keeps the
    // failure on the intended "truncated" diagnostic instead of a wrapped
    // bound (release) or an arithmetic-overflow panic (debug).
    let end = usize::try_from(nwords)
        .ok()
        .and_then(|n| n.checked_mul(8))
        .and_then(|bytes| bytes.checked_add(16));
    let end = match end {
        Some(end) if data.len() >= end => end,
        _ => panic!("stamp frame truncated"),
    };
    let n = usize::try_from(nwords).expect("bounded by frame length");
    let words: Vec<u64> = (0..n)
        .map(|i| {
            let off = 16 + i * 8;
            u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"))
        })
        .collect();
    let stamp = match mode {
        MODE_LAMPORT => {
            assert_eq!(n, 1, "Lamport stamp must be one word");
            ClockStamp::Lamport(words[0])
        }
        MODE_VECTOR => ClockStamp::Vector(words),
        other => panic!("unknown stamp mode {other}"),
    };
    (stamp, end)
}

/// Payload packing: prepend the stamp frame to the application payload.
#[must_use]
pub fn pack(stamp: &ClockStamp, payload: &Bytes) -> Bytes {
    let frame = encode_stamp(stamp);
    let mut b = BytesMut::with_capacity(frame.len() + payload.len());
    b.extend_from_slice(&frame);
    b.extend_from_slice(payload);
    b.freeze()
}

/// Split a packed message back into (stamp, application payload).
#[must_use]
pub fn unpack(data: &Bytes) -> (ClockStamp, Bytes) {
    let (stamp, consumed) = decode_stamp(data);
    (stamp, data.slice(consumed..))
}

/// Number of extra wire bytes the chosen stamp costs per message — the
/// quantity whose growth with world size makes vector clocks non-scalable
/// (§II-C).
#[must_use]
pub fn stamp_wire_bytes(mode: ClockMode, nprocs: usize) -> usize {
    match mode {
        ClockMode::Lamport => 16 + 8,
        ClockMode::Vector => 16 + 8 * nprocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_stamp_roundtrip() {
        let s = ClockStamp::Lamport(42);
        let enc = encode_stamp(&s);
        let (dec, used) = decode_stamp(&enc);
        assert_eq!(dec, s);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn vector_stamp_roundtrip() {
        let s = ClockStamp::Vector(vec![1, 0, 99, u64::MAX]);
        let (dec, _) = decode_stamp(&encode_stamp(&s));
        assert_eq!(dec, s);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let s = ClockStamp::Vector(vec![7, 8]);
        let payload = Bytes::from_static(b"application data");
        let packed = pack(&s, &payload);
        let (dec, rest) = unpack(&packed);
        assert_eq!(dec, s);
        assert_eq!(&rest[..], b"application data");
    }

    #[test]
    fn pack_empty_payload() {
        let s = ClockStamp::Lamport(0);
        let (dec, rest) = unpack(&pack(&s, &Bytes::new()));
        assert_eq!(dec, s);
        assert!(rest.is_empty());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn truncated_frame_panics() {
        let _ = decode_stamp(&[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "stamp frame truncated")]
    fn huge_nwords_is_truncated_not_overflow() {
        // nwords = u64::MAX: `16 + n * 8` wraps in release and overflows
        // in debug; either way the failure must be the codec's own
        // "truncated" verdict, not an arithmetic artifact.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MODE_VECTOR.to_le_bytes());
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        frame.extend_from_slice(&[0u8; 32]);
        let _ = decode_stamp(&frame);
    }

    #[test]
    #[should_panic(expected = "stamp frame truncated")]
    fn wrapping_nwords_is_truncated_not_index_panic() {
        // A count crafted so `16 + n * 8` wraps to a small value in
        // release builds: the old guard passed and the word loop then hit
        // an index panic. usize::MAX/8 + 1 makes n*8 wrap to 8 exactly.
        let n = (usize::MAX / 8 + 1) as u64;
        let mut frame = Vec::new();
        frame.extend_from_slice(&MODE_VECTOR.to_le_bytes());
        frame.extend_from_slice(&n.to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        let _ = decode_stamp(&frame);
    }

    #[test]
    fn wire_cost_scales_with_mode() {
        assert_eq!(stamp_wire_bytes(ClockMode::Lamport, 1024), 24);
        assert_eq!(stamp_wire_bytes(ClockMode::Vector, 1024), 16 + 8192);
    }
}
