//! Runtime-selectable clock: Lamport or vector behind one concrete type.
//!
//! The verifier chooses the clock algebra per session ([`ClockMode`]), so
//! the tool layer needs a single type that dispatches to either
//! implementation. `AnyClock` is that type; stamps remain the shared
//! [`ClockStamp`] wire format.

use dampi_clocks::{ClockMode, ClockOrd, ClockStamp, LamportClock, LogicalClock, VectorClock};

/// A logical clock whose algebra is chosen at run time.
#[derive(Debug, Clone)]
pub enum AnyClock {
    /// Scalar Lamport clock.
    Lamport(LamportClock),
    /// Vector clock.
    Vector(VectorClock),
}

impl AnyClock {
    /// Zero clock for `rank` in a world of `nprocs`, in the given mode.
    #[must_use]
    pub fn new(mode: ClockMode, rank: usize, nprocs: usize) -> Self {
        match mode {
            ClockMode::Lamport => AnyClock::Lamport(LamportClock::new(rank, nprocs)),
            ClockMode::Vector => AnyClock::Vector(VectorClock::new(rank, nprocs)),
        }
    }

    /// The clock's mode.
    #[must_use]
    pub fn mode(&self) -> ClockMode {
        match self {
            AnyClock::Lamport(_) => ClockMode::Lamport,
            AnyClock::Vector(_) => ClockMode::Vector,
        }
    }

    /// Advance local time (wildcard receives tick, giving each epoch a
    /// unique per-rank scalar).
    pub fn tick(&mut self) {
        match self {
            AnyClock::Lamport(c) => c.tick(),
            AnyClock::Vector(c) => c.tick(),
        }
    }

    /// Merge an incoming stamp (receive rule).
    pub fn merge(&mut self, stamp: &ClockStamp) {
        match self {
            AnyClock::Lamport(c) => c.merge(stamp),
            AnyClock::Vector(c) => c.merge(stamp),
        }
    }

    /// Snapshot for piggybacking.
    #[must_use]
    pub fn stamp(&self) -> ClockStamp {
        match self {
            AnyClock::Lamport(c) => c.stamp(),
            AnyClock::Vector(c) => c.stamp(),
        }
    }

    /// Scalar projection (epoch numbering; strictly monotone per rank).
    #[must_use]
    pub fn scalar(&self) -> u64 {
        match self {
            AnyClock::Lamport(c) => c.scalar(),
            AnyClock::Vector(c) => c.scalar(),
        }
    }

    /// Compare two stamps under `mode`'s algebra.
    #[must_use]
    pub fn compare(mode: ClockMode, incoming: &ClockStamp, recorded: &ClockStamp) -> ClockOrd {
        match mode {
            ClockMode::Lamport => LamportClock::compare(incoming, recorded),
            ClockMode::Vector => VectorClock::compare(incoming, recorded),
        }
    }

    /// Encode a stamp as `u64` words for collective clock exchanges
    /// (elementwise `MAX` over these words is a correct merge for both
    /// algebras).
    #[must_use]
    pub fn stamp_words(stamp: &ClockStamp) -> Vec<u64> {
        match stamp {
            ClockStamp::Lamport(v) => vec![*v],
            ClockStamp::Vector(v) => v.clone(),
        }
    }

    /// Decode `u64` words back into a stamp of the given mode.
    #[must_use]
    pub fn stamp_from_words(mode: ClockMode, words: &[u64]) -> ClockStamp {
        match mode {
            ClockMode::Lamport => {
                assert_eq!(words.len(), 1, "Lamport stamp must be one word");
                ClockStamp::Lamport(words[0])
            }
            ClockMode::Vector => ClockStamp::Vector(words.to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_roundtrip() {
        let mut c = AnyClock::new(ClockMode::Lamport, 0, 4);
        assert_eq!(c.mode(), ClockMode::Lamport);
        c.tick();
        c.tick();
        assert_eq!(c.scalar(), 2);
        let s = c.stamp();
        let words = AnyClock::stamp_words(&s);
        assert_eq!(words, vec![2]);
        assert_eq!(AnyClock::stamp_from_words(ClockMode::Lamport, &words), s);
    }

    #[test]
    fn vector_roundtrip() {
        let mut c = AnyClock::new(ClockMode::Vector, 1, 3);
        c.tick();
        let s = c.stamp();
        let words = AnyClock::stamp_words(&s);
        assert_eq!(words, vec![0, 1, 0]);
        assert_eq!(AnyClock::stamp_from_words(ClockMode::Vector, &words), s);
    }

    #[test]
    fn elementwise_max_is_merge() {
        // Two vector stamps merged by word-wise max equal clock merge.
        let mut a = AnyClock::new(ClockMode::Vector, 0, 2);
        a.tick();
        let mut b = AnyClock::new(ClockMode::Vector, 1, 2);
        b.tick();
        b.tick();
        let wa = AnyClock::stamp_words(&a.stamp());
        let wb = AnyClock::stamp_words(&b.stamp());
        let maxed: Vec<u64> = wa.iter().zip(&wb).map(|(x, y)| *x.max(y)).collect();
        a.merge(&b.stamp());
        assert_eq!(AnyClock::stamp_words(&a.stamp()), maxed);
    }

    #[test]
    fn compare_dispatches_by_mode() {
        use dampi_clocks::ClockOrd;
        let a = ClockStamp::Lamport(1);
        let b = ClockStamp::Lamport(5);
        assert_eq!(
            AnyClock::compare(ClockMode::Lamport, &a, &b),
            ClockOrd::Before
        );
        let va = ClockStamp::Vector(vec![1, 0]);
        let vb = ClockStamp::Vector(vec![0, 1]);
        assert_eq!(
            AnyClock::compare(ClockMode::Vector, &va, &vb),
            ClockOrd::Concurrent
        );
    }
}
