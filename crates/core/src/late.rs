//! `FindPotentialMatches`: late-message classification (paper §II-C).
//!
//! When a rank completes any receive, the piggybacked stamp of the incoming
//! message is compared against the rank's recorded epochs. The message is
//! **late** with respect to an epoch when its send event is *not causally
//! after* the epoch event — causally before or concurrent — which means MPI
//! could legally have matched it to that wildcard instead. Subject to
//! communicator and tag compatibility (and MPI's non-overtaking rule, which
//! replay enforcement handles by always taking the *earliest* unconsumed
//! message from the forced source), the sender is recorded as a potential
//! alternate match.

use dampi_clocks::{ClockMode, ClockStamp};
use dampi_mpi::types::tag_matches;
use dampi_mpi::{Comm, Tag};

use crate::clock::AnyClock;
use crate::epoch::EpochRecord;

/// Analyze one incoming message against a rank's epoch log, adding its
/// source as an alternate wherever it is late and compatible.
///
/// `matched_epoch_clock` is the clock of the wildcard epoch this message
/// actually completed, if any. Per MPI's non-overtaking rule a message
/// matches the *earliest* open compatible receive, so a message consumed
/// by epoch *k* can only have matched a **later-posted** epoch in a world
/// where some earlier epoch took a different message first — a scenario
/// the depth-first walk reaches by branching that earlier epoch, whose
/// replay then rediscovers this message organically. Recording it directly
/// as a later epoch's alternate would let the schedule generator force the
/// same single message at two epochs at once (an infeasible schedule that
/// replays as a false deadlock), so the alternate is recorded only for
/// epochs posted *before* the matched one.
///
/// Returns `true` if the message was late for at least one epoch (the
/// paper's "late" classification; drives the analysis-cost accounting).
pub fn analyze_incoming(
    epochs: &mut [EpochRecord],
    mode: ClockMode,
    incoming: &ClockStamp,
    src: usize,
    tag: Tag,
    comm: Comm,
    matched_epoch_clock: Option<u64>,
) -> bool {
    let mut late = false;
    for e in epochs.iter_mut() {
        if e.comm != comm || !tag_matches(e.tag_spec, tag) {
            continue;
        }
        if !AnyClock::compare(mode, incoming, &e.stamp).is_potential_match() {
            continue;
        }
        late = true;
        if let Some(mc) = matched_epoch_clock {
            if e.clock > mc {
                // Posted after the epoch this message matched: reachable
                // only through an earlier branch (see above).
                continue;
            }
        }
        // The matched source itself is not an *alternate*; it may however
        // be unknown yet (open epoch) — reporting filters it later.
        if e.matched_src != Some(src) {
            e.alternates.insert(src);
        }
    }
    late
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::NdKind;
    use dampi_mpi::{Comm, ANY_TAG};
    use std::collections::BTreeSet;

    fn epoch(clock: u64, tag_spec: Tag, matched: Option<usize>) -> EpochRecord {
        EpochRecord {
            rank: 0,
            clock,
            stamp: ClockStamp::Lamport(clock),
            comm: Comm::WORLD,
            tag_spec,
            kind: NdKind::Recv,
            in_region: false,
            guided: false,
            matched_src: matched,
            alternates: BTreeSet::new(),
        }
    }

    #[test]
    fn late_message_recorded_as_alternate() {
        let mut eps = vec![epoch(5, 7, Some(1))];
        let late = analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(3),
            2,
            7,
            Comm::WORLD,
            None,
        );
        assert!(late);
        assert_eq!(eps[0].alternates, BTreeSet::from([2]));
    }

    #[test]
    fn causally_after_message_ignored() {
        let mut eps = vec![epoch(5, 7, Some(1))];
        let late = analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(9),
            2,
            7,
            Comm::WORLD,
            None,
        );
        assert!(!late);
        assert!(eps[0].alternates.is_empty());
    }

    #[test]
    fn equal_clock_is_not_late() {
        // Epoch stamps are post-tick event timestamps: a sender whose stamp
        // equals the epoch's has already observed the epoch's tick (it is
        // the Lamport shadow of a causally-after send), so it must not be
        // counted — soundness.
        let mut eps = vec![epoch(5, 7, Some(1))];
        assert!(!analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(5),
            3,
            7,
            Comm::WORLD,
            None,
        ));
        assert!(eps[0].alternates.is_empty());
    }

    #[test]
    fn tag_mismatch_is_not_a_match() {
        let mut eps = vec![epoch(5, 7, Some(1))];
        assert!(!analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(1),
            2,
            8,
            Comm::WORLD,
            None,
        ));
        assert!(eps[0].alternates.is_empty());
    }

    #[test]
    fn any_tag_epoch_accepts_all_tags() {
        let mut eps = vec![epoch(5, ANY_TAG, Some(1))];
        assert!(analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(1),
            2,
            123,
            Comm::WORLD,
            None,
        ));
    }

    #[test]
    fn comm_mismatch_is_not_a_match() {
        let mut eps = vec![epoch(5, 7, Some(1))];
        assert!(!analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(1),
            2,
            7,
            Comm(9),
            None,
        ));
    }

    #[test]
    fn matched_source_not_duplicated_as_alternate() {
        let mut eps = vec![epoch(5, 7, Some(2))];
        analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(1),
            2,
            7,
            Comm::WORLD,
            None,
        );
        assert!(eps[0].alternates.is_empty());
    }

    #[test]
    fn multiple_epochs_updated_by_one_message() {
        let mut eps = vec![epoch(5, 7, Some(1)), epoch(9, 7, Some(1))];
        analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(2),
            3,
            7,
            Comm::WORLD,
            None,
        );
        assert!(eps[0].alternates.contains(&3));
        assert!(eps[1].alternates.contains(&3));
    }

    #[test]
    fn matched_message_not_alternate_for_later_epochs() {
        // Three concurrently posted wildcard epochs (clocks 0,1,2); the
        // message matched epoch 1: it may be an alternate for epoch 0, but
        // never for epoch 2 (non-overtaking feasibility).
        let mut eps = vec![
            epoch(0, 7, Some(4)),
            epoch(1, 7, Some(2)),
            epoch(2, 7, None),
        ];
        // Post-tick event stamps for concurrent pre-posted epochs.
        for (i, e) in eps.iter_mut().enumerate() {
            e.stamp = ClockStamp::Lamport(i as u64 + 1);
        }
        assert!(analyze_incoming(
            &mut eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(0),
            2,
            7,
            Comm::WORLD,
            Some(1),
        ));
        assert!(eps[0].alternates.contains(&2), "earlier epoch gets it");
        assert!(eps[1].alternates.is_empty(), "own match excluded");
        assert!(
            eps[2].alternates.is_empty(),
            "later epoch must not: {:?}",
            eps[2]
        );
    }

    #[test]
    fn vector_mode_sees_concurrency_lamport_misses() {
        // Epoch stamp [0,5,0]; incoming [3,0,0] — concurrent under vector
        // clocks (late), but its Lamport projection 3 < 5 is also late.
        // The interesting direction: incoming [9,0,0] vs epoch [0,5,0] is
        // *concurrent* (late) under vector clocks, but Lamport scalar 9 > 5
        // judges it causally-after and misses it — §II-F imprecision.
        let mut vec_eps = vec![EpochRecord {
            stamp: ClockStamp::Vector(vec![0, 5, 0]),
            ..epoch(5, 7, Some(1))
        }];
        assert!(analyze_incoming(
            &mut vec_eps,
            ClockMode::Vector,
            &ClockStamp::Vector(vec![9, 0, 0]),
            2,
            7,
            Comm::WORLD,
            None,
        ));
        assert!(vec_eps[0].alternates.contains(&2));

        let mut lam_eps = vec![epoch(5, 7, Some(1))];
        assert!(!analyze_incoming(
            &mut lam_eps,
            ClockMode::Lamport,
            &ClockStamp::Lamport(9),
            2,
            7,
            Comm::WORLD,
            None,
        ));
        assert!(lam_eps[0].alternates.is_empty());
    }
}
