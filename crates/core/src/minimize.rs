//! Reproduction-schedule minimization.
//!
//! The schedule generator hands back a bug with the *full* forced prefix
//! that led to it — every epoch decision along the depth-first path. Most
//! of those decisions are usually irrelevant: the bug needs only the one
//! or two forced matches that actually enable it. This module shrinks a
//! failing [`DecisionSet`] greedily (one-at-a-time delta debugging): drop
//! each decision, re-run, and keep the drop if the bug still manifests.
//! The result is the human-readable core of the schedule — "the bug
//! happens whenever P2's message wins epoch 0" — which is what a developer
//! pastes into a regression test.

use crate::decisions::DecisionSet;

/// Shrink `repro` while `still_fails` holds, re-running the program once
/// per candidate. Returns the minimized set and the number of runs spent.
///
/// Greedy one-at-a-time minimization: sound (the result still fails) and
/// 1-minimal (no single decision can be removed), though not necessarily
/// globally minimal.
pub fn minimize<F>(repro: &DecisionSet, mut still_fails: F) -> (DecisionSet, u64)
where
    F: FnMut(&DecisionSet) -> bool,
{
    let mut runs = 0u64;
    let mut current = repro.clone();
    if current.decisions.is_empty() {
        // The bug manifested in the free run: nothing to minimize.
        return (current, 0);
    }
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < current.decisions.len() {
            let mut candidate_decisions = current.decisions.clone();
            candidate_decisions.remove(i);
            if candidate_decisions.is_empty() {
                i += 1;
                continue;
            }
            // The horizon only needs to cover the remaining decisions.
            let horizon = candidate_decisions
                .iter()
                .map(|d| d.clock)
                .max()
                .expect("nonempty");
            let candidate = DecisionSet::guided(horizon, candidate_decisions);
            runs += 1;
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
                // Keep i: the next decision shifted into this slot.
            } else {
                i += 1;
            }
        }
    }
    // Tighten the horizon of the final set too.
    let horizon = current.decisions.iter().map(|d| d.clock).max().unwrap_or(0);
    if horizon < current.guided_epoch {
        let tightened = DecisionSet::guided(horizon, current.decisions.clone());
        runs += 1;
        if still_fails(&tightened) {
            current = tightened;
        }
    }
    (current, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::EpochDecision;

    fn ds(pairs: &[(usize, u64, usize)]) -> DecisionSet {
        let decisions: Vec<EpochDecision> = pairs
            .iter()
            .map(|&(rank, clock, src)| EpochDecision { rank, clock, src })
            .collect();
        let horizon = decisions.iter().map(|d| d.clock).max().unwrap_or(0);
        DecisionSet::guided(horizon, decisions)
    }

    #[test]
    fn drops_irrelevant_decisions() {
        // Bug fires iff (rank 1, clock 2) is forced to source 5.
        let full = ds(&[(0, 0, 1), (0, 1, 2), (1, 2, 5), (2, 3, 0)]);
        let (minimal, runs) = minimize(&full, |c| c.lookup(1, 2) == Some(5));
        assert_eq!(minimal.decisions.len(), 1);
        assert_eq!(minimal.lookup(1, 2), Some(5));
        assert_eq!(minimal.guided_epoch, 2);
        assert!(runs >= 4);
    }

    #[test]
    fn keeps_jointly_required_decisions() {
        // Bug needs BOTH forced matches.
        let full = ds(&[(0, 0, 1), (1, 1, 2), (0, 2, 3)]);
        let (minimal, _) = minimize(&full, |c| {
            c.lookup(0, 0) == Some(1) && c.lookup(1, 1) == Some(2)
        });
        assert_eq!(minimal.decisions.len(), 2);
        assert_eq!(minimal.lookup(0, 0), Some(1));
        assert_eq!(minimal.lookup(1, 1), Some(2));
        assert_eq!(minimal.guided_epoch, 1, "horizon tightened");
    }

    #[test]
    fn empty_repro_is_a_noop() {
        let (minimal, runs) = minimize(&DecisionSet::self_run(), |_| true);
        assert!(minimal.decisions.is_empty());
        assert_eq!(runs, 0);
    }

    #[test]
    fn already_minimal_is_unchanged() {
        let full = ds(&[(0, 0, 1)]);
        let (minimal, runs) = minimize(&full, |_| true);
        assert_eq!(minimal.decisions.len(), 1);
        assert_eq!(runs, 0, "nothing to try below one decision");
    }
}
