//! Content-addressed replay-result cache: incremental verification.
//!
//! A campaign's unit of work is one replay — a [`DecisionSet`] executed to
//! completion, producing a [`SubtreeResult`]. That result is a pure
//! function of `(program, prune plan, schedule)`: the simulator is
//! deterministic, guided replays force the scheduled matches, and the
//! prune plan decides which children ever reach the frontier. The cache
//! exploits this by keying each stored result on the digest triple
//!
//! ```text
//!   (program digest, prune-plan digest, schedule digest)
//! ```
//!
//! and letting the deterministic commit path consult it before spawning a
//! replay: a hit installs the stored outcome (epoch logs, error records,
//! per-attempt makespans, divergence/retry counts) exactly as if the
//! replay had run, so warm campaigns are byte-identical to cold ones —
//! the subtree below a hit is re-derived by the walk itself from the
//! cached epoch log, which is why caching *one replay per schedule*
//! suffices to reuse whole subtrees.
//!
//! On disk, each entry is a single [`protocol::write_frame`]-checksummed
//! file (`[len][fnv1a][json]`) under `<root>/<program>-<plan>/<schedule>`,
//! written atomically (temp sibling + rename). Anything that fails the
//! checksum, schema-version, or key check is counted *stale*, deleted
//! (unless the cache is read-only), and treated as a miss — a torn write
//! or a layout change can cost a replay, never correctness.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::decisions::DecisionSet;
use crate::prune::PrunePlan;
use crate::scheduler::AttemptReport;
use crate::shard::protocol::{self, SubtreeResult};

/// Version of the on-disk entry layout. Bump on any change to the entry
/// schema or to the digest derivations; old entries then read as stale
/// and are re-populated, never misinterpreted.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// One on-disk cache entry: the full key (so a hash collision or a
/// misfiled entry is detected, not trusted) plus the stored result.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct CacheEntry {
    version: u32,
    program: u64,
    plan: u64,
    schedule: u64,
    result: SubtreeResult,
}

/// Digest of a schedule: FNV-1a over a canonical byte encoding of the
/// decision set (guided epoch, then the `(rank, clock, src)` triples in
/// sorted order). Unlike [`DecisionSet::signature`] — which uses the
/// process-local `DefaultHasher` and is only meant for the in-memory
/// visited set — this digest is stable across processes and reboots, so
/// it can address on-disk state.
#[must_use]
pub fn schedule_digest(decisions: &DecisionSet) -> u64 {
    let mut bytes = Vec::with_capacity(8 + decisions.decisions.len() * 24);
    bytes.extend_from_slice(&decisions.guided_epoch.to_le_bytes());
    let mut triples: Vec<(usize, u64, usize)> = decisions
        .decisions
        .iter()
        .map(|d| (d.rank, d.clock, d.src))
        .collect();
    triples.sort_unstable();
    for (rank, clock, src) in triples {
        bytes.extend_from_slice(&(rank as u64).to_le_bytes());
        bytes.extend_from_slice(&clock.to_le_bytes());
        bytes.extend_from_slice(&(src as u64).to_le_bytes());
    }
    protocol::checksum(&bytes)
}

/// Digest of a prune plan: FNV-1a over its canonical JSON. `BTreeSet`
/// fields serialize in sorted order and the serialized form includes the
/// plan's `version`, so a v1 and a v2 plan over the same trace digest
/// differently — a plan upgrade invalidates, exactly as required. `None`
/// (no pruning) gets a reserved digest of 0.
#[must_use]
pub fn plan_digest(plan: Option<&PrunePlan>) -> u64 {
    match plan {
        None => 0,
        Some(p) => {
            let json = serde_json::to_string(p).expect("prune plans serialize");
            protocol::checksum(json.as_bytes())
        }
    }
}

/// A miss's serialized entry, prepared *before* the commit consumes the
/// result and written *after* the commit succeeds — the store only ever
/// holds results the deterministic walk actually absorbed.
#[derive(Debug)]
pub(crate) struct PendingStore {
    schedule: u64,
    frame: Vec<u8>,
}

/// The content-addressed replay-result store. One instance serves a whole
/// campaign: the sequential walk, the in-process pool coordinator, or the
/// shard supervisor (workers never touch the disk — the supervisor owns
/// the cache and short-circuits dispatch, so the frame protocol is
/// unchanged).
#[derive(Debug)]
pub struct ReplayCache {
    /// Keyspace directory: `<root>/<program:016x>-<plan:016x>`.
    dir: PathBuf,
    program: u64,
    plan: u64,
    readonly: bool,
    /// Entries rejected for checksum/version/key reasons.
    stale: AtomicU64,
}

impl ReplayCache {
    /// Open (and create, unless read-only) the keyspace for
    /// `(program, plan)` under `root`. The digests partition the store:
    /// any program or plan change lands in a different directory, so
    /// invalidation is structural — stale keyspaces are never consulted,
    /// only orphaned.
    pub fn open(root: &Path, program: u64, plan: u64, readonly: bool) -> io::Result<Self> {
        let dir = root.join(format!("{program:016x}-{plan:016x}"));
        if !readonly {
            fs::create_dir_all(&dir)?;
        }
        Ok(Self {
            dir,
            program,
            plan,
            readonly,
            stale: AtomicU64::new(0),
        })
    }

    /// Whether this handle was opened read-only (hits served, misses not
    /// stored, stale entries not deleted).
    #[must_use]
    pub fn readonly(&self) -> bool {
        self.readonly
    }

    /// How many on-disk entries were rejected (corrupt, wrong schema
    /// version, or key mismatch) by this handle so far.
    #[must_use]
    pub fn stale_count(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    fn entry_path(&self, schedule: u64) -> PathBuf {
        self.dir.join(format!("{schedule:016x}"))
    }

    /// Look up the stored result for `decisions`. Anything short of a
    /// fully-valid entry is a miss; invalid files are additionally
    /// counted stale and deleted (unless read-only) so one bad write
    /// costs one replay, once.
    pub(crate) fn lookup(&self, decisions: &DecisionSet) -> Option<AttemptReport> {
        let schedule = schedule_digest(decisions);
        let path = self.entry_path(schedule);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => return self.reject(&path),
        };
        let Ok(Some(payload)) = protocol::read_frame(&mut file) else {
            return self.reject(&path);
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            return self.reject(&path);
        };
        let Ok(entry) = serde_json::from_str::<CacheEntry>(text) else {
            return self.reject(&path);
        };
        if entry.version != CACHE_SCHEMA_VERSION
            || entry.program != self.program
            || entry.plan != self.plan
            || entry.schedule != schedule
        {
            return self.reject(&path);
        }
        let (res, attempt_makespans, divergences, retries) =
            protocol::result_into_parts(entry.result);
        Some(AttemptReport {
            res,
            attempt_makespans,
            divergences,
            retries,
        })
    }

    /// Serialize `rep` for storage under `decisions`' digest. Returns
    /// `None` when nothing should be stored: the cache is read-only, or
    /// the result is a watchdog kill (a `ReplayTimeout` reflects a budget,
    /// not the schedule's semantics — caching it would freeze partial
    /// coverage, so timed-out subtrees always re-execute).
    pub(crate) fn prepare(
        &self,
        decisions: &DecisionSet,
        rep: &AttemptReport,
    ) -> Option<PendingStore> {
        if self.readonly || crate::scheduler::timeout_of(&rep.res.outcome).is_some() {
            return None;
        }
        let entry = CacheEntry {
            version: CACHE_SCHEMA_VERSION,
            program: self.program,
            plan: self.plan,
            schedule: schedule_digest(decisions),
            result: SubtreeResult {
                outcome: rep.res.outcome.clone(),
                epochs: rep.res.epochs.clone(),
                stats: rep.res.stats,
                attempt_makespans: rep.attempt_makespans.clone(),
                divergences: rep.divergences,
                retries: rep.retries,
            },
        };
        let json = serde_json::to_string(&entry).expect("cache entries serialize");
        let mut frame = Vec::with_capacity(json.len() + 12);
        protocol::write_frame(&mut frame, json.as_bytes()).expect("vec writes cannot fail");
        Some(PendingStore {
            schedule: entry.schedule,
            frame,
        })
    }

    /// Write a prepared entry (atomically: temp sibling + rename). Called
    /// after the commit absorbed the result. Returns `true` on success;
    /// failures are swallowed — the cache is an accelerator, never a
    /// correctness dependency.
    pub(crate) fn commit_store(&self, pending: &PendingStore) -> bool {
        let path = self.entry_path(pending.schedule);
        let tmp = self.dir.join(format!(
            ".{:016x}.tmp.{}",
            pending.schedule,
            std::process::id()
        ));
        let write = || -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&pending.frame)?;
            // No fsync: a torn entry fails the frame checksum on read and
            // is counted stale — strictly a performance event.
            drop(f);
            fs::rename(&tmp, &path)
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Count of valid-looking entry files currently in the keyspace
    /// (test/diagnostic aid; does not validate contents).
    pub fn entries(&self) -> io::Result<usize> {
        match fs::read_dir(&self.dir) {
            Ok(rd) => Ok(rd
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.len() == 16 && !n.starts_with('.'))
                })
                .count()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn reject(&self, path: &Path) -> Option<AttemptReport> {
        self.stale.fetch_add(1, Ordering::Relaxed);
        if !self.readonly {
            let _ = fs::remove_file(path);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::EpochDecision;
    use crate::epoch::ToolRunStats;
    use crate::scheduler::RunResult;
    use dampi_mpi::program::RunOutcome;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dampi-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn schedule(n: usize) -> DecisionSet {
        let ds: Vec<EpochDecision> = (0..n)
            .map(|i| EpochDecision {
                rank: i,
                clock: 3 * i as u64 + 1,
                src: i + 1,
            })
            .collect();
        DecisionSet::guided(7, ds)
    }

    fn report() -> AttemptReport {
        AttemptReport {
            res: RunResult {
                outcome: RunOutcome {
                    rank_errors: Vec::new(),
                    leaks: dampi_mpi::LeakReport::default(),
                    fatal: None,
                    per_rank_vt: vec![1.25, 0.75],
                    wall_elapsed: std::time::Duration::ZERO,
                    makespan: 1.25,
                },
                epochs: Vec::new(),
                stats: ToolRunStats::default(),
            },
            attempt_makespans: vec![1.25, 0.5],
            divergences: 1,
            retries: 1,
        }
    }

    #[test]
    fn schedule_digest_is_order_independent_and_input_sensitive() {
        let a = DecisionSet::guided(
            2,
            vec![
                EpochDecision {
                    rank: 1,
                    clock: 5,
                    src: 0,
                },
                EpochDecision {
                    rank: 0,
                    clock: 3,
                    src: 2,
                },
            ],
        );
        let b = DecisionSet::guided(
            2,
            vec![
                EpochDecision {
                    rank: 0,
                    clock: 3,
                    src: 2,
                },
                EpochDecision {
                    rank: 1,
                    clock: 5,
                    src: 0,
                },
            ],
        );
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        let c = DecisionSet::guided(
            3,
            vec![EpochDecision {
                rank: 0,
                clock: 3,
                src: 2,
            }],
        );
        assert_ne!(schedule_digest(&a), schedule_digest(&c));
        assert_ne!(
            schedule_digest(&DecisionSet::self_run()),
            schedule_digest(&a)
        );
    }

    #[test]
    fn plan_digest_distinguishes_plans_and_versions() {
        assert_eq!(plan_digest(None), 0);
        let mut p = PrunePlan::default();
        p.infeasible.insert((1, 4, 2));
        let d1 = plan_digest(Some(&p));
        assert_ne!(d1, 0);
        let mut q = p.clone();
        q.infeasible.insert((0, 1, 1));
        assert_ne!(plan_digest(Some(&q)), d1);
        let mut v = p.clone();
        v.version += 1;
        assert_ne!(plan_digest(Some(&v)), d1, "plan version is part of the key");
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let root = tmpdir("roundtrip");
        let c = ReplayCache::open(&root, 11, 22, false).unwrap();
        let ds = schedule(2);
        assert!(c.lookup(&ds).is_none());
        let rep = report();
        let pending = c.prepare(&ds, &rep).unwrap();
        assert!(c.commit_store(&pending));
        let got = c.lookup(&ds).expect("stored entry hits");
        assert_eq!(got.attempt_makespans, rep.attempt_makespans);
        assert_eq!(got.divergences, 1);
        assert_eq!(got.retries, 1);
        assert_eq!(got.res.outcome.makespan.to_bits(), 1.25f64.to_bits());
        assert_eq!(c.stale_count(), 0);
        assert_eq!(c.entries().unwrap(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn different_program_or_plan_digest_misses() {
        let root = tmpdir("keyspace");
        let c = ReplayCache::open(&root, 11, 22, false).unwrap();
        let ds = schedule(1);
        let pending = c.prepare(&ds, &report()).unwrap();
        assert!(c.commit_store(&pending));
        let other_program = ReplayCache::open(&root, 12, 22, false).unwrap();
        assert!(other_program.lookup(&ds).is_none());
        let other_plan = ReplayCache::open(&root, 11, 23, false).unwrap();
        assert!(other_plan.lookup(&ds).is_none());
        // Structural invalidation: no stale counts, the keyspaces simply
        // never intersect.
        assert_eq!(other_program.stale_count(), 0);
        assert_eq!(other_plan.stale_count(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_counts_stale_and_is_deleted() {
        let root = tmpdir("corrupt");
        let c = ReplayCache::open(&root, 1, 0, false).unwrap();
        let ds = schedule(3);
        let pending = c.prepare(&ds, &report()).unwrap();
        assert!(c.commit_store(&pending));
        let path = c.entry_path(schedule_digest(&ds));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(c.lookup(&ds).is_none(), "corrupt entry must miss");
        assert_eq!(c.stale_count(), 1);
        assert!(!path.exists(), "corrupt entry must be deleted");
        // The very next store repopulates it.
        assert!(c.commit_store(&c.prepare(&ds, &report()).unwrap()));
        assert!(c.lookup(&ds).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn schema_version_mismatch_counts_stale() {
        let root = tmpdir("version");
        let c = ReplayCache::open(&root, 1, 0, false).unwrap();
        let ds = schedule(1);
        assert!(c.commit_store(&c.prepare(&ds, &report()).unwrap()));
        let path = c.entry_path(schedule_digest(&ds));
        // Rewrite the entry with a bumped version and a valid checksum.
        let mut f = File::open(&path).unwrap();
        let payload = protocol::read_frame(&mut f).unwrap().unwrap();
        let mut v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        *v.get_mut("version").unwrap() = serde_json::to_value(&(CACHE_SCHEMA_VERSION + 1));
        let mut out = Vec::new();
        protocol::write_frame(&mut out, v.to_string().as_bytes()).unwrap();
        fs::write(&path, &out).unwrap();
        assert!(c.lookup(&ds).is_none());
        assert_eq!(c.stale_count(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn readonly_serves_hits_but_never_writes() {
        let root = tmpdir("readonly");
        let rw = ReplayCache::open(&root, 5, 0, false).unwrap();
        let hot = schedule(1);
        assert!(rw.commit_store(&rw.prepare(&hot, &report()).unwrap()));
        let ro = ReplayCache::open(&root, 5, 0, true).unwrap();
        assert!(ro.readonly());
        assert!(ro.lookup(&hot).is_some(), "read-only still serves hits");
        let cold = schedule(4);
        assert!(
            ro.prepare(&cold, &report()).is_none(),
            "read-only never prepares a store"
        );
        // Corrupt the hot entry: read-only counts it stale but leaves it.
        let path = rw.entry_path(schedule_digest(&hot));
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(ro.lookup(&hot).is_none());
        assert_eq!(ro.stale_count(), 1);
        assert!(path.exists(), "read-only must not delete");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn timeout_results_are_never_stored() {
        let root = tmpdir("timeout");
        let c = ReplayCache::open(&root, 5, 0, false).unwrap();
        let mut rep = report();
        rep.res.outcome.fatal = Some(dampi_mpi::MpiError::ReplayTimeout {
            detail: "wall budget".into(),
        });
        assert!(
            c.prepare(&schedule(1), &rep).is_none(),
            "watchdog kills reflect a budget, not the schedule"
        );
        let _ = fs::remove_dir_all(&root);
    }
}
