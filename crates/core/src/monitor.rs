//! The §V unsafe-pattern monitor.
//!
//! DAMPI ticks the local clock at a wildcard `Irecv` *post*, but the match
//! only commits at its `Wait`/`Test`. If the process transmits its clock in
//! between — an `Isend` or any collective — other processes observe a clock
//! that already counts the uncommitted receive, and late-message analysis
//! can misclassify a send that is still a legitimate competitor (the
//! paper's Fig. 10: a `Barrier` between `Irecv(*)` and its `Wait` lets a
//! post-barrier send race the receive undetected).
//!
//! The pattern is checkable *dynamically and locally* (hence scalably):
//! track wildcard receives posted but not yet completed; flag every
//! clock-transmitting operation issued while any is pending.

use std::collections::HashSet;

use dampi_mpi::Request;

/// Per-rank unsafe-pattern monitor.
#[derive(Debug, Default)]
pub struct UnsafePatternMonitor {
    pending: HashSet<Request>,
    alerts: u64,
    enabled: bool,
}

impl UnsafePatternMonitor {
    /// New monitor; `enabled = false` makes every call a no-op.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self {
            pending: HashSet::new(),
            alerts: 0,
            enabled,
        }
    }

    /// A wildcard receive was posted.
    pub fn nd_posted(&mut self, req: Request) {
        if self.enabled {
            self.pending.insert(req);
        }
    }

    /// A wildcard receive completed (via wait or successful test).
    pub fn nd_completed(&mut self, req: Request) {
        if self.enabled {
            self.pending.remove(&req);
        }
    }

    /// The rank is about to transmit its clock (send or collective).
    /// Returns `true` — and counts an alert — when the pattern is live.
    pub fn clock_transmitted(&mut self) -> bool {
        if self.enabled && !self.pending.is_empty() {
            self.alerts += 1;
            true
        } else {
            false
        }
    }

    /// Alerts raised so far.
    #[must_use]
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Wildcard receives currently pending completion.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_without_pending_nd() {
        let mut m = UnsafePatternMonitor::new(true);
        assert!(!m.clock_transmitted());
        assert_eq!(m.alerts(), 0);
    }

    #[test]
    fn fig10_pattern_detected() {
        // Irecv(*) ... Barrier (clock transmission) ... Wait — alert.
        let mut m = UnsafePatternMonitor::new(true);
        m.nd_posted(Request(1));
        assert!(m.clock_transmitted());
        m.nd_completed(Request(1));
        assert!(!m.clock_transmitted());
        assert_eq!(m.alerts(), 1);
    }

    #[test]
    fn safe_order_raises_nothing() {
        // Irecv(*) ... Wait ... Barrier — no alert.
        let mut m = UnsafePatternMonitor::new(true);
        m.nd_posted(Request(1));
        m.nd_completed(Request(1));
        assert!(!m.clock_transmitted());
        assert_eq!(m.alerts(), 0);
    }

    #[test]
    fn multiple_pending_counted_once_per_transmission() {
        let mut m = UnsafePatternMonitor::new(true);
        m.nd_posted(Request(1));
        m.nd_posted(Request(2));
        assert_eq!(m.pending_count(), 2);
        assert!(m.clock_transmitted());
        assert!(m.clock_transmitted());
        assert_eq!(m.alerts(), 2);
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let mut m = UnsafePatternMonitor::new(false);
        m.nd_posted(Request(1));
        assert!(!m.clock_transmitted());
        assert_eq!(m.alerts(), 0);
        assert_eq!(m.pending_count(), 0);
    }
}
