//! The DAMPI verification driver: run → analyze → generate → replay.
//!
//! [`DampiVerifier`] glues the pieces together, mirroring the framework
//! diagram of the paper's Fig. 1: the program executes under the
//! DAMPI-PnMPI module stack; potential matches are collected; the schedule
//! generator produces Epoch Decisions; the program is rerun under guidance
//! until the space of non-deterministic matches (as bounded by the
//! configuration) is covered.

use std::sync::Arc;

use dampi_mpi::fault::{FaultLayer, FaultPlan};
use dampi_mpi::program::{MpiProgram, RunOutcome};
use dampi_mpi::runtime::{run_with_layers, SimConfig};
use dampi_mpi::trace::{TraceCollector as EventTraceCollector, TraceEvent, TraceLayer};
use dampi_mpi::Mpi;

use crate::cache::ReplayCache;
use crate::config::DampiConfig;
use crate::decisions::DecisionSet;
use crate::epoch::{ToolRunStats, TraceCollector};
use crate::journal::ExplorationJournal;
use crate::metrics::{CampaignMetrics, CampaignTrace};
use crate::prune::PrunePlan;
use crate::report::VerificationReport;
use crate::scheduler::{self, ExploreOptions, RunResult};
use crate::tool::{DampiCtx, DampiLayer};

/// The top-level DAMPI verifier.
#[derive(Debug, Clone)]
pub struct DampiVerifier {
    /// Simulated-world configuration (process count, match policy, costs).
    pub sim: SimConfig,
    /// Verifier configuration (clock mode, bounds, heuristics).
    pub cfg: DampiConfig,
    /// Substrate fault-injection plan, layered below the DAMPI tool when
    /// set (testing the verifier's own fault tolerance).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Campaign metrics sink observing [`Self::verify`] /
    /// [`Self::verify_resumed`] (see [`crate::metrics`]).
    pub metrics: Option<Arc<CampaignMetrics>>,
    /// Campaign trace (JSONL event stream) observing explorations.
    pub trace: Option<Arc<CampaignTrace>>,
    /// Static pre-analysis prune plan applied to the frontier (see
    /// [`crate::prune`]); produced by the `dampi-analysis` crate.
    pub prune: Option<Arc<PrunePlan>>,
    /// Persistent replay-result cache consulted on the commit path (see
    /// [`crate::cache`]); `dampi-cli verify --cache <dir>`.
    pub cache: Option<Arc<ReplayCache>>,
}

impl DampiVerifier {
    /// Verifier with default DAMPI configuration.
    #[must_use]
    pub fn new(sim: SimConfig) -> Self {
        Self {
            sim,
            cfg: DampiConfig::default(),
            fault_plan: None,
            metrics: None,
            trace: None,
            prune: None,
            cache: None,
        }
    }

    /// Verifier with an explicit configuration.
    #[must_use]
    pub fn with_config(sim: SimConfig, cfg: DampiConfig) -> Self {
        Self {
            sim,
            cfg,
            fault_plan: None,
            metrics: None,
            trace: None,
            prune: None,
            cache: None,
        }
    }

    /// Builder-style: inject substrate faults below the tool stack.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Builder-style: observe explorations with a campaign metrics sink.
    /// Snapshot it after `verify` returns (see [`CampaignMetrics`]).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<CampaignMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Builder-style: stream campaign events to a JSONL trace.
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<CampaignTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder-style: prune the frontier with a static pre-analysis plan
    /// (`dampi-cli verify --prune-static`). An empty plan is dropped so
    /// exploration stays literally identical to the unpruned walk.
    #[must_use]
    pub fn with_prune_plan(mut self, plan: PrunePlan) -> Self {
        self.prune = (!plan.is_empty()).then(|| Arc::new(plan));
        self
    }

    /// Builder-style: attach a persistent replay-result cache. Open it
    /// with [`ReplayCache::open`] keyed on the program's config digest and
    /// [`crate::cache::plan_digest`] of the *installed* prune plan (attach
    /// the plan first). The exploration itself is unchanged — hits only
    /// short-circuit replay execution on the commit path.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ReplayCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn make_ctx(&self, decisions: &DecisionSet) -> (Arc<DampiCtx>, Arc<TraceCollector>) {
        let collector = TraceCollector::new();
        let ctx = Arc::new(DampiCtx {
            decisions: decisions.clone(),
            collector: Arc::clone(&collector),
            clock_mode: self.cfg.clock_mode,
            piggyback: self.cfg.piggyback,
            monitor: self.cfg.monitor_unsafe_pattern,
            analysis_cost: self.sim.vtime.dampi_analysis,
            deferred_clock: self.cfg.deferred_clock_sync,
        });
        (ctx, collector)
    }

    /// Execute one run of `program` under the DAMPI tool stack with the
    /// given decisions. Public so overhead experiments (Table II) can time
    /// a single instrumented run.
    pub fn instrumented_run(&self, program: &dyn MpiProgram, decisions: &DecisionSet) -> RunResult {
        if !self.cfg.replay_cost.is_zero() {
            // Simulated MPI job-launch latency (see `DampiConfig::replay_cost`).
            // Charged here, not in the scheduler, so replays served from the
            // replay cache — which never reach this function — skip the bill.
            std::thread::sleep(self.cfg.replay_cost);
        }
        let (ctx, collector) = self.make_ctx(decisions);
        let plan = self.fault_plan.clone();
        let outcome = run_with_layers(&self.sim, program, &|_rank, pmpi| {
            let ctx = Arc::clone(&ctx);
            // The fault layer (when armed) sits *below* DAMPI so injected
            // faults hit both application traffic and the tool's own
            // piggyback messages on the shadow communicator. Layer
            // construction performs the shadow `comm_dup`; a failure there
            // is this rank's error, not a harness panic.
            let layer: Box<dyn Mpi> = match &plan {
                Some(plan) if plan.armed(ctx.decisions.is_self_run()) => Box::new(DampiLayer::new(
                    FaultLayer::new(pmpi, Arc::clone(plan)),
                    ctx,
                )?),
                _ => Box::new(DampiLayer::new(pmpi, ctx)?),
            };
            Ok(layer)
        });
        let (epochs, stats) = collector.take();
        RunResult {
            outcome,
            epochs,
            stats,
        }
    }

    /// Execute one free (`SELF_RUN`) execution with an application-level
    /// event trace recorded *above* the DAMPI layer: the trace sees exactly
    /// the MPI calls the program made (piggyback traffic stays invisible,
    /// since it is issued below the trace layer), while the tool still
    /// collects epochs and alternates from the same run. This is the input
    /// the static pre-analysis (`dampi-analysis`) consumes.
    pub fn traced_run(&self, program: &dyn MpiProgram) -> (Vec<TraceEvent>, RunResult) {
        let (ctx, collector) = self.make_ctx(&DecisionSet::self_run());
        let events = EventTraceCollector::new();
        let ev2 = Arc::clone(&events);
        let outcome = run_with_layers(&self.sim, program, &|_rank, pmpi| {
            let ctx = Arc::clone(&ctx);
            let layer: Box<dyn Mpi> = Box::new(TraceLayer::new(
                DampiLayer::new(pmpi, ctx)?,
                Arc::clone(&ev2),
            ));
            Ok(layer)
        });
        let (epochs, stats) = collector.take();
        (
            events.take(),
            RunResult {
                outcome,
                epochs,
                stats,
            },
        )
    }

    /// Execute `program` without instrumentation (the "native MPI"
    /// baseline for Table II slowdowns).
    #[must_use]
    pub fn native_run(&self, program: &dyn MpiProgram) -> RunOutcome {
        dampi_mpi::runtime::run_native(&self.sim, program)
    }

    /// Instrumented-vs-native slowdown of a single run (Table II).
    #[must_use]
    pub fn slowdown(&self, program: &dyn MpiProgram) -> (f64, RunOutcome, RunResult) {
        let native = self.native_run(program);
        let inst = self.instrumented_run(program, &DecisionSet::self_run());
        let ratio = if native.makespan > 0.0 {
            inst.outcome.makespan / native.makespan
        } else {
            1.0
        };
        (ratio, native, inst)
    }

    /// Shrink a found error's reproduction schedule to its essential
    /// decisions by repeated re-execution (greedy delta debugging; see
    /// [`crate::minimize`]). Returns the minimized schedule and the number
    /// of extra runs spent.
    pub fn minimize_error(
        &self,
        program: &dyn MpiProgram,
        error: &crate::report::FoundError,
    ) -> (DecisionSet, u64) {
        let target_rank = error.rank;
        let target_msg = error.error.to_string();
        crate::minimize::minimize(&error.decisions, |ds| {
            let run = self.instrumented_run(program, ds);
            run.outcome
                .program_bugs()
                .iter()
                .any(|b| b.rank == target_rank && b.error.to_string() == target_msg)
        })
    }

    fn explore_options(&self) -> ExploreOptions {
        ExploreOptions {
            bound: self.cfg.bound,
            honor_regions: self.cfg.honor_regions,
            max_interleavings: self.cfg.max_interleavings,
            stop_on_first_error: self.cfg.stop_on_first_error,
            branch_on_guided: self.cfg.branch_on_guided,
            divergence_retries: self.cfg.divergence_retries,
            retry_backoff: self.cfg.retry_backoff,
            checkpoint: self.cfg.journal.clone(),
            jobs: self.cfg.jobs,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            prune: self.prune.clone(),
            cache: self.cache.clone(),
        }
    }

    /// Full verification: explore the space of non-deterministic matches.
    /// With `cfg.jobs > 1`, replays run on a worker pool; the merge is
    /// deterministic, so the report is identical to a sequential run.
    #[must_use]
    pub fn verify(&self, program: &dyn MpiProgram) -> VerificationReport {
        let opts = self.explore_options();
        let ex = scheduler::explore_parallel(|ds| self.instrumented_run(program, ds), &opts);
        self.report_from(program.name(), ex)
    }

    /// Full verification that reuses an already-executed free run as the
    /// campaign's `SELF_RUN` — the `--prune-static` path: the prune plan
    /// was derived from exactly that run (via [`Self::traced_run`]), so
    /// the root frontier being pruned is the frontier that run produced,
    /// not a re-execution that might have scheduled differently.
    #[must_use]
    pub fn verify_with_first_run(
        &self,
        program: &dyn MpiProgram,
        first: RunResult,
    ) -> VerificationReport {
        let opts = self.explore_options();
        let cached = parking_lot::Mutex::new(Some(first));
        let ex = scheduler::explore_parallel(
            |ds| {
                if ds.is_self_run() {
                    if let Some(run) = cached.lock().take() {
                        return run;
                    }
                }
                self.instrumented_run(program, ds)
            },
            &opts,
        );
        self.report_from(program.name(), ex)
    }

    /// Full verification sharded across worker processes (or in-process
    /// stand-ins) spawned by `launcher`, with the fault tolerance described
    /// in [`crate::shard`]: lost workers are respawned, their subtrees
    /// re-dispatched, and poison subtrees quarantined as honest timeout
    /// records. A completed sharded campaign's report is byte-identical to
    /// [`Self::verify`]'s.
    ///
    /// # Errors
    ///
    /// Fails when the worker fleet cannot be spawned or permanently dies
    /// with work outstanding (see [`crate::shard::explore_sharded`]).
    pub fn verify_sharded(
        &self,
        program: &dyn MpiProgram,
        launcher: &dyn crate::shard::WorkerLauncher,
        shard: &crate::shard::ShardOptions,
    ) -> std::io::Result<VerificationReport> {
        let opts = self.explore_options();
        let ex = crate::shard::explore_sharded(launcher, &opts, shard, None)?;
        Ok(self.report_from(program.name(), ex))
    }

    /// [`Self::verify_sharded`] continuing from a checkpoint journal —
    /// including one written by a drained (SIGTERM'd) sharded campaign or
    /// by a plain `--jobs` run; the formats are identical.
    ///
    /// # Errors
    ///
    /// Fails when the journal cannot be loaded or the worker fleet fails
    /// permanently (see [`crate::shard::explore_sharded`]).
    pub fn verify_sharded_resumed(
        &self,
        program: &dyn MpiProgram,
        launcher: &dyn crate::shard::WorkerLauncher,
        shard: &crate::shard::ShardOptions,
        journal_path: &std::path::Path,
    ) -> std::io::Result<VerificationReport> {
        let journal = ExplorationJournal::load(journal_path)?;
        let mut opts = self.explore_options();
        if opts.checkpoint.is_none() {
            opts.checkpoint = Some(journal_path.to_path_buf());
        }
        let ex = crate::shard::explore_sharded(launcher, &opts, shard, Some(journal))?;
        Ok(self.report_from(program.name(), ex))
    }

    /// Continue an interrupted campaign from an exploration journal (see
    /// [`crate::journal`]). Further checkpoints keep going to the same
    /// file unless the configuration names a different one, so a campaign
    /// can be killed and resumed any number of times.
    pub fn verify_resumed(
        &self,
        program: &dyn MpiProgram,
        journal_path: &std::path::Path,
    ) -> std::io::Result<VerificationReport> {
        let journal = ExplorationJournal::load(journal_path)?;
        let mut opts = self.explore_options();
        if opts.checkpoint.is_none() {
            opts.checkpoint = Some(journal_path.to_path_buf());
        }
        let ex = scheduler::explore_parallel_resumed(
            |ds| self.instrumented_run(program, ds),
            &opts,
            journal,
        );
        Ok(self.report_from(program.name(), ex))
    }

    fn report_from(&self, program: &str, ex: scheduler::Exploration) -> VerificationReport {
        let ToolRunStats {
            wildcards,
            pb_messages,
            unsafe_alerts,
            ..
        } = ex.first_run_stats;
        VerificationReport {
            program: program.to_owned(),
            nprocs: self.sim.nprocs,
            clock_mode: self.cfg.clock_mode,
            bound: self.cfg.bound,
            interleavings: ex.interleavings,
            errors: ex.errors,
            leaks: ex.first_run_leaks,
            wildcards_analyzed: wildcards,
            unsafe_alerts,
            divergences: ex.divergences,
            retries: ex.retries,
            timeouts: ex.timeouts,
            quarantined: ex.quarantined,
            drained: ex.drained,
            pb_messages,
            first_run_makespan: ex.first_run_makespan,
            total_virtual_time: ex.total_virtual_time,
            budget_exhausted: ex.budget_exhausted,
            alternates_pruned: ex.alternates_pruned,
            wildcards_deterministic: ex.wildcards_deterministic,
            refined_alternates_pruned: ex.refined_alternates_pruned,
            refined_wildcards_deterministic: ex.refined_wildcards_deterministic,
            protocol_alternates_pruned: ex.protocol_alternates_pruned,
            protocol_wildcards_deterministic: ex.protocol_wildcards_deterministic,
            discovered: ex.discovered,
        }
    }
}
