//! Epoch records: the per-rank log of non-deterministic events.
//!
//! Each wildcard receive (or probe) *starts an epoch* — an interval on the
//! issuing process's timeline stretching to the next non-deterministic
//! event (paper §II-B). `RecordEpochData` in Algorithm 1 is
//! [`EpochRecord`] creation here: the record captures the clock at the
//! event, the matching constraints (communicator, tag specifier), and — as
//! the run proceeds — the actually-matched source plus every *potential
//! alternate match* discovered through late-message analysis.

use std::collections::BTreeSet;

use dampi_clocks::ClockStamp;
use dampi_mpi::{Comm, Tag};
use parking_lot::Mutex;
use std::sync::Arc;

/// Kind of non-deterministic event that opened the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NdKind {
    /// `Irecv`/`Recv` with `MPI_ANY_SOURCE`.
    Recv,
    /// `Probe`/`Iprobe` with `MPI_ANY_SOURCE` (recorded for `Iprobe` only
    /// when the flag was true, per §II-E).
    Probe,
}

/// One non-deterministic event and everything DAMPI learned about it.
/// Serializable because shard workers ship whole epoch logs back to the
/// supervisor over the wire protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EpochRecord {
    /// World rank that issued the event.
    pub rank: usize,
    /// Scalar clock value identifying the epoch on this rank (unique and
    /// strictly increasing per rank; the key of the Epoch Decisions file).
    pub clock: u64,
    /// The event's clock stamp (post-tick — the receive event's own
    /// timestamp) — what late analysis compares incoming stamps against.
    pub stamp: ClockStamp,
    /// Communicator of the receive/probe.
    pub comm: Comm,
    /// Tag specifier as posted (possibly `ANY_TAG`).
    pub tag_spec: Tag,
    /// Receive or probe.
    pub kind: NdKind,
    /// Inside a `pcontrol`-bracketed loop-abstraction region?
    pub in_region: bool,
    /// Was the source forced by the Epoch Decisions file (GUIDED_RUN)?
    pub guided: bool,
    /// The source (comm rank) that actually matched, once known.
    pub matched_src: Option<usize>,
    /// Potential alternate matches: sources whose late sends could have
    /// matched this epoch instead.
    pub alternates: BTreeSet<usize>,
}

impl EpochRecord {
    /// Alternate sources excluding the one that actually matched — the
    /// decisions the schedule generator will branch on.
    #[must_use]
    pub fn unexplored_alternates(&self) -> Vec<usize> {
        self.alternates
            .iter()
            .copied()
            .filter(|s| Some(*s) != self.matched_src)
            .collect()
    }
}

/// Per-run tool statistics (Table II inputs and report details).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ToolRunStats {
    /// Wildcard operations analyzed (Table II's R\* column).
    pub wildcards: u64,
    /// Incoming messages classified late and analyzed for matches.
    pub late_messages: u64,
    /// Incoming messages run through `FindPotentialMatches` (the
    /// late-classification denominator). `#[serde(default)]` so journals
    /// written before this counter existed still load.
    #[serde(default)]
    pub messages_analyzed: u64,
    /// Piggyback messages generated.
    pub pb_messages: u64,
    /// Piggyback bytes put on the wire (stamp frames; grows with world
    /// size under vector clocks — the §II-C scalability measurement).
    #[serde(default)]
    pub pb_wire_bytes: u64,
    /// §V unsafe-pattern monitor alerts.
    pub unsafe_alerts: u64,
    /// Guided-mode lookups that found no decision entry (replay
    /// divergence).
    pub divergences: u64,
    /// Messages the program never received that the tool drained and
    /// analyzed at finalize (they still "impinge on the process" and can be
    /// potential matches — paper §II-B).
    pub drained_messages: u64,
}

impl ToolRunStats {
    /// Merge another rank's stats into this aggregate.
    pub fn merge(&mut self, other: &ToolRunStats) {
        self.wildcards += other.wildcards;
        self.late_messages += other.late_messages;
        self.messages_analyzed += other.messages_analyzed;
        self.pb_messages += other.pb_messages;
        self.pb_wire_bytes += other.pb_wire_bytes;
        self.unsafe_alerts += other.unsafe_alerts;
        self.divergences += other.divergences;
        self.drained_messages += other.drained_messages;
    }
}

/// Gathers every rank's epoch log and stats at finalize — the simulator
/// analog of DAMPI's per-node Potential Matches files that the schedule
/// generator reads after the run.
#[derive(Debug, Default)]
pub struct TraceCollector {
    inner: Mutex<TraceInner>,
}

#[derive(Debug, Default)]
struct TraceInner {
    epochs: Vec<EpochRecord>,
    stats: ToolRunStats,
    submitted_ranks: usize,
}

impl TraceCollector {
    /// Fresh collector behind an `Arc` for sharing with per-rank layers.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Submit one rank's log (called by the tool layer at finalize).
    pub fn submit(&self, mut epochs: Vec<EpochRecord>, stats: ToolRunStats) {
        let mut g = self.inner.lock();
        g.epochs.append(&mut epochs);
        g.stats.merge(&stats);
        g.submitted_ranks += 1;
    }

    /// Drain the collected trace: all epochs (unsorted) plus aggregate
    /// stats.
    #[must_use]
    pub fn take(&self) -> (Vec<EpochRecord>, ToolRunStats) {
        let mut g = self.inner.lock();
        let epochs = std::mem::take(&mut g.epochs);
        let stats = g.stats;
        g.stats = ToolRunStats::default();
        g.submitted_ranks = 0;
        (epochs, stats)
    }

    /// How many ranks have submitted so far.
    #[must_use]
    pub fn submitted_ranks(&self) -> usize {
        self.inner.lock().submitted_ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rank: usize, clock: u64) -> EpochRecord {
        EpochRecord {
            rank,
            clock,
            stamp: ClockStamp::Lamport(clock),
            comm: Comm::WORLD,
            tag_spec: 0,
            kind: NdKind::Recv,
            in_region: false,
            guided: false,
            matched_src: Some(1),
            alternates: BTreeSet::from([1, 2, 3]),
        }
    }

    #[test]
    fn unexplored_excludes_matched() {
        let e = record(0, 0);
        assert_eq!(e.unexplored_alternates(), vec![2, 3]);
    }

    #[test]
    fn unexplored_with_no_match_keeps_all() {
        let mut e = record(0, 0);
        e.matched_src = None;
        assert_eq!(e.unexplored_alternates(), vec![1, 2, 3]);
    }

    #[test]
    fn collector_merges_ranks() {
        let c = TraceCollector::new();
        c.submit(
            vec![record(0, 0)],
            ToolRunStats {
                wildcards: 1,
                ..Default::default()
            },
        );
        c.submit(
            vec![record(1, 0), record(1, 1)],
            ToolRunStats {
                wildcards: 2,
                late_messages: 5,
                ..Default::default()
            },
        );
        assert_eq!(c.submitted_ranks(), 2);
        let (epochs, stats) = c.take();
        assert_eq!(epochs.len(), 3);
        assert_eq!(stats.wildcards, 3);
        assert_eq!(stats.late_messages, 5);
        // Drained.
        let (epochs, stats) = c.take();
        assert!(epochs.is_empty());
        assert_eq!(stats, ToolRunStats::default());
    }
}
