//! The supervisor ↔ worker wire protocol.
//!
//! Frames are length-prefixed and checksummed:
//!
//! ```text
//! [u32 len LE][u64 FNV-1a(payload) LE][len bytes of JSON payload]
//! ```
//!
//! JSON keeps the payload debuggable (`xxd` a captured stream and read
//! it); the checksum is what makes corruption a *detected* failure instead
//! of a parse error deep inside serde — the supervisor treats a bad frame
//! as a dead worker and re-dispatches, it never trusts partial bytes. The
//! length cap bounds allocation against a corrupted or adversarial length
//! word.
//!
//! Floating-point fields (makespans, virtual times) survive the JSON trip
//! bit-exactly: Rust's `Display` for `f64` emits the shortest
//! round-trippable decimal and parsing is correctly rounded, which is what
//! lets a sharded campaign promise *byte*-identical reports and journals.

use std::io::{self, Read, Write};

use dampi_mpi::program::RunOutcome;

use crate::decisions::DecisionSet;
use crate::epoch::{EpochRecord, ToolRunStats};
use crate::scheduler::RunResult;

/// Protocol version, checked in the `Hello` handshake. Bumped on any
/// incompatible frame or message change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame's payload length (64 MiB). A legitimate subtree
/// result is orders of magnitude smaller; anything larger is corruption.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Messages the supervisor sends to a worker.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum ToWorker {
    /// Replay one schedule and return its [`SubtreeResult`].
    Job {
        /// The schedule's signature (echoed back in the result so the
        /// supervisor can pair frames without re-hashing).
        sig: u64,
        /// The schedule to replay.
        decisions: DecisionSet,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Messages a worker sends to the supervisor.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum FromWorker {
    /// First message on the wire: identity and compatibility check.
    Hello {
        /// [`PROTOCOL_VERSION`] the worker speaks.
        protocol: u32,
        /// Digest of the worker's verification config; must equal the
        /// supervisor's or results would silently diverge.
        config_digest: u64,
        /// Worker process id (the host's own pid for in-process test
        /// workers).
        pid: u32,
    },
    /// Liveness beacon, sent every heartbeat interval — including while a
    /// replay is executing (the beacon thread is independent), so a long
    /// replay is distinguishable from a dead process.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// A completed job.
    Result {
        /// Signature of the job this result answers.
        sig: u64,
        /// Everything the replay produced. Boxed so the enum's common
        /// variants (heartbeats) stay small on the channel.
        result: Box<SubtreeResult>,
    },
}

/// A replay's complete product, shipped back to the supervisor. Carries
/// the same information [`crate::scheduler`]'s in-process workers hand the
/// coordinator: the final attempt's result plus the cost of every attempt,
/// so the deterministic commit path absorbs identical numbers either way.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SubtreeResult {
    /// Runtime outcome of the final attempt.
    pub outcome: RunOutcome,
    /// Epoch log of the final attempt.
    pub epochs: Vec<EpochRecord>,
    /// Tool stats of the final attempt.
    pub stats: ToolRunStats,
    /// Simulated makespan of each attempt, first to last (summed into
    /// `total_virtual_time` in attempt order — bit-exact parity).
    pub attempt_makespans: Vec<f64>,
    /// Guided-lookup misses summed over all attempts.
    pub divergences: u64,
    /// Re-executions after a divergence.
    pub retries: u64,
}

impl SubtreeResult {
    /// Rebuild the `#[serde(skip)]` lookup indices of every decision set
    /// that crossed the wire.
    pub(crate) fn rebuild_indices(&mut self) {
        // EpochRecords carry no DecisionSet; nothing to rebuild today.
        // Kept as the single chokepoint should the result ever grow one.
    }
}

/// FNV-1a over the payload — cheap, dependency-free, and plenty to catch
/// torn or bit-flipped frames (this is corruption *detection*, not
/// authentication; supervisor and workers share a trust domain).
#[must_use]
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_frame_with_checksum(w, payload, checksum(payload))
}

/// Write one frame with an explicit checksum word — the fault-injection
/// hook behind [`dampi_mpi::fault::WorkerFaultKind::CorruptResult`].
pub fn write_frame_with_checksum<W: Write>(
    w: &mut W,
    payload: &[u8],
    checksum: u64,
) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::other(format!("frame payload of {} bytes", payload.len())))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&checksum.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *between* frames (the peer
/// closed); EOF mid-frame, an oversized length, or a checksum mismatch is
/// an error — the stream can no longer be trusted.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::other(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap (corrupt stream?)"
        )));
    }
    let mut sum_buf = [0u8; 8];
    r.read_exact(&mut sum_buf)?;
    let expect = u64::from_le_bytes(sum_buf);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let got = checksum(&payload);
    if got != expect {
        return Err(io::Error::other(format!(
            "frame checksum mismatch: header {expect:#018x}, payload {got:#018x}"
        )));
    }
    Ok(Some(payload))
}

/// Serialize and frame one message.
pub fn send_msg<W: Write, T: serde::Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let json = serde_json::to_string(msg).map_err(io::Error::other)?;
    write_frame(w, json.as_bytes())
}

/// Read and decode one message; `Ok(None)` on clean EOF.
pub fn recv_msg<R: Read, T: serde::Deserialize>(r: &mut R) -> io::Result<Option<T>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| io::Error::other(format!("frame payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(io::Error::other)
}

/// [`SubtreeResult`] → the scheduler's attempt report shape.
pub(crate) fn result_into_parts(mut r: SubtreeResult) -> (RunResult, Vec<f64>, u64, u64) {
    r.rebuild_indices();
    (
        RunResult {
            outcome: r.outcome,
            epochs: r.epochs,
            stats: r.stats,
        },
        r.attempt_makespans,
        r.divergences,
        r.retries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"subtree result bytes").unwrap();
        let flip = buf.len() - 3;
        buf[flip] ^= 0x40;
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_checksum_word_is_detected() {
        let mut buf = Vec::new();
        write_frame_with_checksum(&mut buf, b"payload", 0xdead_beef).unwrap();
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"cut me off").unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = &buf[..];
        assert!(
            read_frame(&mut r).is_err(),
            "mid-frame EOF must not be silent"
        );
    }

    #[test]
    fn messages_roundtrip() {
        let mut buf = Vec::new();
        send_msg(
            &mut buf,
            &ToWorker::Job {
                sig: 42,
                decisions: DecisionSet::self_run(),
            },
        )
        .unwrap();
        send_msg(&mut buf, &ToWorker::Shutdown).unwrap();
        send_msg(
            &mut buf,
            &FromWorker::Hello {
                protocol: PROTOCOL_VERSION,
                config_digest: 7,
                pid: 123,
            },
        )
        .unwrap();
        let mut r = &buf[..];
        match recv_msg::<_, ToWorker>(&mut r).unwrap().unwrap() {
            ToWorker::Job { sig, decisions } => {
                assert_eq!(sig, 42);
                assert!(decisions.is_self_run());
            }
            other => panic!("expected Job, got {other:?}"),
        }
        assert!(matches!(
            recv_msg::<_, ToWorker>(&mut r).unwrap().unwrap(),
            ToWorker::Shutdown
        ));
        match recv_msg::<_, FromWorker>(&mut r).unwrap().unwrap() {
            FromWorker::Hello {
                protocol,
                config_digest,
                pid,
            } => {
                assert_eq!((protocol, config_digest, pid), (PROTOCOL_VERSION, 7, 123));
            }
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn makespans_cross_the_wire_bit_exactly() {
        // Awkward values: subnormal-ish, repeating binary fractions, big.
        let ms = [0.1, 1.0 / 3.0, 6.02e23, 5e-324, 1.2345678901234567];
        let res = SubtreeResult {
            outcome: RunOutcome {
                rank_errors: vec![None],
                leaks: dampi_mpi::LeakReport::default(),
                fatal: None,
                per_rank_vt: ms.to_vec(),
                wall_elapsed: std::time::Duration::from_micros(17),
                makespan: ms[2],
            },
            epochs: vec![],
            stats: ToolRunStats::default(),
            attempt_makespans: ms.to_vec(),
            divergences: 0,
            retries: 0,
        };
        let mut buf = Vec::new();
        send_msg(
            &mut buf,
            &FromWorker::Result {
                sig: 1,
                result: Box::new(res),
            },
        )
        .unwrap();
        let mut r = &buf[..];
        let FromWorker::Result { result, .. } = recv_msg::<_, FromWorker>(&mut r).unwrap().unwrap()
        else {
            panic!("expected Result");
        };
        for (a, b) in ms.iter().zip(&result.attempt_makespans) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} must survive the wire");
        }
        assert_eq!(result.outcome.makespan.to_bits(), ms[2].to_bits());
    }
}
