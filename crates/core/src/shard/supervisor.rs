//! The fault-tolerant shard supervisor.
//!
//! [`explore_sharded`] is the process-level sibling of
//! [`explore_parallel`](crate::scheduler::explore_parallel): the same
//! speculative-execution/in-order-commit design, with worker *processes*
//! behind a framed pipe protocol instead of threads behind a channel. The
//! supervisor owns the one and only `Walk` — workers execute replays and
//! nothing else — so every exploration state change still flows through
//! the deterministic commit path and a completed `--shards N` campaign is
//! byte-identical to `--jobs 1`: same counts, same error set, same report
//! JSON, same journal bytes.
//!
//! What the thread pool never had to survive, this module does:
//!
//! * **Crash detection** — a reader thread per worker incarnation turns
//!   EOF, I/O errors, and checksum-corrupt frames into loss events; a
//!   beacon-silence detector catches processes that die without closing
//!   their pipe, and a wall-clock lease catches workers that heartbeat
//!   forever without finishing (see [`super::lease`]).
//! * **Recovery** — a lost worker's in-flight subtree goes back on the
//!   dispatch queue after a deterministic backoff; the slot respawns with
//!   a bounded retry budget. Dispatch attempts per subtree are also
//!   bounded: after `max_attempts` losses the subtree is **quarantined**,
//!   committed as an honest [`timeout`](crate::report::ReplayTimeoutRecord)
//!   (partial coverage, reported, never silently dropped), and the walk
//!   moves on instead of hanging.
//! * **Graceful drain** — an external flag (the CLI wires SIGTERM to it)
//!   checkpoints the frontier and stops cleanly; the journal resumes under
//!   any `--shards`/`--jobs` value.
//!
//! Accounting note: a quarantined subtree's synthetic commit counts one
//! `replays_started`, so the campaign ledger
//! `started == committed + aborted` survives any kill schedule — each of
//! its real dispatch attempts was started once and aborted once.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dampi_mpi::fault::WorkerFaultPlan;
use dampi_mpi::program::RunOutcome;
use dampi_mpi::MpiError;
use parking_lot::{Condvar, Mutex};

use crate::decisions::DecisionSet;
use crate::epoch::ToolRunStats;
use crate::journal::ExplorationJournal;
use crate::metrics::CampaignEvent;
use crate::scheduler::{
    cache_lookup, cache_prepare, cache_store, AttemptReport, Exploration, ExploreOptions, Ready,
    RunResult, Walk,
};

use super::lease::{LeaseConfig, SlotHealth, Verdict};
use super::protocol::{recv_msg, result_into_parts, FromWorker, ToWorker, PROTOCOL_VERSION};
use super::worker::{run_worker, WorkerConfig};
use super::ShardOptions;

// ---- Launcher abstraction --------------------------------------------------

/// The supervisor's grip on one live worker: a way to send it jobs and a
/// way to make it dead. `kill` must be idempotent and must never block
/// indefinitely.
pub trait WorkerHandle: Send {
    /// Frame one message to the worker.
    fn send(&mut self, msg: &ToWorker) -> io::Result<()>;
    /// Tear the worker down (close pipes, SIGKILL, cancel — whatever the
    /// transport needs). Called on loss, quarantine, and shutdown.
    fn kill(&mut self);
}

/// A freshly spawned worker: the handle plus the stream its frames arrive
/// on (the supervisor moves the reader into a dedicated thread).
pub struct SpawnedWorker {
    /// Command/kill side.
    pub handle: Box<dyn WorkerHandle>,
    /// Result/heartbeat side.
    pub reader: Box<dyn Read + Send>,
}

/// Spawns worker incarnations into slots. The launcher decides the
/// transport (OS process vs in-process thread); the supervisor's failure
/// handling is identical either way, which is what lets the whole
/// crash-recovery state machine be tested hermetically in-process.
pub trait WorkerLauncher {
    /// Spawn a fresh worker for `slot`. `fault` is the chaos plan this
    /// incarnation must arm (the supervisor arms faults only on the
    /// configured slot's first generation unless the plan is persistent).
    fn spawn(&self, slot: usize, fault: Option<WorkerFaultPlan>) -> io::Result<SpawnedWorker>;
}

// ---- OS-process launcher ---------------------------------------------------

/// Launches real worker processes. The command builder is injected (the
/// CLI builds `current_exe() verify --worker ...`), keeping this crate
/// free of CLI knowledge while the supervisor still owns stdio wiring:
/// stdin/stdout are the protocol, stderr passes through for diagnostics.
pub struct ProcessWorkerLauncher {
    make_command: Box<dyn Fn(usize, Option<WorkerFaultPlan>) -> Command>,
}

impl ProcessWorkerLauncher {
    /// Launcher from a command builder (called once per incarnation).
    #[must_use]
    pub fn new(make_command: impl Fn(usize, Option<WorkerFaultPlan>) -> Command + 'static) -> Self {
        Self {
            make_command: Box::new(make_command),
        }
    }
}

impl WorkerLauncher for ProcessWorkerLauncher {
    fn spawn(&self, slot: usize, fault: Option<WorkerFaultPlan>) -> io::Result<SpawnedWorker> {
        let mut cmd = (self.make_command)(slot, fault);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("worker child has no stdin"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker child has no stdout"))?;
        Ok(SpawnedWorker {
            handle: Box::new(ProcessHandle {
                child,
                stdin: Some(stdin),
            }),
            reader: Box::new(stdout),
        })
    }
}

struct ProcessHandle {
    child: Child,
    stdin: Option<ChildStdin>,
}

impl WorkerHandle for ProcessHandle {
    fn send(&mut self, msg: &ToWorker) -> io::Result<()> {
        match &mut self.stdin {
            Some(s) => super::protocol::send_msg(s, msg),
            None => Err(io::Error::from(io::ErrorKind::BrokenPipe)),
        }
    }

    fn kill(&mut self) {
        // Close stdin first: a healthy worker exits on EOF, so the common
        // shutdown path reaps without signalling. Wedged workers get a
        // short grace window, then SIGKILL.
        drop(self.stdin.take());
        for _ in 0..20 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---- In-process launcher (hermetic fault-injection tests) ------------------

/// A byte pipe over a shared deque — the in-memory stand-in for the
/// stdin/stdout pair, so the full framed protocol (checksums, torn frames,
/// EOF semantics) is exercised even in-process.
#[derive(Default)]
struct PipeInner {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

type PipeShared = Arc<(Mutex<PipeInner>, Condvar)>;

pub(crate) struct PipeReader(PipeShared);
pub(crate) struct PipeWriter(PipeShared);

pub(crate) fn pipe() -> (PipeWriter, PipeReader) {
    let shared: PipeShared = Arc::new((Mutex::new(PipeInner::default()), Condvar::new()));
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let (m, cv) = &*self.0;
        let mut g = m.lock();
        while g.buf.is_empty() && !g.write_closed {
            cv.wait(&mut g);
        }
        if g.buf.is_empty() {
            return Ok(0); // EOF: writer gone and nothing buffered
        }
        let n = buf.len().min(g.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = g.buf.pop_front().expect("len checked");
        }
        Ok(n)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let (m, cv) = &*self.0;
        m.lock().read_closed = true;
        cv.notify_all();
    }
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let (m, cv) = &*self.0;
        let mut g = m.lock();
        if g.read_closed {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        }
        g.buf.extend(data);
        cv.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let (m, cv) = &*self.0;
        m.lock().write_closed = true;
        cv.notify_all();
    }
}

/// Runs workers as threads inside the supervisor's own process, speaking
/// the real wire protocol over in-memory pipes. This is how the
/// supervisor's whole failure matrix — kills, stalls, wedges, corrupt
/// frames, exit-before-ack — is tested without fork/exec, deterministically
/// enough for proptest kill schedules.
pub struct InProcessLauncher {
    run: Arc<dyn Fn(&DecisionSet) -> RunResult + Send + Sync>,
    /// Beacon period for spawned workers.
    pub heartbeat_interval: Duration,
    /// Digest echoed in the worker `Hello`.
    pub config_digest: u64,
    /// Worker-side divergence retry budget (mirror of the supervisor's
    /// [`ExploreOptions::divergence_retries`] for replay parity).
    pub divergence_retries: u32,
    /// Worker-side retry backoff (mirror of
    /// [`ExploreOptions::retry_backoff`]).
    pub retry_backoff: crate::config::RetryBackoff,
}

impl InProcessLauncher {
    /// Launcher over a replay function shared by every worker thread.
    #[must_use]
    pub fn new(
        run: Arc<dyn Fn(&DecisionSet) -> RunResult + Send + Sync>,
        opts: &ExploreOptions,
    ) -> Self {
        Self {
            run,
            heartbeat_interval: Duration::from_millis(20),
            config_digest: 0,
            divergence_retries: opts.divergence_retries,
            retry_backoff: opts.retry_backoff,
        }
    }
}

struct InProcessHandle {
    writer: Option<PipeWriter>,
    cancel: Arc<AtomicBool>,
}

impl WorkerHandle for InProcessHandle {
    fn send(&mut self, msg: &ToWorker) -> io::Result<()> {
        match &mut self.writer {
            Some(w) => super::protocol::send_msg(w, msg),
            None => Err(io::Error::from(io::ErrorKind::BrokenPipe)),
        }
    }

    fn kill(&mut self) {
        // Cancel first (breaks wedge loops), then close the job pipe (a
        // worker blocked in recv sees EOF). The worker thread drops its
        // result-pipe writer on exit, which is the EOF our reader thread
        // turns into a loss event.
        self.cancel.store(true, Ordering::Relaxed);
        drop(self.writer.take());
    }
}

impl WorkerLauncher for InProcessLauncher {
    fn spawn(&self, slot: usize, fault: Option<WorkerFaultPlan>) -> io::Result<SpawnedWorker> {
        let (job_tx, job_rx) = pipe();
        let (res_tx, res_rx) = pipe();
        let cancel = Arc::new(AtomicBool::new(false));
        let run = Arc::clone(&self.run);
        let cfg = WorkerConfig {
            heartbeat_interval: self.heartbeat_interval,
            config_digest: self.config_digest,
            fault,
            hard_exit: false,
            cancel: Arc::clone(&cancel),
        };
        let divergence_retries = self.divergence_retries;
        let retry_backoff = self.retry_backoff;
        std::thread::Builder::new()
            .name(format!("dampi-shard-worker-{slot}"))
            .spawn(move || {
                let opts = ExploreOptions {
                    divergence_retries,
                    retry_backoff,
                    metrics: None,
                    trace: None,
                    ..ExploreOptions::default()
                };
                let _ = run_worker(job_rx, res_tx, &cfg, &opts, |ds| (run)(ds));
            })?;
        Ok(SpawnedWorker {
            handle: Box::new(InProcessHandle {
                writer: Some(job_tx),
                cancel,
            }),
            reader: Box::new(res_rx),
        })
    }
}

// ---- Supervisor ------------------------------------------------------------

/// Everything that can wake the supervisor, funneled through one channel.
enum Event {
    /// A frame arrived from slot `slot`, incarnation `gen`.
    Msg {
        slot: usize,
        gen: u64,
        msg: FromWorker,
    },
    /// Slot `slot`'s incarnation `gen` is gone (EOF or stream error).
    Gone {
        slot: usize,
        gen: u64,
        reason: String,
    },
    /// Periodic health/respawn/drain check.
    Tick,
}

/// One worker slot: a bounded-restart supply of worker incarnations.
struct Slot {
    /// Incarnation counter; events from older incarnations are stale and
    /// ignored (a kill races its own final frames).
    gen: u64,
    handle: Option<Box<dyn WorkerHandle>>,
    health: SlotHealth,
    /// Signature of the in-flight job, if any.
    busy: Option<u64>,
    /// When the in-flight job was dispatched (observability only).
    dispatched_at: Option<Instant>,
    restarts: u32,
    /// When the next respawn attempt is due.
    respawn_at: Option<Instant>,
    /// Restart budget exhausted; this slot is out of the campaign.
    dead: bool,
}

struct Sup<'a> {
    launcher: &'a dyn WorkerLauncher,
    opts: &'a ExploreOptions,
    shard: &'a ShardOptions,
    lease_cfg: LeaseConfig,
    tx: crossbeam::channel::Sender<Event>,
    slots: Vec<Slot>,
    /// Results completed ahead of their commit turn, by signature —
    /// worker products and persistent-cache prefetches alike.
    ready: HashMap<u64, Ready>,
    /// Signature → slot currently executing it.
    in_flight: HashMap<u64, usize>,
    /// Dispatch attempts consumed per signature.
    attempts: HashMap<u64, u32>,
    /// Signatures lost with a worker: not dispatchable again before the
    /// deadline (redispatch backoff).
    deferred: HashMap<u64, Instant>,
    /// Signature → loss reason, for subtrees that exhausted their attempts.
    quarantined: HashMap<u64, String>,
}

impl Sup<'_> {
    fn spawn_slot(&mut self, i: usize) -> io::Result<()> {
        let gen = self.slots[i].gen;
        let fault = self
            .shard
            .fault
            .filter(|f| self.shard.fault_slot == i && (gen == 0 || f.persistent));
        let spawned = self.launcher.spawn(i, fault)?;
        start_reader(spawned.reader, i, gen, self.tx.clone())?;
        let s = &mut self.slots[i];
        s.handle = Some(spawned.handle);
        s.health = SlotHealth::new(Instant::now());
        s.busy = None;
        s.dispatched_at = None;
        s.respawn_at = None;
        if let Some(m) = &self.opts.metrics {
            m.on_worker_spawned();
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::WorkerSpawned {
                slot: i,
                generation: gen,
            });
        }
        Ok(())
    }

    /// Declare slot `i`'s current incarnation lost: kill it, reclaim its
    /// subtree (redispatch or quarantine), and schedule a respawn if the
    /// restart budget allows. Idempotent per incarnation.
    fn lose_slot(&mut self, i: usize, reason: &str, now: Instant) {
        let lost_sig = {
            let s = &mut self.slots[i];
            if s.dead || s.handle.is_none() {
                return;
            }
            if let Some(mut h) = s.handle.take() {
                h.kill();
            }
            s.gen += 1;
            s.health.on_idle();
            s.dispatched_at = None;
            if s.restarts >= self.shard.max_restarts_per_slot {
                s.dead = true;
                s.respawn_at = None;
            } else {
                s.restarts += 1;
                s.respawn_at =
                    Some(now + self.shard.respawn_backoff.delay(s.restarts - 1, i as u64));
            }
            s.busy.take()
        };
        if let Some(m) = &self.opts.metrics {
            m.on_worker_lost();
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::WorkerLost {
                slot: i,
                reason: reason.to_string(),
            });
        }
        let Some(sig) = lost_sig else { return };
        self.in_flight.remove(&sig);
        if let Some(m) = &self.opts.metrics {
            m.on_aborted(1);
        }
        let att = self.attempts.get(&sig).copied().unwrap_or(0);
        if att >= self.shard.max_attempts {
            self.quarantined.insert(
                sig,
                format!("subtree lost with its worker {att} times; last loss: {reason}"),
            );
            if let Some(m) = &self.opts.metrics {
                m.on_quarantined();
            }
            if let Some(t) = &self.opts.trace {
                t.emit(CampaignEvent::SubtreeQuarantined {
                    signature: sig,
                    attempts: att,
                });
            }
        } else {
            self.deferred.insert(
                sig,
                now + self
                    .shard
                    .redispatch_backoff
                    .delay(att.saturating_sub(1), sig),
            );
        }
    }

    /// Run both failure detectors over every live slot.
    fn check_health(&mut self, now: Instant) {
        for i in 0..self.slots.len() {
            let verdict = {
                let s = &self.slots[i];
                if s.dead || s.handle.is_none() {
                    continue;
                }
                s.health.verdict(now, &self.lease_cfg)
            };
            match verdict {
                Verdict::Healthy => {}
                Verdict::HeartbeatLost => self.lose_slot(i, "heartbeat timeout", now),
                Verdict::LeaseExpired => self.lose_slot(i, "lease expired", now),
            }
        }
    }

    /// Respawn every slot whose backoff deadline has passed.
    fn respawn_due(&mut self, now: Instant) {
        for i in 0..self.slots.len() {
            let due = {
                let s = &self.slots[i];
                !s.dead && s.handle.is_none() && s.respawn_at.is_some_and(|t| now >= t)
            };
            if !due {
                continue;
            }
            self.slots[i].respawn_at = None;
            match self.spawn_slot(i) {
                Ok(()) => {
                    if let Some(m) = &self.opts.metrics {
                        m.on_worker_restarted();
                    }
                }
                Err(e) => {
                    eprintln!("dampi: shard worker {i} respawn failed: {e}");
                    let s = &mut self.slots[i];
                    if s.restarts >= self.shard.max_restarts_per_slot {
                        s.dead = true;
                    } else {
                        s.restarts += 1;
                        s.respawn_at =
                            Some(now + self.shard.respawn_backoff.delay(s.restarts - 1, i as u64));
                    }
                }
            }
        }
    }

    /// Handle one frame from a live incarnation. `Err` is fatal to the
    /// whole campaign (protocol/config mismatch — results would silently
    /// diverge, which is worse than dying loudly).
    fn on_msg(&mut self, slot: usize, gen: u64, msg: FromWorker) -> io::Result<()> {
        {
            let s = &mut self.slots[slot];
            if s.dead || s.gen != gen || s.handle.is_none() {
                return Ok(()); // stale incarnation
            }
            s.health.on_seen(Instant::now());
        }
        match msg {
            FromWorker::Hello {
                protocol,
                config_digest,
                pid: _,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(io::Error::other(format!(
                        "worker {slot} speaks protocol {protocol}, supervisor speaks \
                         {PROTOCOL_VERSION}"
                    )));
                }
                if config_digest != self.shard.config_digest {
                    return Err(io::Error::other(format!(
                        "worker {slot} config digest {config_digest:#018x} does not match \
                         supervisor digest {:#018x}; refusing to merge diverging results",
                        self.shard.config_digest
                    )));
                }
                Ok(())
            }
            FromWorker::Heartbeat { .. } => Ok(()),
            FromWorker::Result { sig, result } => {
                if self.slots[slot].busy == Some(sig) {
                    let s = &mut self.slots[slot];
                    s.busy = None;
                    s.health.on_idle();
                    if let (Some(m), Some(t0)) = (&self.opts.metrics, s.dispatched_at.take()) {
                        m.on_executed(t0.elapsed());
                    }
                    self.in_flight.remove(&sig);
                    let (res, attempt_makespans, divergences, retries) = result_into_parts(*result);
                    self.ready.insert(
                        sig,
                        Ready {
                            rep: AttemptReport {
                                res,
                                attempt_makespans,
                                divergences,
                                retries,
                            },
                            from_cache: false,
                        },
                    );
                }
                Ok(())
            }
        }
    }

    fn on_gone(&mut self, slot: usize, gen: u64, reason: &str, now: Instant) {
        let live = {
            let s = &self.slots[slot];
            !s.dead && s.gen == gen && s.handle.is_some()
        };
        if live {
            self.lose_slot(slot, reason, now);
        }
    }

    /// Is `sig` currently dispatchable (not ready, not running, not
    /// quarantined, not inside its redispatch backoff)?
    fn dispatchable(&self, sig: u64, now: Instant) -> bool {
        !self.ready.contains_key(&sig)
            && !self.in_flight.contains_key(&sig)
            && !self.quarantined.contains_key(&sig)
            && self.deferred.get(&sig).is_none_or(|t| now >= *t)
    }

    /// Hand `sig` to an idle worker. Returns false when no live idle
    /// worker accepted it (each worker whose pipe rejects the write is
    /// declared lost on the spot).
    fn try_dispatch(&mut self, sig: u64, decisions: &DecisionSet, now: Instant) -> bool {
        loop {
            let Some(i) = self
                .slots
                .iter()
                .position(|s| !s.dead && s.handle.is_some() && s.busy.is_none())
            else {
                return false;
            };
            let sent = self.slots[i]
                .handle
                .as_mut()
                .expect("position checked handle")
                .send(&ToWorker::Job {
                    sig,
                    decisions: decisions.clone(),
                });
            match sent {
                Ok(()) => {
                    {
                        let s = &mut self.slots[i];
                        s.busy = Some(sig);
                        s.dispatched_at = Some(now);
                        s.health.on_dispatch(now, self.lease_cfg.lease);
                    }
                    self.in_flight.insert(sig, i);
                    self.deferred.remove(&sig);
                    let att = self.attempts.entry(sig).or_insert(0);
                    *att += 1;
                    let att = *att;
                    if let Some(m) = &self.opts.metrics {
                        m.on_started();
                        if att > 1 {
                            m.on_subtree_redispatched();
                        }
                    }
                    if let Some(t) = &self.opts.trace {
                        t.emit(CampaignEvent::ReplayStart { signature: sig });
                        if att > 1 {
                            t.emit(CampaignEvent::SubtreeRedispatched {
                                signature: sig,
                                attempt: att,
                            });
                        }
                    }
                    return true;
                }
                Err(e) => self.lose_slot(i, &format!("dispatch write failed: {e}"), now),
            }
        }
    }

    fn idle_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.dead && s.handle.is_some() && s.busy.is_none())
            .count()
    }

    fn all_dead(&self) -> bool {
        self.slots.iter().all(|s| s.dead)
    }

    /// Sorted in-flight signatures, mirrored into the journal's advisory
    /// `in_flight` field exactly like the thread pool does.
    fn speculated(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.in_flight.keys().copied().collect();
        sigs.sort_unstable();
        sigs
    }

    fn drain_requested(&self) -> bool {
        self.shard
            .drain
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Shutdown everything: polite `Shutdown` first, then the hammer.
    fn shutdown_all(&mut self) {
        for s in &mut self.slots {
            if let Some(h) = s.handle.as_mut() {
                let _ = h.send(&ToWorker::Shutdown);
            }
            if let Some(mut h) = s.handle.take() {
                h.kill();
            }
        }
    }
}

/// Pump frames from one worker incarnation into the event channel until
/// the stream ends. A checksum mismatch or torn frame surfaces here as an
/// `Err` from `recv_msg` — i.e. a corrupt frame *is* a dead worker, because
/// the stream can no longer be trusted after it.
fn start_reader(
    mut reader: Box<dyn Read + Send>,
    slot: usize,
    gen: u64,
    tx: crossbeam::channel::Sender<Event>,
) -> io::Result<()> {
    std::thread::Builder::new()
        .name(format!("dampi-shard-read-{slot}"))
        .spawn(move || loop {
            match recv_msg::<_, FromWorker>(&mut reader) {
                Ok(Some(msg)) => {
                    if tx.send(Event::Msg { slot, gen, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Event::Gone {
                        slot,
                        gen,
                        reason: "connection closed".into(),
                    });
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Event::Gone {
                        slot,
                        gen,
                        reason: e.to_string(),
                    });
                    return;
                }
            }
        })?;
    Ok(())
}

/// The synthetic commit for a quarantined subtree: shaped exactly like a
/// watchdog timeout so it flows through the existing partial-coverage
/// reporting ([`Exploration::timeouts`] → the report's warning block). No
/// forks are pushed (the subtree was never explored), no virtual time is
/// added (`attempt_makespans` is empty — adding `0.0` would perturb the
/// bitwise total), and the walk order is preserved because the commit
/// happens when the fork surfaces at the top of the frontier, same as any
/// real result.
fn quarantine_report(detail: &str) -> AttemptReport {
    AttemptReport {
        res: RunResult {
            outcome: RunOutcome {
                rank_errors: Vec::new(),
                leaks: dampi_mpi::LeakReport::default(),
                fatal: Some(MpiError::ReplayTimeout {
                    detail: detail.to_string(),
                }),
                per_rank_vt: Vec::new(),
                wall_elapsed: Duration::ZERO,
                makespan: 0.0,
            },
            epochs: Vec::new(),
            stats: ToolRunStats::default(),
        },
        attempt_makespans: Vec::new(),
        divergences: 0,
        retries: 0,
    }
}

fn tick_interval(shard: &ShardOptions) -> Duration {
    (shard.heartbeat_timeout.min(shard.lease) / 4)
        .clamp(Duration::from_millis(2), Duration::from_millis(200))
}

/// Run the exploration sharded across worker processes (or in-process
/// stand-ins) spawned by `launcher`, surviving worker failure per the
/// module docs. A completed campaign is byte-identical to
/// [`explore`](crate::scheduler::explore) with the same options; a drained
/// one (`shard.drain`) returns early with [`Exploration::drained`] set and
/// a resumable checkpoint behind it.
///
/// # Errors
///
/// Fails when the initial fleet cannot spawn, when a worker's `Hello`
/// reveals a protocol or config mismatch, or when every slot exhausts its
/// restart budget with work still outstanding.
#[allow(clippy::too_many_lines)]
pub fn explore_sharded(
    launcher: &dyn WorkerLauncher,
    opts: &ExploreOptions,
    shard: &ShardOptions,
    resume: Option<ExplorationJournal>,
) -> io::Result<Exploration> {
    let shards = shard.shards.max(1);
    let mut w = Walk::new(opts);
    w.begin(shards, resume.is_some());
    let mut root_pending = resume.is_none();
    if let Some(journal) = resume {
        w.restore(journal);
    }

    let (tx, rx) = crossbeam::channel::unbounded::<Event>();
    {
        let tx = tx.clone();
        let tick = tick_interval(shard);
        std::thread::Builder::new()
            .name("dampi-shard-tick".into())
            .spawn(move || loop {
                std::thread::sleep(tick);
                if tx.send(Event::Tick).is_err() {
                    return;
                }
            })?;
    }

    let mut sup = Sup {
        launcher,
        opts,
        shard,
        lease_cfg: LeaseConfig {
            heartbeat_timeout: shard.heartbeat_timeout,
            lease: shard.lease,
        },
        tx,
        slots: (0..shards)
            .map(|_| Slot {
                gen: 0,
                handle: None,
                health: SlotHealth::new(Instant::now()),
                busy: None,
                dispatched_at: None,
                restarts: 0,
                respawn_at: None,
                dead: false,
            })
            .collect(),
        ready: HashMap::new(),
        in_flight: HashMap::new(),
        attempts: HashMap::new(),
        deferred: HashMap::new(),
        quarantined: HashMap::new(),
    };
    for i in 0..shards {
        sup.spawn_slot(i)?;
    }

    let root_sig = DecisionSet::self_run().signature();
    let mut waited: Option<u64> = None;
    // Schedules the persistent cache has already missed on — probed at
    // most once each, so a cold campaign pays one disk stat per subtree.
    let mut probed_miss: HashSet<u64> = HashSet::new();

    loop {
        // Commit phase: absorb every ready result in walk order. The walk
        // alone mutates exploration state, so this block is the entire
        // determinism argument.
        loop {
            if root_pending {
                let root = DecisionSet::self_run();
                if let Some(r) = sup.ready.remove(&root_sig) {
                    let pending = if r.from_cache {
                        None
                    } else {
                        cache_prepare(opts, &root, &r.rep)
                    };
                    w.note_cache(r.from_cache, &root);
                    w.commit_root(r.rep);
                    cache_store(opts, pending);
                    root_pending = false;
                    continue;
                }
                if let Some(reason) = sup.quarantined.get(&root_sig).cloned() {
                    if let Some(m) = &opts.metrics {
                        m.on_started(); // the synthetic commit's dispatch
                    }
                    // A quarantine is a committed subtree the cache could
                    // not serve: a miss (and never stored — its result is
                    // a synthetic timeout, not the schedule's semantics).
                    w.note_cache(false, &root);
                    w.commit_root(quarantine_report(&reason));
                    w.ex.quarantined += 1;
                    root_pending = false;
                    continue;
                }
                if !sup.in_flight.contains_key(&root_sig) && !probed_miss.contains(&root_sig) {
                    if let Some(rep) = cache_lookup(opts, &root) {
                        if let Some(m) = &opts.metrics {
                            m.on_started(); // the cache hit's synthetic dispatch
                        }
                        w.note_cache(true, &root);
                        w.commit_root(rep);
                        root_pending = false;
                        continue;
                    }
                    probed_miss.insert(root_sig);
                }
                break;
            }
            if w.halted() || w.stack.is_empty() {
                break;
            }
            let top_sig = w.stack.last().expect("non-empty").decisions.signature();
            if let Some(r) = sup.ready.remove(&top_sig) {
                if let Some(m) = &opts.metrics {
                    if !r.from_cache && waited != Some(top_sig) {
                        m.on_speculation_hit();
                    }
                }
                waited = None;
                let fork = w.stack.pop().expect("non-empty");
                w.speculated = sup.speculated();
                let pending = if r.from_cache {
                    None
                } else {
                    cache_prepare(opts, &fork.decisions, &r.rep)
                };
                w.note_cache(r.from_cache, &fork.decisions);
                w.commit(&fork, r.rep);
                cache_store(opts, pending);
                continue;
            }
            if let Some(reason) = sup.quarantined.get(&top_sig).cloned() {
                waited = None;
                let fork = w.stack.pop().expect("non-empty");
                if let Some(m) = &opts.metrics {
                    m.on_started(); // the synthetic commit's dispatch
                }
                w.speculated = sup.speculated();
                w.note_cache(false, &fork.decisions);
                w.commit(&fork, quarantine_report(&reason));
                w.ex.quarantined += 1;
                continue;
            }
            if !sup.in_flight.contains_key(&top_sig) && !probed_miss.contains(&top_sig) {
                if let Some(rep) = cache_lookup(opts, &w.stack.last().expect("non-empty").decisions)
                {
                    waited = None;
                    if let Some(m) = &opts.metrics {
                        m.on_started(); // the cache hit's synthetic dispatch
                    }
                    let fork = w.stack.pop().expect("non-empty");
                    w.speculated = sup.speculated();
                    w.note_cache(true, &fork.decisions);
                    w.commit(&fork, rep);
                    continue;
                }
                probed_miss.insert(top_sig);
            }
            break;
        }

        if !root_pending && (w.halted() || w.stack.is_empty()) {
            break;
        }

        // Dispatch phase: the next fork to commit first (unconditionally),
        // then speculation over deeper frontier entries, bounded by idle
        // workers and the remaining interleaving budget — the same window
        // the thread pool uses.
        let now = Instant::now();
        if root_pending {
            if sup.dispatchable(root_sig, now) {
                sup.try_dispatch(root_sig, &DecisionSet::self_run(), now);
            }
            waited = Some(root_sig);
        } else {
            let top = w.stack.last().expect("non-empty");
            let top_sig = top.decisions.signature();
            if sup.dispatchable(top_sig, now) {
                let decisions = top.decisions.clone();
                sup.try_dispatch(top_sig, &decisions, now);
            }
            let budget_room = opts
                .max_interleavings
                .map_or(usize::MAX, |max| (max - w.ex.interleavings) as usize);
            for fork in w.stack.iter().rev().skip(1) {
                if sup.idle_slots() == 0 || sup.in_flight.len() + sup.ready.len() >= budget_room {
                    break;
                }
                let sig = fork.decisions.signature();
                if !sup.dispatchable(sig, now) {
                    continue;
                }
                // The supervisor owns the cache: a hit becomes a ready
                // result instead of a dispatch, so workers only ever see
                // genuinely-missed subtrees over the unchanged protocol.
                if !probed_miss.contains(&sig) {
                    if let Some(rep) = cache_lookup(opts, &fork.decisions) {
                        sup.ready.insert(
                            sig,
                            Ready {
                                rep,
                                from_cache: true,
                            },
                        );
                        if let Some(m) = &opts.metrics {
                            m.on_started(); // the cache hit's synthetic dispatch
                        }
                        continue;
                    }
                    probed_miss.insert(sig);
                }
                sup.try_dispatch(sig, &fork.decisions, now);
            }
            waited = Some(top_sig);
        }

        // Block for whatever happens next.
        let Ok(ev) = rx.recv() else { break };
        match ev {
            Event::Tick => {
                let now = Instant::now();
                if sup.drain_requested() {
                    w.ex.drained = true;
                    w.speculated = sup.speculated();
                    w.checkpoint();
                    if let Some(t) = &opts.trace {
                        t.emit(CampaignEvent::CampaignDrained {
                            frontier: w.stack.len(),
                        });
                    }
                    break;
                }
                sup.check_health(now);
                sup.respawn_due(now);
            }
            Event::Gone { slot, gen, reason } => {
                sup.on_gone(slot, gen, &reason, Instant::now());
            }
            Event::Msg { slot, gen, msg } => {
                if let Err(e) = sup.on_msg(slot, gen, msg) {
                    sup.shutdown_all();
                    return Err(e);
                }
            }
        }

        // Wedged forever is worse than failing loudly: with every slot
        // dead and undispatchable work remaining, no event can ever
        // unblock the walk.
        let stuck = sup.all_dead() && {
            if root_pending {
                !sup.ready.contains_key(&root_sig) && !sup.quarantined.contains_key(&root_sig)
            } else {
                w.stack.iter().any(|f| {
                    let sig = f.decisions.signature();
                    !sup.ready.contains_key(&sig) && !sup.quarantined.contains_key(&sig)
                })
            }
        };
        if stuck {
            sup.shutdown_all();
            return Err(io::Error::other(format!(
                "all {shards} shard workers failed permanently with work outstanding"
            )));
        }
    }

    // Speculation past the end (budget/stop/drain boundary) never commits.
    if let Some(m) = &opts.metrics {
        m.on_aborted((sup.in_flight.len() + sup.ready.len()) as u64);
    }
    sup.shutdown_all();
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        drop(w);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"c");
    }

    #[test]
    fn pipe_write_after_reader_drop_is_broken() {
        let (mut w, r) = pipe();
        drop(r);
        assert_eq!(w.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn pipe_read_blocks_until_data() {
        let (mut w, mut r) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            r.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(20));
        w.write_all(b"hello").unwrap();
        assert_eq!(&t.join().unwrap(), b"hello");
    }

    #[test]
    fn tick_interval_clamps() {
        let mut s = ShardOptions {
            heartbeat_timeout: Duration::from_millis(4),
            lease: Duration::from_secs(600),
            ..ShardOptions::default()
        };
        assert_eq!(tick_interval(&s), Duration::from_millis(2));
        s.heartbeat_timeout = Duration::from_secs(600);
        assert_eq!(tick_interval(&s), Duration::from_millis(200));
    }
}
