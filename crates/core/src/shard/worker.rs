//! The worker side of a sharded campaign: one replay per job, forever.
//!
//! A worker is deliberately dumb. It holds no frontier, no visited set, no
//! budget — the supervisor owns every piece of exploration state and the
//! worker only maps a [`DecisionSet`] to a [`SubtreeResult`] through the
//! exact same `execute_with_retry` path the in-process thread pool uses.
//! That is what keeps `--shards N` byte-identical to `--jobs 1`: the
//! numbers a worker ships back are the numbers the sequential walk would
//! have computed in place.
//!
//! Liveness is a dedicated beacon thread writing [`FromWorker::Heartbeat`]
//! frames on a fixed interval, *independent* of the replay loop, so the
//! supervisor can tell a long replay (beacons flowing, lease ticking) from
//! a dead process (silence). The frame writer is a mutex the beacon and
//! the result path share; frames are written whole under the lock, so the
//! two never interleave bytes on the wire.
//!
//! The [`WorkerFaultPlan`] hook makes the worker its own chaos monkey:
//! the supervisor arms a fault at spawn time and the worker fakes the
//! corresponding real-world failure (die mid-replay, go silent, wedge,
//! corrupt a frame, exit before acknowledging) at a deterministic job
//! index. Faults live here — in the victim — because that is where real
//! failures happen; the supervisor code under test runs unmodified.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dampi_mpi::fault::{WorkerFaultKind, WorkerFaultPlan};
use parking_lot::{Condvar, Mutex};

use crate::decisions::DecisionSet;
use crate::scheduler::{execute_with_retry, ExploreOptions, RunResult};

use super::protocol::{
    checksum, recv_msg, send_msg, write_frame_with_checksum, FromWorker, SubtreeResult, ToWorker,
    PROTOCOL_VERSION,
};

/// Everything a worker needs to know that is not the program itself.
pub struct WorkerConfig {
    /// Beacon period. Must be well under the supervisor's heartbeat
    /// timeout (the supervisor defaults to a 4x margin).
    pub heartbeat_interval: Duration,
    /// Digest of the verification config, echoed in `Hello` so a
    /// supervisor never merges results computed under different options.
    pub config_digest: u64,
    /// Armed chaos fault, if any (see [`WorkerFaultPlan`]).
    pub fault: Option<WorkerFaultPlan>,
    /// True for real worker processes: a `Kill` fault calls
    /// `std::process::abort`. False for in-process test workers, which
    /// simulate death by dropping their connection instead.
    pub hard_exit: bool,
    /// Cooperative cancellation for in-process workers: wedge loops poll
    /// this so a supervisor `kill` actually reclaims the thread. Real
    /// processes ignore it (SIGKILL does the reclaiming).
    pub cancel: Arc<AtomicBool>,
}

/// Beacon-thread control: a stop flag under a mutex plus a condvar so
/// shutdown interrupts the interval sleep immediately.
struct BeatCtl {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Serve jobs until the supervisor says `Shutdown` or closes the pipe.
///
/// Protocol: send `Hello`, start the beacon, then loop `recv job → replay
/// → send result`. Returns `Ok(())` on a clean shutdown *and* after a
/// simulated fault (the fault is the worker doing its job); returns `Err`
/// only when the command stream itself is broken.
pub fn run_worker<R, W, F>(
    mut reader: R,
    writer: W,
    cfg: &WorkerConfig,
    opts: &ExploreOptions,
    mut run: F,
) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
    F: FnMut(&DecisionSet) -> RunResult,
{
    let writer: Arc<Mutex<W>> = Arc::new(Mutex::new(writer));
    send_msg(
        &mut *writer.lock(),
        &FromWorker::Hello {
            protocol: PROTOCOL_VERSION,
            config_digest: cfg.config_digest,
            pid: std::process::id(),
        },
    )?;

    let beat = Arc::new(BeatCtl {
        stop: Mutex::new(false),
        cv: Condvar::new(),
    });
    let beacon = {
        let beat = Arc::clone(&beat);
        let writer = Arc::clone(&writer);
        let interval = cfg.heartbeat_interval;
        std::thread::Builder::new()
            .name("dampi-worker-beat".into())
            .spawn(move || {
                let mut seq: u64 = 0;
                let mut stopped = beat.stop.lock();
                loop {
                    if *stopped {
                        return;
                    }
                    beat.cv.wait_for(&mut stopped, interval);
                    if *stopped {
                        return;
                    }
                    seq += 1;
                    if send_msg(&mut *writer.lock(), &FromWorker::Heartbeat { seq }).is_err() {
                        // Supervisor hung up; the job loop will see it too.
                        return;
                    }
                }
            })?
    };
    let stop_beats = || {
        *beat.stop.lock() = true;
        beat.cv.notify_all();
    };

    let out = job_loop(&mut reader, &writer, cfg, opts, &mut run, &stop_beats);
    stop_beats();
    let _ = beacon.join();
    out
}

/// What the armed fault decided about the job that just arrived.
enum FaultVerdict {
    /// Fault consumed the job; exit the worker.
    Exit,
    /// Fault consumed the job but the worker keeps serving (it is now a
    /// marked process the supervisor will kill).
    Continue,
}

#[allow(clippy::too_many_lines)]
fn job_loop<R, W, F>(
    reader: &mut R,
    writer: &Arc<Mutex<W>>,
    cfg: &WorkerConfig,
    opts: &ExploreOptions,
    run: &mut F,
    stop_beats: &dyn Fn(),
) -> io::Result<()>
where
    R: Read,
    W: Write + Send,
    F: FnMut(&DecisionSet) -> RunResult,
{
    let mut job_idx: u64 = 0;
    loop {
        let msg = match recv_msg::<_, ToWorker>(reader)? {
            Some(m) => m,
            None => return Ok(()), // supervisor closed the pipe
        };
        let (sig, mut decisions) = match msg {
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Job { sig, decisions } => (sig, decisions),
        };
        decisions.rebuild_index();
        let armed = cfg.fault.filter(|f| f.nth_job == job_idx);
        job_idx += 1;
        if let Some(plan) = armed {
            match apply_fault(
                plan.kind, writer, cfg, opts, run, &decisions, sig, stop_beats,
            ) {
                FaultVerdict::Exit => return Ok(()),
                FaultVerdict::Continue => continue,
            }
        }
        let rep = execute_with_retry(run, &decisions, opts);
        let result = SubtreeResult {
            outcome: rep.res.outcome,
            epochs: rep.res.epochs,
            stats: rep.res.stats,
            attempt_makespans: rep.attempt_makespans,
            divergences: rep.divergences,
            retries: rep.retries,
        };
        send_msg(
            &mut *writer.lock(),
            &FromWorker::Result {
                sig,
                result: Box::new(result),
            },
        )?;
    }
}

/// Simulate the armed failure. Each arm mimics the observable shape of a
/// distinct real-world fault, which is what lets the supervisor tests pin
/// each detector (heartbeat vs lease vs checksum) to the failure class it
/// exists for.
#[allow(clippy::too_many_arguments)]
fn apply_fault<W, F>(
    kind: WorkerFaultKind,
    writer: &Arc<Mutex<W>>,
    cfg: &WorkerConfig,
    opts: &ExploreOptions,
    run: &mut F,
    decisions: &DecisionSet,
    sig: u64,
    stop_beats: &dyn Fn(),
) -> FaultVerdict
where
    W: Write + Send,
    F: FnMut(&DecisionSet) -> RunResult,
{
    match kind {
        WorkerFaultKind::Kill => {
            // SIGKILL mid-replay: no goodbye of any kind.
            stop_beats();
            if cfg.hard_exit {
                std::process::abort();
            }
            FaultVerdict::Exit
        }
        WorkerFaultKind::ExitBeforeAck => {
            // The replay ran to completion — side effects and all — but
            // the result never made it out. Re-dispatch must be
            // idempotent for this to be survivable.
            let _ = execute_with_retry(run, decisions, opts);
            stop_beats();
            FaultVerdict::Exit
        }
        WorkerFaultKind::StallHeartbeats => {
            // Silent wedge: the process lives but nothing flows. Only the
            // heartbeat detector can see this one.
            stop_beats();
            wedge(&cfg.cancel);
            FaultVerdict::Exit
        }
        WorkerFaultKind::WedgeReplay => {
            // Chatty wedge: beacons keep flowing, the job never finishes.
            // Only the lease detector can see this one.
            wedge(&cfg.cancel);
            FaultVerdict::Exit
        }
        WorkerFaultKind::CorruptResult => {
            // Ship a result frame whose checksum word lies about the
            // payload. The supervisor must reject the frame, not trust
            // partial bytes.
            let rep = execute_with_retry(run, decisions, opts);
            let result = SubtreeResult {
                outcome: rep.res.outcome,
                epochs: rep.res.epochs,
                stats: rep.res.stats,
                attempt_makespans: rep.attempt_makespans,
                divergences: rep.divergences,
                retries: rep.retries,
            };
            let msg = FromWorker::Result {
                sig,
                result: Box::new(result),
            };
            if let Ok(json) = serde_json::to_string(&msg) {
                let bytes = json.as_bytes();
                let _ = write_frame_with_checksum(
                    &mut *writer.lock(),
                    bytes,
                    checksum(bytes) ^ 0xdead_beef,
                );
            }
            // Keep serving: the supervisor will kill this incarnation as
            // soon as the bad frame desyncs the stream.
            FaultVerdict::Continue
        }
    }
}

/// Park until cancelled (in-process workers) or killed (real processes).
fn wedge(cancel: &AtomicBool) {
    while !cancel.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(5));
    }
}
