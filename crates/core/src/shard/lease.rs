//! Failure detection: heartbeat timeouts and wall-clock leases.
//!
//! The supervisor runs *two* independent detectors per worker slot because
//! process failure has two observably different shapes:
//!
//! * **Heartbeat timeout** — the worker went silent. Catches dead
//!   processes the OS never reports cleanly (SIGKILL with the pipe held
//!   open by a grandchild), wedged runtimes, swap-death. Any frame from
//!   the worker refreshes it.
//! * **Lease expiry** — the worker is chatty but the *job* isn't
//!   finishing. A replay wedged in a loop still heartbeats forever; the
//!   lease is the supervisor's contract that a dispatched subtree
//!   completes within a wall-clock budget or gets re-dispatched elsewhere.
//!
//! Both verdicts funnel into the same recovery (kill, re-dispatch,
//! bounded restart), so this module is pure bookkeeping: feed it
//! observations with explicit timestamps, ask for a verdict. No clocks
//! are read here, which is what makes the state machine unit-testable at
//! microsecond scale.

use std::time::{Duration, Instant};

/// Detector thresholds.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Silence longer than this declares the worker lost.
    pub heartbeat_timeout: Duration,
    /// A dispatched job older than this declares the worker wedged.
    pub lease: Duration,
}

/// What the detectors conclude about one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within both thresholds.
    Healthy,
    /// No frame for longer than the heartbeat timeout.
    HeartbeatLost,
    /// Still heartbeating, but the in-flight job outlived its lease.
    LeaseExpired,
}

/// Per-slot liveness state.
#[derive(Debug, Clone, Copy)]
pub struct SlotHealth {
    last_seen: Instant,
    lease_deadline: Option<Instant>,
}

impl SlotHealth {
    /// Fresh slot: the spawn instant counts as the first sign of life, so
    /// a worker that is dead on arrival trips the heartbeat timeout one
    /// window after spawn instead of instantly.
    #[must_use]
    pub fn new(now: Instant) -> Self {
        Self {
            last_seen: now,
            lease_deadline: None,
        }
    }

    /// Any frame arrived from the worker (hello, heartbeat, result).
    pub fn on_seen(&mut self, now: Instant) {
        self.last_seen = now;
    }

    /// A job was dispatched: start its lease.
    pub fn on_dispatch(&mut self, now: Instant, lease: Duration) {
        self.lease_deadline = Some(now + lease);
    }

    /// The in-flight job completed (or was taken away): stop the lease.
    pub fn on_idle(&mut self) {
        self.lease_deadline = None;
    }

    /// Evaluate both detectors at `now`. Heartbeat loss dominates: a
    /// silent worker is reported as lost even if its lease also expired.
    #[must_use]
    pub fn verdict(&self, now: Instant, cfg: &LeaseConfig) -> Verdict {
        if now.saturating_duration_since(self.last_seen) > cfg.heartbeat_timeout {
            return Verdict::HeartbeatLost;
        }
        match self.lease_deadline {
            Some(deadline) if now > deadline => Verdict::LeaseExpired,
            _ => Verdict::Healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            heartbeat_timeout: Duration::from_millis(100),
            lease: Duration::from_millis(500),
        }
    }

    #[test]
    fn fresh_slot_is_healthy() {
        let t0 = Instant::now();
        let s = SlotHealth::new(t0);
        assert_eq!(s.verdict(t0, &cfg()), Verdict::Healthy);
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(99), &cfg()),
            Verdict::Healthy
        );
    }

    #[test]
    fn silence_trips_heartbeat_timeout() {
        let t0 = Instant::now();
        let mut s = SlotHealth::new(t0);
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(101), &cfg()),
            Verdict::HeartbeatLost,
            "dead-on-arrival worker is detected one window after spawn"
        );
        s.on_seen(t0 + Duration::from_millis(90));
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(150), &cfg()),
            Verdict::Healthy,
            "heartbeat refreshes the window"
        );
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(191), &cfg()),
            Verdict::HeartbeatLost
        );
    }

    #[test]
    fn wedged_job_trips_lease_despite_heartbeats() {
        let t0 = Instant::now();
        let mut s = SlotHealth::new(t0);
        s.on_dispatch(t0, cfg().lease);
        // Keep heartbeating right up to the check.
        s.on_seen(t0 + Duration::from_millis(550));
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(551), &cfg()),
            Verdict::LeaseExpired,
            "chatty but wedged"
        );
        // Completing the job clears the lease.
        s.on_idle();
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(560), &cfg()),
            Verdict::Healthy
        );
    }

    #[test]
    fn heartbeat_loss_dominates_lease_expiry() {
        let t0 = Instant::now();
        let mut s = SlotHealth::new(t0);
        s.on_dispatch(t0, cfg().lease);
        assert_eq!(
            s.verdict(t0 + Duration::from_secs(2), &cfg()),
            Verdict::HeartbeatLost
        );
    }

    #[test]
    fn lease_restarts_per_dispatch() {
        let t0 = Instant::now();
        let mut s = SlotHealth::new(t0);
        s.on_dispatch(t0, cfg().lease);
        s.on_idle();
        s.on_seen(t0 + Duration::from_millis(600));
        s.on_dispatch(t0 + Duration::from_millis(600), cfg().lease);
        s.on_seen(t0 + Duration::from_millis(950));
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(1000), &cfg()),
            Verdict::Healthy,
            "second dispatch gets a fresh lease"
        );
        s.on_seen(t0 + Duration::from_millis(1100));
        assert_eq!(
            s.verdict(t0 + Duration::from_millis(1101), &cfg()),
            Verdict::LeaseExpired
        );
    }
}
