//! Process-sharded campaign execution with a fault-tolerant supervisor.
//!
//! The paper's verifier is *distributed*: exploration work is farmed out
//! to many MPI processes and merged centrally. This module is that layer
//! for the reproduction — a supervisor shards frontier subtrees across `N`
//! worker processes and merges their results through the scheduler's
//! deterministic in-order commit path, so `--shards N` produces
//! **byte-identical** output to `--jobs 1`: same interleaving counts, same
//! error sets, same report JSON, same checkpoint journal bytes.
//!
//! The pieces:
//!
//! * [`protocol`] — the length-prefixed, checksummed frame codec and the
//!   supervisor ↔ worker message set.
//! * [`worker`] — the dumb replay servant: one schedule in, one
//!   [`protocol::SubtreeResult`] out, heartbeats on the side, and the
//!   [`dampi_mpi::fault::WorkerFaultPlan`] chaos hooks.
//! * [`lease`] — the two failure detectors (beacon silence, wall-clock
//!   lease) as a pure, clock-free state machine.
//! * [`supervisor`] — the event loop that owns the walk: dispatch,
//!   speculation, loss recovery with bounded redispatch, quarantine of
//!   poison subtrees, bounded worker restarts, and graceful drain.
//!
//! Workers never hold exploration state. That asymmetry is the entire
//! robustness story: any worker can die at any moment and the supervisor
//! loses only the wall-clock time of the replays that were in flight.

pub mod lease;
pub mod protocol;
pub mod supervisor;
pub mod worker;

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use dampi_mpi::fault::WorkerFaultPlan;

use crate::config::RetryBackoff;

pub use lease::{LeaseConfig, SlotHealth, Verdict};
pub use protocol::{FromWorker, SubtreeResult, ToWorker, PROTOCOL_VERSION};
pub use supervisor::{
    explore_sharded, InProcessLauncher, ProcessWorkerLauncher, SpawnedWorker, WorkerHandle,
    WorkerLauncher,
};
pub use worker::{run_worker, WorkerConfig};

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker slots (processes). `0` and `1` both mean one worker — the
    /// supervisor still runs, so fault tolerance applies even at width 1.
    pub shards: usize,
    /// Declare a worker lost after this much silence (no frame of any
    /// kind). Must comfortably exceed the worker heartbeat interval.
    pub heartbeat_timeout: Duration,
    /// Declare a worker wedged when a dispatched subtree outlives this
    /// wall-clock budget despite flowing heartbeats.
    pub lease: Duration,
    /// Dispatch attempts per subtree before it is quarantined and
    /// committed as an honest timeout record.
    pub max_attempts: u32,
    /// Worker respawns per slot before the slot is abandoned.
    pub max_restarts_per_slot: u32,
    /// Backoff schedule between a slot's respawn attempts (seeded by the
    /// slot index).
    pub respawn_backoff: RetryBackoff,
    /// Backoff schedule before a lost subtree is dispatched again (seeded
    /// by the subtree signature).
    pub redispatch_backoff: RetryBackoff,
    /// Digest of the verification config; every worker `Hello` must echo
    /// it or the campaign aborts rather than merge diverging results.
    pub config_digest: u64,
    /// Chaos plan armed into one worker (tests and `--worker-fault`).
    pub fault: Option<WorkerFaultPlan>,
    /// Which slot receives [`ShardOptions::fault`] (its generation 0
    /// incarnation only, unless the plan is persistent).
    pub fault_slot: usize,
    /// Graceful-drain flag: when it turns true (the CLI wires SIGTERM to
    /// it), the supervisor checkpoints the frontier and returns early with
    /// [`crate::scheduler::Exploration::drained`] set.
    pub drain: Option<Arc<AtomicBool>>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self {
            shards: 2,
            heartbeat_timeout: Duration::from_secs(2),
            lease: Duration::from_secs(30),
            max_attempts: 3,
            max_restarts_per_slot: 3,
            respawn_backoff: RetryBackoff {
                base: Duration::from_millis(25),
                cap: Duration::from_secs(1),
                jitter: 0.5,
            },
            redispatch_backoff: RetryBackoff::default(),
            config_digest: 0,
            fault: None,
            fault_slot: 0,
            drain: None,
        }
    }
}
