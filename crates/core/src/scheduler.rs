//! The schedule generator: a depth-first walk over Epoch Decisions.
//!
//! After each run, every epoch's potential alternate matches become branch
//! points. The generator forces one unexplored alternate per replay,
//! deepest-first (the paper §II-B: "successively force alternate matches at
//! the last step; then at the penultimate step; and so on"). Bounded mixing
//! and loop-iteration-abstraction regions prune the branch set; a visited
//! set over decision-prefix signatures prevents re-exploration.
//!
//! The generator is tool-agnostic: it only needs a `run` function mapping a
//! [`DecisionSet`] to a [`RunResult`]. Both the DAMPI verifier
//! (decentralized piggyback analysis) and the ISP baseline (centralized
//! scheduler) drive their replays through this one implementation.
//!
//! # Parallel exploration
//!
//! Every fork on the frontier is an independent simulation, so replays can
//! run concurrently ([`explore_parallel`], `--jobs` on the CLI). The
//! design is *speculative execution with in-order commit*: a pool of
//! worker threads replays frontier forks ahead of time, while the
//! coordinator consumes results strictly in the order the sequential
//! depth-first walk would have produced them. Because commit order — not
//! completion order — drives every state change (interleaving numbering,
//! error dedup, visited-set growth, fork pushes, virtual-time summation,
//! budget and stop-on-first-error checks, checkpoints), a `jobs = N`
//! exploration is **bit-identical** to `jobs = 1` for every option
//! combination, including floating-point totals. Speculation past a
//! budget/stop boundary is discarded, never committed, so at most
//! `jobs − 1` replays of wasted work bound the overshoot.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dampi_mpi::program::RunOutcome;
use dampi_mpi::MpiError;

use crate::bounds::MixingBound;
use crate::cache::{PendingStore, ReplayCache};
use crate::config::RetryBackoff;
use crate::decisions::{DecisionSet, EpochDecision};
use crate::epoch::{EpochRecord, ToolRunStats};
use crate::journal::{ExplorationJournal, JournalFork, JOURNAL_VERSION};
use crate::metrics::{CampaignEvent, CampaignMetrics, CampaignTrace, ObservedCommit};
use crate::prune::PrunePlan;
use crate::report::{FoundError, ReplayTimeoutRecord};

/// What one execution produced, as the scheduler sees it.
#[derive(Clone)]
pub struct RunResult {
    /// Runtime outcome (errors, leaks, virtual times).
    pub outcome: RunOutcome,
    /// Every rank's epoch log (unsorted).
    pub epochs: Vec<EpochRecord>,
    /// Aggregate tool statistics for the run.
    pub stats: ToolRunStats,
}

/// Exploration policy knobs (subset of `DampiConfig` the walk needs).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Bounded-mixing window.
    pub bound: MixingBound,
    /// Honor loop-iteration-abstraction regions.
    pub honor_regions: bool,
    /// Replay budget.
    pub max_interleavings: Option<u64>,
    /// Stop at the first program bug.
    pub stop_on_first_error: bool,
    /// Branch on alternates discovered for already-guided epochs.
    pub branch_on_guided: bool,
    /// Re-run a diverging guided replay up to this many extra times before
    /// accepting the divergent result (a replay on a loaded machine can
    /// miss its decisions transiently; the retry is the cheap fix).
    pub divergence_retries: u32,
    /// Backoff schedule between divergence retries: exponential with
    /// deterministic jitter and a cap (see [`RetryBackoff`]).
    /// `RetryBackoff::ZERO` retries immediately (the unit-test setting).
    pub retry_backoff: RetryBackoff,
    /// When set, journal the full frontier to this path after every run
    /// (atomic write-and-rename) so a killed campaign can resume.
    pub checkpoint: Option<PathBuf>,
    /// Worker threads replaying frontier forks concurrently
    /// ([`explore_parallel`]); `0` and `1` both mean sequential. The merge
    /// is deterministic regardless of completion order, so any value
    /// produces the same exploration.
    pub jobs: usize,
    /// Campaign metrics sink (see [`crate::metrics`]). Semantic counters
    /// are updated only on the commit path, so they are identical for any
    /// `jobs` value; `None` costs the walk nothing.
    pub metrics: Option<Arc<CampaignMetrics>>,
    /// Span-style campaign trace (JSONL events, wall-clock ordered).
    pub trace: Option<Arc<CampaignTrace>>,
    /// Static pre-analysis prune plan (see [`crate::prune`]). Applied on
    /// the deterministic commit path only, so any `jobs` value still
    /// produces the same (pruned) exploration. `None` disables pruning.
    pub prune: Option<Arc<PrunePlan>>,
    /// Persistent content-addressed replay-result store (see
    /// [`crate::cache`]). Consulted on the deterministic commit path: a
    /// hit installs the stored result without spawning the replay, a miss
    /// populates the store after its commit. `None` disables caching.
    pub cache: Option<Arc<ReplayCache>>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            bound: MixingBound::Unbounded,
            honor_regions: true,
            max_interleavings: Some(100_000),
            stop_on_first_error: false,
            branch_on_guided: false,
            divergence_retries: 2,
            retry_backoff: RetryBackoff::default(),
            checkpoint: None,
            jobs: 1,
            metrics: None,
            trace: None,
            prune: None,
            cache: None,
        }
    }
}

/// Aggregated result of a full exploration.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Number of interleavings executed (including the initial run).
    pub interleavings: u64,
    /// Distinct program bugs found, with their reproduction decisions.
    pub errors: Vec<FoundError>,
    /// Tool stats of the initial `SELF_RUN`.
    pub first_run_stats: ToolRunStats,
    /// Simulated makespan of the initial run.
    pub first_run_makespan: f64,
    /// Leak census of the initial run.
    pub first_run_leaks: dampi_mpi::LeakReport,
    /// Sum of simulated makespans across every run — "time to explore".
    pub total_virtual_time: f64,
    /// Guided-lookup misses across all replays.
    pub divergences: u64,
    /// Replays re-executed after a divergence (bounded retry-with-backoff;
    /// retries do not count as interleavings, so a resumed campaign's
    /// interleaving numbering matches an uninterrupted one).
    pub retries: u64,
    /// Replays the watchdog budget killed. The scheduler records them and
    /// moves on — their subtrees are *not* expanded (the epoch log of a
    /// killed run is truncated), which is exactly the partial coverage the
    /// record reports.
    pub timeouts: Vec<ReplayTimeoutRecord>,
    /// True when the interleaving budget stopped the walk early.
    pub budget_exhausted: bool,
    /// Union of every match discovered per epoch `(rank, clock)` across
    /// all runs — matched sources and alternates combined. This is the
    /// verifier's *coverage*: the set of non-deterministic outcomes it
    /// knows about (used by the §II-F completeness comparisons).
    pub discovered: BTreeMap<(usize, u64), BTreeSet<usize>>,
    /// Frontier forks dropped by the static prune plan (infeasible or
    /// symmetry-redundant alternates). Zero when no plan is installed.
    pub alternates_pruned: u64,
    /// Epoch instances committed whose wildcard the static analysis proved
    /// deterministic (singleton feasible sender set).
    pub wildcards_deterministic: u64,
    /// Frontier forks dropped because the fixed-point positional
    /// refinement — not the single-pass envelope count — refuted the
    /// alternate. Disjoint from [`Exploration::alternates_pruned`].
    pub refined_alternates_pruned: u64,
    /// Epoch instances committed whose wildcard only the refinement fixed
    /// point proved deterministic. Disjoint from
    /// [`Exploration::wildcards_deterministic`].
    pub refined_wildcards_deterministic: u64,
    /// Frontier forks dropped because the protocol's local type forbids
    /// the alternate's sender at that receive state (plan v3). Disjoint
    /// from the envelope and refinement counters.
    pub protocol_alternates_pruned: u64,
    /// Epoch instances committed whose wildcard the protocol proved
    /// deterministic (local type admits exactly one sender role).
    /// Disjoint from the other deterministic counters.
    pub protocol_wildcards_deterministic: u64,
    /// Subtrees the shard supervisor quarantined after exhausting their
    /// dispatch attempts (see [`crate::shard`]). Each one is also recorded
    /// in [`Exploration::timeouts`] — this counter is the quick summary.
    /// Always zero for in-process exploration.
    pub quarantined: u64,
    /// True when a sharded campaign was drained early (SIGTERM) and
    /// checkpointed instead of running to completion. The frontier in the
    /// journal is the resumable remainder.
    pub drained: bool,
    /// Commits satisfied from the persistent replay cache. Always zero
    /// when no cache is attached; counted on the commit path, so the
    /// tally is identical at any `--jobs`/`--shards` setting.
    pub cache_hits: u64,
    /// Commits that executed (or quarantined) because the attached cache
    /// had no valid entry. With a cache attached,
    /// `cache_hits + cache_misses` equals the committed count exactly.
    pub cache_misses: u64,
}

/// Per-commit prune accounting returned by [`push_forks`]: how many forks
/// the plan dropped and how many committed epochs it proved deterministic,
/// split by which analysis pass supplied the fact.
#[derive(Debug, Clone, Copy, Default)]
struct ForkStats {
    pruned: u64,
    deterministic: u64,
    refined_pruned: u64,
    refined_deterministic: u64,
    protocol_pruned: u64,
    protocol_deterministic: u64,
}

pub(crate) struct Fork {
    pub(crate) decisions: DecisionSet,
    /// Deepest canonical epoch index this fork's subtree may still branch
    /// at (`None` = unbounded). Bounded mixing anchors the window at the
    /// epoch where the subtree's *original* alternate was forced and the
    /// window is inherited, not re-anchored, by nested forks — so each
    /// initial-run epoch opens one overlapping window of height `k` and
    /// the search cost is a sum of `O(P^k)` subtrees (paper §III-B2).
    pub(crate) window_end: Option<usize>,
}

/// Run the depth-first exploration from scratch.
pub fn explore<F>(run: F, opts: &ExploreOptions) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    explore_inner(run, opts, None)
}

/// Continue an interrupted exploration from a journal (see
/// [`crate::journal`]). The journal's frontier is replayed in its exact
/// stack order, so the completed campaign matches an uninterrupted one.
pub fn explore_resumed<F>(run: F, opts: &ExploreOptions, journal: ExplorationJournal) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    explore_inner(run, opts, Some(journal))
}

/// Run the exploration with `opts.jobs` concurrent replay workers (see the
/// module docs on speculative execution with in-order commit). With
/// `jobs <= 1` this is exactly [`explore`]; with more, the result is still
/// bit-identical — only wall-clock time changes.
pub fn explore_parallel<F>(run: F, opts: &ExploreOptions) -> Exploration
where
    F: Fn(&DecisionSet) -> RunResult + Sync,
{
    explore_parallel_inner(&run, opts, None)
}

/// [`explore_parallel`] continuing from a checkpoint journal. A campaign
/// journaled under `jobs = N` resumes to the same interleaving count and
/// error set under any other worker count, including sequentially.
pub fn explore_parallel_resumed<F>(
    run: F,
    opts: &ExploreOptions,
    journal: ExplorationJournal,
) -> Exploration
where
    F: Fn(&DecisionSet) -> RunResult + Sync,
{
    explore_parallel_inner(&run, opts, Some(journal))
}

/// Mutable exploration state shared by the sequential and parallel
/// drivers. Every state transition goes through [`Walk::commit`], which is
/// what makes the parallel merge deterministic: the driver chooses *when*
/// to execute a replay, the walk alone decides *in what order* results
/// become part of the exploration.
pub(crate) struct Walk<'a> {
    opts: &'a ExploreOptions,
    pub(crate) ex: Exploration,
    visited: HashSet<u64>,
    pub(crate) stack: Vec<Fork>,
    seen_errors: HashSet<(usize, String)>,
    /// Signatures dispatched to workers but not yet committed, snapshotted
    /// into the journal (advisory: a resume simply re-runs them since
    /// their forks are still on the frontier).
    pub(crate) speculated: Vec<u64>,
    /// The cache's stale count when this walk started: a `ReplayCache` can
    /// outlive one campaign (it is shared by `Arc`), so the metrics report
    /// the per-campaign delta, not the store's lifetime total.
    cache_stale_base: u64,
}

impl<'a> Walk<'a> {
    pub(crate) fn new(opts: &'a ExploreOptions) -> Self {
        Self {
            opts,
            ex: Exploration::default(),
            visited: HashSet::new(),
            stack: Vec::new(),
            seen_errors: HashSet::new(),
            speculated: Vec::new(),
            cache_stale_base: opts.cache.as_ref().map_or(0, |c| c.stale_count()),
        }
    }

    /// Should the walk stop before committing another replay? Checked
    /// *before* the pop so a checkpointed frontier still holds every
    /// unexplored fork — resuming with a larger budget loses nothing.
    pub(crate) fn halted(&mut self) -> bool {
        if let Some(max) = self.opts.max_interleavings {
            if self.ex.interleavings >= max && !self.stack.is_empty() {
                self.ex.budget_exhausted = true;
                return true;
            }
        }
        self.opts.stop_on_first_error && !self.ex.errors.is_empty()
    }

    /// Commit the initial `SELF_RUN`.
    pub(crate) fn commit_root(&mut self, rep: AttemptReport) {
        let attempts = rep.retries + 1;
        self.absorb_cost(&rep);
        let first = rep.res;
        self.ex.interleavings = 1;
        self.ex.first_run_stats = first.stats;
        self.ex.first_run_makespan = first.outcome.makespan;
        // Leak checking happens at MPI_Finalize; a run that aborted or
        // deadlocked never reached it, so its leftover resources are
        // teardown debris, not application leaks.
        if first.outcome.succeeded() {
            self.ex.first_run_leaks = first.outcome.leaks.clone();
        }
        absorb_errors(
            &mut self.ex,
            &mut self.seen_errors,
            &first.outcome,
            1,
            &DecisionSet::self_run(),
        );
        absorb_discoveries(&mut self.ex, &first.epochs);
        let mut pruned = ForkStats::default();
        let timed_out = if let Some(detail) = timeout_of(&first.outcome) {
            self.ex.timeouts.push(ReplayTimeoutRecord {
                interleaving: 1,
                detail,
                decisions: DecisionSet::self_run(),
            });
            true
        } else {
            pruned = push_forks(
                &mut self.stack,
                &mut self.visited,
                &first.epochs,
                Root,
                self.opts,
            );
            false
        };
        self.absorb_fork_stats(pruned);
        self.observe(ObservedCommit {
            interleaving: 1,
            depth: 0,
            forks_pushed: self.stack.len(),
            new_errors: self.ex.errors.len(),
            makespan: self.ex.first_run_makespan,
            attempts,
            stats: self.ex.first_run_stats,
            timed_out,
            alternates_pruned: pruned.pruned,
            wildcards_deterministic: pruned.deterministic,
            refined_alternates_pruned: pruned.refined_pruned,
            refined_wildcards_deterministic: pruned.refined_deterministic,
            protocol_alternates_pruned: pruned.protocol_pruned,
            protocol_wildcards_deterministic: pruned.protocol_deterministic,
        });
        self.checkpoint();
    }

    /// Commit one replay result in walk order.
    pub(crate) fn commit(&mut self, fork: &Fork, rep: AttemptReport) {
        let attempts = rep.retries + 1;
        self.absorb_cost(&rep);
        let res = rep.res;
        self.ex.interleavings += 1;
        let interleaving = self.ex.interleavings;
        let errors_before = self.ex.errors.len();
        let stack_before = self.stack.len();
        let makespan = res.outcome.makespan;
        let stats = res.stats;
        absorb_errors(
            &mut self.ex,
            &mut self.seen_errors,
            &res.outcome,
            interleaving,
            &fork.decisions,
        );
        absorb_discoveries(&mut self.ex, &res.epochs);
        let mut pruned = ForkStats::default();
        let timed_out = if let Some(detail) = timeout_of(&res.outcome) {
            // A killed replay's epoch log is truncated; forking from it
            // would schedule prefixes the run never confirmed. Record the
            // partial coverage honestly and keep walking the rest of the
            // frontier.
            self.ex.timeouts.push(ReplayTimeoutRecord {
                interleaving,
                detail,
                decisions: fork.decisions.clone(),
            });
            true
        } else {
            pruned = push_forks(
                &mut self.stack,
                &mut self.visited,
                &res.epochs,
                Child {
                    fork_index: fork_index_of(fork),
                    window_end: fork.window_end,
                },
                self.opts,
            );
            false
        };
        self.absorb_fork_stats(pruned);
        self.observe(ObservedCommit {
            interleaving,
            depth: fork.decisions.decisions.len(),
            forks_pushed: self.stack.len() - stack_before,
            new_errors: self.ex.errors.len() - errors_before,
            makespan,
            attempts,
            stats,
            timed_out,
            alternates_pruned: pruned.pruned,
            wildcards_deterministic: pruned.deterministic,
            refined_alternates_pruned: pruned.refined_pruned,
            refined_wildcards_deterministic: pruned.refined_deterministic,
            protocol_alternates_pruned: pruned.protocol_pruned,
            protocol_wildcards_deterministic: pruned.protocol_deterministic,
        });
        self.checkpoint();
    }

    fn absorb_fork_stats(&mut self, fs: ForkStats) {
        self.ex.alternates_pruned += fs.pruned;
        self.ex.wildcards_deterministic += fs.deterministic;
        self.ex.refined_alternates_pruned += fs.refined_pruned;
        self.ex.refined_wildcards_deterministic += fs.refined_deterministic;
        self.ex.protocol_alternates_pruned += fs.protocol_pruned;
        self.ex.protocol_wildcards_deterministic += fs.protocol_deterministic;
    }

    /// Account one commit's cache disposition. Called immediately before
    /// the commit, on the commit path only, so every commit is exactly
    /// one hit or one miss and `hits + misses` equals the committed count
    /// at any `--jobs`/`--shards` setting. No-op without a cache.
    pub(crate) fn note_cache(&mut self, hit: bool, decisions: &DecisionSet) {
        if self.opts.cache.is_none() {
            return;
        }
        if hit {
            self.ex.cache_hits += 1;
            if let Some(m) = &self.opts.metrics {
                m.on_cache_hit();
            }
            if let Some(t) = &self.opts.trace {
                t.emit(CampaignEvent::CacheHit {
                    signature: decisions.signature(),
                });
            }
        } else {
            self.ex.cache_misses += 1;
            if let Some(m) = &self.opts.metrics {
                m.on_cache_miss();
            }
        }
    }

    /// Report one committed replay to the observability sinks. No-ops (two
    /// `Option` checks) when no sink is installed.
    fn observe(&self, oc: ObservedCommit) {
        if let Some(m) = &self.opts.metrics {
            m.on_commit(&oc, self.stack.len());
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::ReplayCommit {
                interleaving: oc.interleaving,
                depth: oc.depth,
                forks_pushed: oc.forks_pushed,
                frontier: self.stack.len(),
                new_errors: oc.new_errors,
                makespan_s: oc.makespan,
                attempts: oc.attempts,
                timed_out: oc.timed_out,
            });
        }
    }

    /// Announce the campaign to the sinks.
    pub(crate) fn begin(&self, jobs: usize, resumed: bool) {
        if let Some(m) = &self.opts.metrics {
            m.on_pool(jobs);
            if let Some(c) = &self.opts.cache {
                m.on_cache_enabled(c.readonly());
            }
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::CampaignStart { jobs, resumed });
        }
    }

    /// Close out the walk: final sink updates, then surrender the
    /// exploration.
    pub(crate) fn finish(self) -> Exploration {
        if let Some(m) = &self.opts.metrics {
            if let Some(c) = &self.opts.cache {
                m.on_cache_stale(c.stale_count() - self.cache_stale_base);
            }
            m.on_finish(&self.ex);
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::CampaignEnd {
                interleavings: self.ex.interleavings,
                errors: self.ex.errors.len(),
                budget_exhausted: self.ex.budget_exhausted,
            });
            t.flush();
        }
        self.ex
    }

    /// Account a replay's execution cost. Makespans are added one attempt
    /// at a time, in attempt order, so parallel totals are bitwise equal
    /// to sequential ones.
    fn absorb_cost(&mut self, rep: &AttemptReport) {
        for m in &rep.attempt_makespans {
            self.ex.total_virtual_time += m;
        }
        self.ex.divergences += rep.divergences;
        self.ex.retries += rep.retries;
    }

    pub(crate) fn checkpoint(&self) {
        let Some(path) = &self.opts.checkpoint else {
            return;
        };
        let mut sigs: Vec<u64> = self.visited.iter().copied().collect();
        sigs.sort_unstable();
        let journal = ExplorationJournal {
            version: JOURNAL_VERSION,
            interleavings: self.ex.interleavings,
            retries: self.ex.retries,
            divergences: self.ex.divergences,
            total_virtual_time: self.ex.total_virtual_time,
            first_run_stats: self.ex.first_run_stats,
            first_run_makespan: self.ex.first_run_makespan,
            first_run_leaks: self.ex.first_run_leaks.clone(),
            errors: self.ex.errors.clone(),
            timeouts: self.ex.timeouts.clone(),
            discovered: ExplorationJournal::flatten_discovered(&self.ex.discovered),
            visited: sigs,
            in_flight: self.speculated.clone(),
            quarantined: self.ex.quarantined,
            frontier: self
                .stack
                .iter()
                .map(|f| JournalFork {
                    decisions: f.decisions.clone(),
                    window_end: f.window_end,
                })
                .collect(),
        };
        let t0 = Instant::now();
        if let Err(e) = journal.save(path) {
            // A failed checkpoint must not kill a healthy campaign; the
            // previous journal (if any) is still intact thanks to the
            // atomic rename.
            eprintln!("dampi: checkpoint to {} failed: {e}", path.display());
        }
        let latency = t0.elapsed();
        if let Some(m) = &self.opts.metrics {
            m.on_checkpoint(latency);
        }
        if let Some(t) = &self.opts.trace {
            t.emit(CampaignEvent::Checkpoint {
                latency_us: u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
                frontier: self.stack.len(),
            });
        }
    }

    pub(crate) fn restore(&mut self, journal: ExplorationJournal) {
        self.ex.interleavings = journal.interleavings;
        self.ex.retries = journal.retries;
        self.ex.divergences = journal.divergences;
        self.ex.total_virtual_time = journal.total_virtual_time;
        self.ex.first_run_stats = journal.first_run_stats;
        self.ex.first_run_makespan = journal.first_run_makespan;
        self.ex.discovered = journal.discovered_map();
        self.ex.first_run_leaks = journal.first_run_leaks;
        for e in &journal.errors {
            self.seen_errors.insert((e.rank, e.error.to_string()));
        }
        self.ex.errors = journal.errors;
        self.ex.timeouts = journal.timeouts;
        self.ex.quarantined = journal.quarantined;
        self.visited.extend(journal.visited);
        self.stack
            .extend(journal.frontier.into_iter().map(|f| Fork {
                decisions: f.decisions,
                window_end: f.window_end,
            }));
    }
}

fn explore_inner<F>(
    mut run: F,
    opts: &ExploreOptions,
    resume: Option<ExplorationJournal>,
) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    let mut w = Walk::new(opts);
    w.begin(1, resume.is_some());
    match resume {
        Some(journal) => w.restore(journal),
        None => {
            let root = DecisionSet::self_run();
            if let Some(rep) = cache_lookup(opts, &root) {
                if let Some(m) = &opts.metrics {
                    m.on_started();
                }
                w.note_cache(true, &root);
                w.commit_root(rep);
            } else {
                let rep = execute_observed(&mut run, &root, opts);
                let pending = cache_prepare(opts, &root, &rep);
                w.note_cache(false, &root);
                w.commit_root(rep);
                cache_store(opts, pending);
            }
        }
    }
    loop {
        if w.halted() {
            break;
        }
        let Some(fork) = w.stack.pop() else { break };
        if let Some(rep) = cache_lookup(opts, &fork.decisions) {
            if let Some(m) = &opts.metrics {
                m.on_started();
            }
            w.note_cache(true, &fork.decisions);
            w.commit(&fork, rep);
        } else {
            let rep = execute_observed(&mut run, &fork.decisions, opts);
            let pending = cache_prepare(opts, &fork.decisions, &rep);
            w.note_cache(false, &fork.decisions);
            w.commit(&fork, rep);
            cache_store(opts, pending);
        }
    }
    w.finish()
}

/// One schedule dispatched to a replay worker.
struct Job {
    sig: u64,
    decisions: DecisionSet,
}

fn explore_parallel_inner<F>(
    run: &F,
    opts: &ExploreOptions,
    resume: Option<ExplorationJournal>,
) -> Exploration
where
    F: Fn(&DecisionSet) -> RunResult + Sync,
{
    let jobs = opts.jobs.max(1);
    if jobs == 1 {
        return explore_inner(|ds| run(ds), opts, resume);
    }

    let mut w = Walk::new(opts);
    w.begin(jobs, resume.is_some());
    match resume {
        Some(journal) => w.restore(journal),
        None => {
            // The initial SELF_RUN has nothing to overlap with; run it
            // inline before the pool starts.
            let root = DecisionSet::self_run();
            if let Some(rep) = cache_lookup(opts, &root) {
                if let Some(m) = &opts.metrics {
                    m.on_started();
                }
                w.note_cache(true, &root);
                w.commit_root(rep);
            } else {
                let rep = execute_observed(&mut |ds| run(ds), &root, opts);
                let pending = cache_prepare(opts, &root, &rep);
                w.note_cache(false, &root);
                w.commit_root(rep);
                cache_store(opts, pending);
            }
        }
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(u64, AttemptReport)>();
    // Drain-and-cancel: once the coordinator stops (first error under
    // `stop_on_first_error`, exhausted budget), workers skip execution of
    // anything still queued and exit on channel disconnect.
    let cancel = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        for wid in 0..jobs {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let cancel = &cancel;
            scope
                .builder()
                .name(format!("dampi-explore-{wid}"))
                .spawn(move |_| loop {
                    let idle0 = opts.metrics.as_ref().map(|_| Instant::now());
                    let Ok(job) = job_rx.recv() else { break };
                    if let (Some(m), Some(t0)) = (&opts.metrics, idle0) {
                        m.on_worker_idle(t0.elapsed());
                    }
                    if cancel.load(Ordering::Relaxed) {
                        continue; // drain without running
                    }
                    if let Some(t) = &opts.trace {
                        t.emit(CampaignEvent::ReplayStart { signature: job.sig });
                    }
                    let busy0 = opts.metrics.as_ref().map(|_| Instant::now());
                    let rep = execute_with_retry(&mut |ds| run(ds), &job.decisions, opts);
                    if let (Some(m), Some(t0)) = (&opts.metrics, busy0) {
                        m.on_executed(t0.elapsed());
                    }
                    if res_tx.send((job.sig, rep)).is_err() {
                        break;
                    }
                })
                .expect("spawn exploration worker");
        }
        drop(job_rx);
        drop(res_tx);

        // Results completed ahead of their commit turn, by signature. A
        // signature identifies its fork uniquely: the visited set admits
        // each decision prefix onto the stack exactly once.
        let mut ready: HashMap<u64, Ready> = HashMap::new();
        let mut in_flight: HashSet<u64> = HashSet::new();
        // The top signature the coordinator last had to block for — when a
        // commit's result was already cached by the time its fork surfaced,
        // speculation hid the whole replay latency (a "hit").
        let mut waited: Option<u64> = None;

        loop {
            if w.halted() || w.stack.is_empty() {
                break;
            }
            // Progress guarantee: the next fork to commit is always cached
            // or in flight before the coordinator blocks.
            let top_sig = w.stack.last().expect("non-empty").decisions.signature();
            if !ready.contains_key(&top_sig) && !in_flight.contains(&top_sig) {
                let fork = w.stack.last().expect("non-empty");
                if let Some(rep) = cache_lookup(opts, &fork.decisions) {
                    ready.insert(
                        top_sig,
                        Ready {
                            rep,
                            from_cache: true,
                        },
                    );
                    if let Some(m) = &opts.metrics {
                        m.on_started();
                    }
                } else if job_tx
                    .send(Job {
                        sig: top_sig,
                        decisions: fork.decisions.clone(),
                    })
                    .is_ok()
                {
                    in_flight.insert(top_sig);
                    if let Some(m) = &opts.metrics {
                        m.on_started();
                    }
                }
            }
            // Speculate deeper frontier entries onto idle workers. Every
            // stack entry is eventually popped by the depth-first walk, so
            // speculation is only wasted past a budget/stop boundary —
            // which the dispatch window below caps at the remaining
            // interleaving budget.
            let budget_room = opts
                .max_interleavings
                .map_or(usize::MAX, |max| (max - w.ex.interleavings) as usize);
            for fork in w.stack.iter().rev().skip(1) {
                if in_flight.len() >= jobs || in_flight.len() + ready.len() >= budget_room {
                    break;
                }
                let sig = fork.decisions.signature();
                if in_flight.contains(&sig) || ready.contains_key(&sig) {
                    continue;
                }
                // A persistent-cache hit occupies a ready slot, not a
                // worker — the disk read happens here, at most once per
                // fork, and the hit itself is counted later at commit.
                if let Some(rep) = cache_lookup(opts, &fork.decisions) {
                    ready.insert(
                        sig,
                        Ready {
                            rep,
                            from_cache: true,
                        },
                    );
                    if let Some(m) = &opts.metrics {
                        m.on_started();
                    }
                    continue;
                }
                if job_tx
                    .send(Job {
                        sig,
                        decisions: fork.decisions.clone(),
                    })
                    .is_err()
                {
                    break;
                }
                in_flight.insert(sig);
                if let Some(m) = &opts.metrics {
                    m.on_started();
                }
            }
            // Commit in walk order when the top's result is ready;
            // otherwise block for the next completion, whoever it is.
            if let Some(r) = ready.remove(&top_sig) {
                if let Some(m) = &opts.metrics {
                    if !r.from_cache && waited != Some(top_sig) {
                        m.on_speculation_hit();
                    }
                }
                waited = None;
                let fork = w.stack.pop().expect("non-empty");
                w.speculated = in_flight.iter().copied().collect();
                w.speculated.sort_unstable();
                let pending = if r.from_cache {
                    None
                } else {
                    cache_prepare(opts, &fork.decisions, &r.rep)
                };
                w.note_cache(r.from_cache, &fork.decisions);
                w.commit(&fork, r.rep);
                cache_store(opts, pending);
            } else {
                waited = Some(top_sig);
                match res_rx.recv() {
                    Ok((sig, rep)) => {
                        in_flight.remove(&sig);
                        ready.insert(
                            sig,
                            Ready {
                                rep,
                                from_cache: false,
                            },
                        );
                    }
                    Err(_) => break, // every worker exited
                }
            }
        }
        cancel.store(true, Ordering::Relaxed);
        // Every dispatched schedule is, at this point, exactly one of:
        // committed, completed-but-uncommitted (ready), or still in
        // flight. The latter two were started and will never commit.
        if let Some(m) = &opts.metrics {
            m.on_aborted((in_flight.len() + ready.len()) as u64);
        }
        drop(job_tx);
        // In-flight replays finish (bounded by the per-replay watchdog);
        // their results land in a channel nobody reads and are dropped
        // with it when the scope joins the workers.
    })
    .expect("exploration worker scope");
    w.finish()
}

/// One schedule's execution including divergence retries: the final
/// attempt's result (the one the walk uses) plus the cost of every
/// attempt, in order.
pub(crate) struct AttemptReport {
    pub(crate) res: RunResult,
    /// Simulated makespan of each attempt, first to last.
    pub(crate) attempt_makespans: Vec<f64>,
    /// Guided-lookup misses summed over all attempts.
    pub(crate) divergences: u64,
    /// Number of re-executions after a divergence.
    pub(crate) retries: u64,
}

/// A replay result ready to commit, tagged with where it came from: the
/// persistent replay cache (a hit) or an execution (a miss whenever a
/// cache is attached). Drivers hold these between completion and the
/// deterministic in-order commit.
pub(crate) struct Ready {
    pub(crate) rep: AttemptReport,
    pub(crate) from_cache: bool,
}

/// Consult the persistent replay cache, if one is attached.
pub(crate) fn cache_lookup(
    opts: &ExploreOptions,
    decisions: &DecisionSet,
) -> Option<AttemptReport> {
    opts.cache.as_ref()?.lookup(decisions)
}

/// Serialize a missed result for storage. Runs *before* the commit
/// consumes the result; the bytes are written after the commit succeeds.
pub(crate) fn cache_prepare(
    opts: &ExploreOptions,
    decisions: &DecisionSet,
    rep: &AttemptReport,
) -> Option<PendingStore> {
    opts.cache.as_ref()?.prepare(decisions, rep)
}

/// Write a prepared entry back to the store after its commit.
pub(crate) fn cache_store(opts: &ExploreOptions, pending: Option<PendingStore>) {
    let (Some(c), Some(p)) = (opts.cache.as_ref(), pending) else {
        return;
    };
    if c.commit_store(&p) {
        if let Some(m) = &opts.metrics {
            m.on_cache_store();
        }
    }
}

/// [`execute_with_retry`] plus observability: the dispatch count, the
/// wall-clock replay span, and the trace `ReplayStart` event. Used by the
/// sequential walk and the inline root run; pool workers are instrumented
/// in place (their dispatch is counted by the coordinator).
fn execute_observed<F>(run: &mut F, decisions: &DecisionSet, opts: &ExploreOptions) -> AttemptReport
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    if let Some(m) = &opts.metrics {
        m.on_started();
    }
    if let Some(t) = &opts.trace {
        t.emit(CampaignEvent::ReplayStart {
            signature: decisions.signature(),
        });
    }
    let t0 = opts.metrics.as_ref().map(|_| Instant::now());
    let rep = execute_with_retry(run, decisions, opts);
    if let (Some(m), Some(t0)) = (&opts.metrics, t0) {
        m.on_executed(t0.elapsed());
    }
    rep
}

/// Execute one schedule, retrying (with exponential backoff) when a guided
/// replay diverges from its decisions.
pub(crate) fn execute_with_retry<F>(
    run: &mut F,
    decisions: &DecisionSet,
    opts: &ExploreOptions,
) -> AttemptReport
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    let mut res = run(decisions);
    let mut rep = AttemptReport {
        attempt_makespans: vec![res.outcome.makespan],
        divergences: res.stats.divergences,
        retries: 0,
        res,
    };
    let mut attempt: u32 = 0;
    while !decisions.is_self_run()
        && rep.res.stats.divergences > 0
        && attempt < opts.divergence_retries
    {
        // The schedule's signature seeds the jitter, so a replay's retry
        // timing is a pure function of its identity — sharded campaigns
        // stay reproducible.
        let backoff = opts.retry_backoff.delay(attempt, decisions.signature());
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        attempt += 1;
        rep.retries += 1;
        res = run(decisions);
        rep.attempt_makespans.push(res.outcome.makespan);
        rep.divergences += res.stats.divergences;
        rep.res = res;
    }
    rep
}

/// The watchdog detail when this run was killed over budget.
pub(crate) fn timeout_of(outcome: &RunOutcome) -> Option<String> {
    match &outcome.fatal {
        Some(MpiError::ReplayTimeout { detail }) => Some(detail.clone()),
        _ => None,
    }
}

fn fork_index_of(fork: &Fork) -> usize {
    // The branch point is the last decision in the set; its canonical
    // index is not needed beyond window math, which uses window_end, so
    // this helper only disambiguates Child provenance for region checks.
    fork.decisions.decisions.len().saturating_sub(1)
}

/// Where a run came from, for window bookkeeping.
enum Provenance {
    /// The initial `SELF_RUN`: every epoch anchors its own window.
    Root,
    /// A guided replay: new epochs may branch only inside the inherited
    /// window.
    Child {
        #[allow(dead_code)]
        fork_index: usize,
        window_end: Option<usize>,
    },
}
use Provenance::{Child, Root};

fn absorb_errors(
    ex: &mut Exploration,
    seen: &mut HashSet<(usize, String)>,
    outcome: &RunOutcome,
    interleaving: u64,
    decisions: &DecisionSet,
) {
    for bug in outcome.program_bugs() {
        let key = (bug.rank, bug.error.to_string());
        if seen.insert(key) {
            ex.errors.push(FoundError {
                interleaving,
                rank: bug.rank,
                error: bug.error,
                decisions: decisions.clone(),
            });
        }
    }
}

fn absorb_discoveries(ex: &mut Exploration, epochs: &[EpochRecord]) {
    for e in epochs {
        let entry = ex.discovered.entry((e.rank, e.clock)).or_default();
        if let Some(m) = e.matched_src {
            entry.insert(m);
        }
        entry.extend(e.alternates.iter().copied());
    }
}

/// Sort this run's epochs canonically and push a fork for every unexplored
/// alternate inside the mixing window. Returns how many alternates the
/// static prune plan dropped and how many committed epoch instances the
/// plan proved deterministic, split per analysis pass — all fold into the
/// semantic metrics on the commit path, so they are identical for any
/// `jobs` value.
fn push_forks(
    stack: &mut Vec<Fork>,
    visited: &mut HashSet<u64>,
    epochs: &[EpochRecord],
    provenance: Provenance,
    opts: &ExploreOptions,
) -> ForkStats {
    let plan = opts.prune.as_deref();
    let at_root = matches!(provenance, Root);
    let mut stats = ForkStats::default();
    let mut eps: Vec<&EpochRecord> = epochs.iter().collect();
    eps.sort_by_key(|e| (e.clock, e.rank));
    for (i, e) in eps.iter().enumerate() {
        if let Some(p) = plan {
            if !e.guided {
                if p.deterministic.contains(&(e.rank, e.clock)) {
                    stats.deterministic += 1;
                } else if p.refined_deterministic.contains(&(e.rank, e.clock)) {
                    stats.refined_deterministic += 1;
                } else if p.protocol_deterministic.contains(&(e.rank, e.clock)) {
                    stats.protocol_deterministic += 1;
                }
            }
        }
        if e.guided && !opts.branch_on_guided {
            continue;
        }
        if opts.honor_regions && e.in_region {
            continue;
        }
        // Bounded-mixing window: in the initial run every epoch anchors a
        // fresh window [i, i+k]; in a replay, new epochs may branch only
        // within the inherited window of the subtree's anchor.
        let window_end = match (&provenance, opts.bound) {
            (_, MixingBound::Unbounded) => None,
            (Root, MixingBound::K(k)) => Some(i.saturating_add(k as usize)),
            (Child { window_end, .. }, MixingBound::K(_)) => {
                match window_end {
                    Some(end) if i <= *end => Some(*end),
                    Some(_) => continue, // outside the window: SELF_RUN only
                    None => None,
                }
            }
        };
        // Ranks a symmetry swap must leave untouched: every rank the forced
        // prefix names (as branching epoch or forced source) plus the
        // receiving rank itself. The prefix is every epoch ordered before
        // the branch point *and* every guided epoch regardless of order —
        // a guided epoch with the same clock as the branch point sorts
        // after it yet its source is still forced by the decision set.
        // Swapping two sources outside this set maps the forced prefix —
        // and hence the whole subtree — onto an isomorphic image.
        let fixed: BTreeSet<usize> = plan
            .filter(|p| !p.orbits.is_empty())
            .map(|_| {
                let mut f: BTreeSet<usize> = eps
                    .iter()
                    .enumerate()
                    .filter(|&(j, p)| j < i || (j > i && p.guided))
                    .flat_map(|(_, p)| [p.rank, p.matched_src.unwrap_or(p.rank)])
                    .collect();
                f.insert(e.rank);
                f
            })
            .unwrap_or_default();
        // Sources whose subtree is already scheduled from this epoch: the
        // observed match (covered by not branching) plus kept alternates.
        let mut covered: Vec<usize> = e.matched_src.into_iter().collect();
        for alt in e.unexplored_alternates() {
            if let Some(p) = plan {
                if at_root && p.infeasible.contains(&(e.rank, e.clock, alt)) {
                    stats.pruned += 1;
                    continue;
                }
                if at_root && p.refined_infeasible.contains(&(e.rank, e.clock, alt)) {
                    stats.refined_pruned += 1;
                    continue;
                }
                if at_root && p.protocol_infeasible.contains(&(e.rank, e.clock, alt)) {
                    stats.protocol_pruned += 1;
                    continue;
                }
                let symmetric = !fixed.contains(&alt)
                    && covered
                        .iter()
                        .any(|&b| !fixed.contains(&b) && p.interchangeable(alt, b));
                if symmetric {
                    stats.pruned += 1;
                    continue;
                }
            }
            covered.push(alt);
            // The forced prefix: every earlier epoch keeps the match it had
            // in this run; the branch point takes the alternate.
            let mut decisions: Vec<EpochDecision> = eps[..i]
                .iter()
                .filter_map(|p| {
                    p.matched_src.map(|m| EpochDecision {
                        rank: p.rank,
                        clock: p.clock,
                        src: m,
                    })
                })
                .collect();
            decisions.push(EpochDecision {
                rank: e.rank,
                clock: e.clock,
                src: alt,
            });
            let ds = DecisionSet::guided(e.clock, decisions);
            if visited.insert(ds.signature()) {
                stack.push(Fork {
                    decisions: ds,
                    window_end,
                });
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::NdKind;
    use dampi_clocks::ClockStamp;
    use dampi_mpi::{Comm, LeakReport, MpiError};
    use std::time::Duration;

    /// A synthetic "program": `n_epochs` wildcard receives on rank 0, each
    /// with sources `0..n_srcs`. The run function honors forced decisions
    /// and reports all alternates, mimicking what DampiLayer produces.
    /// `Fn + Sync` so the same harness drives both [`explore`] and
    /// [`explore_parallel`].
    fn synthetic_run(n_epochs: u64, n_srcs: usize) -> impl Fn(&DecisionSet) -> RunResult + Sync {
        move |ds: &DecisionSet| {
            let epochs: Vec<EpochRecord> = (0..n_epochs)
                .map(|clock| {
                    let forced = ds.lookup(0, clock);
                    let matched = forced.unwrap_or(0);
                    let guided = forced.is_some();
                    EpochRecord {
                        rank: 0,
                        clock,
                        stamp: ClockStamp::Lamport(clock),
                        comm: Comm::WORLD,
                        tag_spec: 0,
                        kind: NdKind::Recv,
                        in_region: false,
                        guided,
                        matched_src: Some(matched),
                        alternates: (0..n_srcs).filter(|s| *s != matched).collect(),
                    }
                })
                .collect();
            RunResult {
                outcome: RunOutcome {
                    rank_errors: vec![None],
                    leaks: LeakReport::default(),
                    fatal: None,
                    per_rank_vt: vec![1.0],
                    wall_elapsed: Duration::ZERO,
                    makespan: 1.0,
                },
                epochs,
                stats: ToolRunStats {
                    wildcards: n_epochs,
                    ..Default::default()
                },
            }
        }
    }

    fn opts(bound: MixingBound) -> ExploreOptions {
        ExploreOptions {
            bound,
            max_interleavings: Some(1_000_000),
            retry_backoff: RetryBackoff::ZERO,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn single_epoch_explores_each_alternate_once() {
        // 1 epoch, 3 sources: initial run + 2 alternates = 3 interleavings.
        let ex = explore(synthetic_run(1, 3), &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 3);
        assert_eq!(ex.discovered[&(0, 0)].len(), 3);
    }

    #[test]
    fn unbounded_covers_full_product() {
        // 3 epochs × 3 sources each: 27 total interleavings (3^3).
        let ex = explore(synthetic_run(3, 3), &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 27);
    }

    #[test]
    fn k0_is_linear() {
        // k=0: initial run + one replay per (epoch, alternate) pair:
        // 1 + N*(P-1) = 1 + 4*2 = 9.
        let ex = explore(synthetic_run(4, 3), &opts(MixingBound::K(0)));
        assert_eq!(ex.interleavings, 9);
    }

    #[test]
    fn k_grows_between_linear_and_exponential() {
        let full = explore(synthetic_run(4, 3), &opts(MixingBound::Unbounded)).interleavings;
        let k0 = explore(synthetic_run(4, 3), &opts(MixingBound::K(0))).interleavings;
        let k1 = explore(synthetic_run(4, 3), &opts(MixingBound::K(1))).interleavings;
        let k2 = explore(synthetic_run(4, 3), &opts(MixingBound::K(2))).interleavings;
        assert!(k0 < k1, "k0={k0} k1={k1}");
        assert!(k1 < k2, "k1={k1} k2={k2}");
        assert!(k2 < full, "k2={k2} full={full}");
        assert_eq!(full, 81);
    }

    #[test]
    fn budget_stops_exploration() {
        let ex = explore(
            synthetic_run(10, 4),
            &ExploreOptions {
                max_interleavings: Some(50),
                ..opts(MixingBound::Unbounded)
            },
        );
        assert_eq!(ex.interleavings, 50);
        assert!(ex.budget_exhausted);
    }

    #[test]
    fn regions_suppress_branching() {
        let base = synthetic_run(2, 3);
        let run = move |ds: &DecisionSet| {
            let mut r = base(ds);
            for e in &mut r.epochs {
                e.in_region = true;
            }
            r
        };
        let ex = explore(run, &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 1, "regions make everything SELF_RUN");
    }

    #[test]
    fn errors_deduplicate_and_keep_repro() {
        let inner = synthetic_run(1, 2);
        let run = move |ds: &DecisionSet| {
            let mut r = inner(ds);
            // The bug manifests only when source 1 is forced.
            if ds.lookup(0, 0) == Some(1) {
                r.outcome.rank_errors[0] = Some(MpiError::UserAssert {
                    message: "x==33".into(),
                });
            }
            r
        };
        let ex = explore(run, &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 2);
        assert_eq!(ex.errors.len(), 1);
        let err = &ex.errors[0];
        assert_eq!(err.interleaving, 2);
        assert_eq!(err.decisions.lookup(0, 0), Some(1));
    }

    #[test]
    fn stop_on_first_error_halts() {
        let inner = synthetic_run(2, 3);
        let run = move |ds: &DecisionSet| {
            let mut r = inner(ds);
            if !ds.is_self_run() {
                r.outcome.rank_errors[0] = Some(MpiError::UserAssert {
                    message: "any replay fails".into(),
                });
            }
            r
        };
        let ex = explore(
            run,
            &ExploreOptions {
                stop_on_first_error: true,
                ..opts(MixingBound::Unbounded)
            },
        );
        assert_eq!(ex.interleavings, 2);
        assert_eq!(ex.errors.len(), 1);
    }

    #[test]
    fn total_virtual_time_accumulates() {
        let ex = explore(synthetic_run(1, 3), &opts(MixingBound::Unbounded));
        assert!((ex.total_virtual_time - 3.0).abs() < 1e-12);
    }

    /// Field-by-field identity of two explorations, including bitwise
    /// float totals — the contract `explore_parallel` promises.
    fn assert_equiv(seq: &Exploration, par: &Exploration) {
        assert_eq!(par.interleavings, seq.interleavings);
        assert_eq!(par.discovered, seq.discovered);
        assert_eq!(par.alternates_pruned, seq.alternates_pruned);
        assert_eq!(par.wildcards_deterministic, seq.wildcards_deterministic);
        assert_eq!(par.refined_alternates_pruned, seq.refined_alternates_pruned);
        assert_eq!(
            par.refined_wildcards_deterministic,
            seq.refined_wildcards_deterministic
        );
        assert_eq!(
            par.protocol_alternates_pruned,
            seq.protocol_alternates_pruned
        );
        assert_eq!(
            par.protocol_wildcards_deterministic,
            seq.protocol_wildcards_deterministic
        );
        assert_eq!(par.budget_exhausted, seq.budget_exhausted);
        assert_eq!(par.divergences, seq.divergences);
        assert_eq!(par.retries, seq.retries);
        assert_eq!(
            par.total_virtual_time.to_bits(),
            seq.total_virtual_time.to_bits(),
            "virtual-time totals must be bitwise equal"
        );
        assert_eq!(par.errors.len(), seq.errors.len());
        for (p, s) in par.errors.iter().zip(&seq.errors) {
            assert_eq!(p.interleaving, s.interleaving);
            assert_eq!(p.rank, s.rank);
            assert_eq!(p.error.to_string(), s.error.to_string());
            assert_eq!(p.decisions.signature(), s.decisions.signature());
        }
        assert_eq!(par.timeouts.len(), seq.timeouts.len());
        for (p, s) in par.timeouts.iter().zip(&seq.timeouts) {
            assert_eq!(p.interleaving, s.interleaving);
            assert_eq!(p.decisions.signature(), s.decisions.signature());
        }
    }

    fn with_jobs(base: ExploreOptions, jobs: usize) -> ExploreOptions {
        ExploreOptions { jobs, ..base }
    }

    #[test]
    fn parallel_matches_sequential_unbounded() {
        let seq = explore(synthetic_run(3, 3), &opts(MixingBound::Unbounded));
        for jobs in [2, 4, 8] {
            let par = explore_parallel(
                synthetic_run(3, 3),
                &with_jobs(opts(MixingBound::Unbounded), jobs),
            );
            assert_equiv(&seq, &par);
        }
        assert_eq!(seq.interleavings, 27);
    }

    #[test]
    fn parallel_matches_sequential_bounded_mixing() {
        for k in 0..3u32 {
            let seq = explore(synthetic_run(4, 3), &opts(MixingBound::K(k)));
            let par = explore_parallel(synthetic_run(4, 3), &with_jobs(opts(MixingBound::K(k)), 4));
            assert_equiv(&seq, &par);
        }
    }

    #[test]
    fn parallel_respects_budget_exactly() {
        let budgeted = ExploreOptions {
            max_interleavings: Some(50),
            ..opts(MixingBound::Unbounded)
        };
        let seq = explore(synthetic_run(10, 4), &budgeted);
        let par = explore_parallel(synthetic_run(10, 4), &with_jobs(budgeted, 4));
        assert_equiv(&seq, &par);
        assert_eq!(par.interleavings, 50);
        assert!(par.budget_exhausted);
    }

    #[test]
    fn parallel_matches_sequential_with_errors_and_stop() {
        let make_run = || {
            let inner = synthetic_run(2, 3);
            move |ds: &DecisionSet| {
                let mut r = inner(ds);
                // Bug on one specific leaf schedule: both epochs forced
                // to source 2. Workers may execute it speculatively out of
                // order; the committed interleaving number must not care.
                if ds.lookup(0, 0) == Some(2) && ds.lookup(0, 1) == Some(2) {
                    r.outcome.rank_errors[0] = Some(MpiError::UserAssert {
                        message: "x==33".into(),
                    });
                }
                r
            }
        };
        for stop in [false, true] {
            let o = ExploreOptions {
                stop_on_first_error: stop,
                ..opts(MixingBound::Unbounded)
            };
            let seq = explore(make_run(), &o);
            let par = explore_parallel(make_run(), &with_jobs(o, 4));
            assert_equiv(&seq, &par);
            assert_eq!(par.errors.len(), 1, "stop={stop}");
        }
    }

    #[test]
    fn parallel_with_zero_or_one_jobs_is_sequential_path() {
        for jobs in [0, 1] {
            let par = explore_parallel(
                synthetic_run(3, 3),
                &with_jobs(opts(MixingBound::Unbounded), jobs),
            );
            assert_eq!(par.interleavings, 27);
        }
    }

    fn with_plan(base: ExploreOptions, plan: PrunePlan) -> ExploreOptions {
        ExploreOptions {
            prune: Some(Arc::new(plan)),
            ..base
        }
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let bare = explore(synthetic_run(3, 3), &opts(MixingBound::Unbounded));
        let planned = explore(
            synthetic_run(3, 3),
            &with_plan(opts(MixingBound::Unbounded), PrunePlan::default()),
        );
        assert_equiv(&bare, &planned);
        assert_eq!(planned.alternates_pruned, 0);
    }

    #[test]
    fn infeasible_alternates_dropped_at_root_only() {
        // 2 epochs x sources {0,1}: unpruned tree is 4 interleavings. Mark
        // (rank 0, clock 1, src 1) infeasible: the root fork at clock 1 is
        // dropped, but the replay of {e0 -> 1} still pushes its own clock-1
        // fork (child provenance — its epoch log is not the analyzed trace).
        let plan = PrunePlan {
            infeasible: BTreeSet::from([(0, 1, 1)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(2, 2),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(ex.interleavings, 3);
        assert_eq!(ex.alternates_pruned, 1);
    }

    #[test]
    fn symmetric_alternates_collapse_to_one_representative() {
        // 1 epoch, sources {0,1,2}, observed match 0. With sources 1 and 2
        // interchangeable, branching to 2 is the mirror image of branching
        // to 1: only one representative replay runs.
        let plan = PrunePlan {
            orbits: vec![BTreeSet::from([1, 2])],
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(1, 3),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(ex.interleavings, 2);
        assert_eq!(ex.alternates_pruned, 1);
    }

    #[test]
    fn symmetry_respects_prefix_fixed_ranks() {
        // 2 epochs, sources {0,1,2}, orbit {1,2}. Forks at clock 1 carry
        // the forced prefix {e0 -> 0}; source 0 is fixed but 1 and 2 are
        // not, so the clock-1 branch to 2 is pruned wherever a branch to 1
        // is already covered — including inside replay subtrees.
        let plan = PrunePlan {
            orbits: vec![BTreeSet::from([1, 2])],
            ..PrunePlan::default()
        };
        let bare = explore(synthetic_run(2, 3), &opts(MixingBound::Unbounded));
        let pruned = explore(
            synthetic_run(2, 3),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(bare.interleavings, 9);
        assert!(pruned.interleavings < bare.interleavings);
        assert!(pruned.alternates_pruned > 0);
        // Coverage up to symmetry: the pruned walk still found no errors,
        // and every epoch it committed matches the unpruned campaign.
        assert!(pruned.errors.is_empty() && bare.errors.is_empty());
    }

    #[test]
    fn deterministic_wildcards_counted_not_branched() {
        // The plan marks clock 0 deterministic; the synthetic run still
        // reports alternates for it, but the counter tracks instances on
        // the commit path without altering exploration.
        let plan = PrunePlan {
            deterministic: BTreeSet::from([(0, 0)]),
            ..PrunePlan::default()
        };
        let bare = explore(synthetic_run(1, 2), &opts(MixingBound::Unbounded));
        let planned = explore(
            synthetic_run(1, 2),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(planned.interleavings, bare.interleavings);
        // Root commit counts it once; the guided replay's epoch is skipped.
        assert_eq!(planned.wildcards_deterministic, 1);
    }

    #[test]
    fn refined_infeasible_dropped_at_root_only() {
        // Mirror of `infeasible_alternates_dropped_at_root_only` through
        // the fixed-point channel: same pruning behavior, but the drop is
        // accounted in the refined counter, disjoint from the single-pass
        // one.
        let plan = PrunePlan {
            refined_infeasible: BTreeSet::from([(0, 1, 1)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(2, 2),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(ex.interleavings, 3);
        assert_eq!(ex.alternates_pruned, 0);
        assert_eq!(ex.refined_alternates_pruned, 1);
    }

    #[test]
    fn refined_deterministic_counted_disjointly() {
        // An epoch in `refined_deterministic` but not `deterministic` only
        // bumps the refined counter; when both passes claim it, the
        // single-pass counter wins (the sets the analyzer emits are
        // disjoint, but the scheduler must not double-count regardless).
        let refined_only = PrunePlan {
            refined_deterministic: BTreeSet::from([(0, 0)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(1, 2),
            &with_plan(opts(MixingBound::Unbounded), refined_only),
        );
        assert_eq!(ex.wildcards_deterministic, 0);
        assert_eq!(ex.refined_wildcards_deterministic, 1);

        let both = PrunePlan {
            deterministic: BTreeSet::from([(0, 0)]),
            refined_deterministic: BTreeSet::from([(0, 0)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(1, 2),
            &with_plan(opts(MixingBound::Unbounded), both),
        );
        assert_eq!(ex.wildcards_deterministic, 1);
        assert_eq!(ex.refined_wildcards_deterministic, 0);
    }

    #[test]
    fn protocol_infeasible_dropped_at_root_only() {
        // Mirror of the envelope/refinement infeasibility tests through
        // the session-type channel: same root-only drop, accounted in the
        // protocol counter, disjoint from both older ones.
        let plan = PrunePlan {
            protocol_infeasible: BTreeSet::from([(0, 1, 1)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(2, 2),
            &with_plan(opts(MixingBound::Unbounded), plan),
        );
        assert_eq!(ex.interleavings, 3);
        assert_eq!(ex.alternates_pruned, 0);
        assert_eq!(ex.refined_alternates_pruned, 0);
        assert_eq!(ex.protocol_alternates_pruned, 1);
    }

    #[test]
    fn protocol_deterministic_counted_disjointly() {
        // The protocol counter only fires when neither older pass already
        // claimed the epoch — the envelope pass wins, then refinement,
        // then the protocol.
        let protocol_only = PrunePlan {
            protocol_deterministic: BTreeSet::from([(0, 0)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(1, 2),
            &with_plan(opts(MixingBound::Unbounded), protocol_only),
        );
        assert_eq!(ex.wildcards_deterministic, 0);
        assert_eq!(ex.refined_wildcards_deterministic, 0);
        assert_eq!(ex.protocol_wildcards_deterministic, 1);

        let both = PrunePlan {
            refined_deterministic: BTreeSet::from([(0, 0)]),
            protocol_deterministic: BTreeSet::from([(0, 0)]),
            ..PrunePlan::default()
        };
        let ex = explore(
            synthetic_run(1, 2),
            &with_plan(opts(MixingBound::Unbounded), both),
        );
        assert_eq!(ex.refined_wildcards_deterministic, 1);
        assert_eq!(ex.protocol_wildcards_deterministic, 0);
    }

    #[test]
    fn pruned_exploration_is_jobs_invariant() {
        let plan = PrunePlan {
            infeasible: BTreeSet::from([(0, 2, 1)]),
            refined_infeasible: BTreeSet::from([(0, 2, 2)]),
            refined_deterministic: BTreeSet::from([(0, 0)]),
            protocol_infeasible: BTreeSet::from([(0, 2, 3)]),
            protocol_deterministic: BTreeSet::from([(0, 1)]),
            orbits: vec![BTreeSet::from([1, 2, 3])],
            ..PrunePlan::default()
        };
        let seq = explore(
            synthetic_run(3, 4),
            &with_plan(opts(MixingBound::Unbounded), plan.clone()),
        );
        for jobs in [2, 4, 8] {
            let par = explore_parallel(
                synthetic_run(3, 4),
                &with_jobs(with_plan(opts(MixingBound::Unbounded), plan.clone()), jobs),
            );
            assert_equiv(&seq, &par);
        }
        assert!(seq.alternates_pruned > 0);
        assert!(seq.refined_alternates_pruned > 0);
        assert!(seq.protocol_alternates_pruned > 0);
        assert_eq!(seq.refined_wildcards_deterministic, 1);
        // Epoch (0,1) runs non-guided twice: at the root and in the one
        // epoch-0 replay (a fork's forced prefix guides every *earlier*
        // epoch, so (0,0) above only ever counts once).
        assert_eq!(seq.protocol_wildcards_deterministic, 2);
        assert!(seq.interleavings < 64, "plan must actually prune");
    }
}
