//! The schedule generator: a depth-first walk over Epoch Decisions.
//!
//! After each run, every epoch's potential alternate matches become branch
//! points. The generator forces one unexplored alternate per replay,
//! deepest-first (the paper §II-B: "successively force alternate matches at
//! the last step; then at the penultimate step; and so on"). Bounded mixing
//! and loop-iteration-abstraction regions prune the branch set; a visited
//! set over decision-prefix signatures prevents re-exploration.
//!
//! The generator is tool-agnostic: it only needs a `run` function mapping a
//! [`DecisionSet`] to a [`RunResult`]. Both the DAMPI verifier
//! (decentralized piggyback analysis) and the ISP baseline (centralized
//! scheduler) drive their replays through this one implementation.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::PathBuf;
use std::time::Duration;

use dampi_mpi::program::RunOutcome;
use dampi_mpi::MpiError;

use crate::bounds::MixingBound;
use crate::decisions::{DecisionSet, EpochDecision};
use crate::epoch::{EpochRecord, ToolRunStats};
use crate::journal::{ExplorationJournal, JournalFork, JOURNAL_VERSION};
use crate::report::{FoundError, ReplayTimeoutRecord};

/// What one execution produced, as the scheduler sees it.
pub struct RunResult {
    /// Runtime outcome (errors, leaks, virtual times).
    pub outcome: RunOutcome,
    /// Every rank's epoch log (unsorted).
    pub epochs: Vec<EpochRecord>,
    /// Aggregate tool statistics for the run.
    pub stats: ToolRunStats,
}

/// Exploration policy knobs (subset of `DampiConfig` the walk needs).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Bounded-mixing window.
    pub bound: MixingBound,
    /// Honor loop-iteration-abstraction regions.
    pub honor_regions: bool,
    /// Replay budget.
    pub max_interleavings: Option<u64>,
    /// Stop at the first program bug.
    pub stop_on_first_error: bool,
    /// Branch on alternates discovered for already-guided epochs.
    pub branch_on_guided: bool,
    /// Re-run a diverging guided replay up to this many extra times before
    /// accepting the divergent result (a replay on a loaded machine can
    /// miss its decisions transiently; the retry is the cheap fix).
    pub divergence_retries: u32,
    /// Base delay between divergence retries, doubled per attempt.
    /// `Duration::ZERO` retries immediately (the unit-test setting).
    pub retry_backoff: Duration,
    /// When set, journal the full frontier to this path after every run
    /// (atomic write-and-rename) so a killed campaign can resume.
    pub checkpoint: Option<PathBuf>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            bound: MixingBound::Unbounded,
            honor_regions: true,
            max_interleavings: Some(100_000),
            stop_on_first_error: false,
            branch_on_guided: false,
            divergence_retries: 2,
            retry_backoff: Duration::from_millis(5),
            checkpoint: None,
        }
    }
}

/// Aggregated result of a full exploration.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Number of interleavings executed (including the initial run).
    pub interleavings: u64,
    /// Distinct program bugs found, with their reproduction decisions.
    pub errors: Vec<FoundError>,
    /// Tool stats of the initial `SELF_RUN`.
    pub first_run_stats: ToolRunStats,
    /// Simulated makespan of the initial run.
    pub first_run_makespan: f64,
    /// Leak census of the initial run.
    pub first_run_leaks: dampi_mpi::LeakReport,
    /// Sum of simulated makespans across every run — "time to explore".
    pub total_virtual_time: f64,
    /// Guided-lookup misses across all replays.
    pub divergences: u64,
    /// Replays re-executed after a divergence (bounded retry-with-backoff;
    /// retries do not count as interleavings, so a resumed campaign's
    /// interleaving numbering matches an uninterrupted one).
    pub retries: u64,
    /// Replays the watchdog budget killed. The scheduler records them and
    /// moves on — their subtrees are *not* expanded (the epoch log of a
    /// killed run is truncated), which is exactly the partial coverage the
    /// record reports.
    pub timeouts: Vec<ReplayTimeoutRecord>,
    /// True when the interleaving budget stopped the walk early.
    pub budget_exhausted: bool,
    /// Union of every match discovered per epoch `(rank, clock)` across
    /// all runs — matched sources and alternates combined. This is the
    /// verifier's *coverage*: the set of non-deterministic outcomes it
    /// knows about (used by the §II-F completeness comparisons).
    pub discovered: BTreeMap<(usize, u64), BTreeSet<usize>>,
}

struct Fork {
    decisions: DecisionSet,
    /// Deepest canonical epoch index this fork's subtree may still branch
    /// at (`None` = unbounded). Bounded mixing anchors the window at the
    /// epoch where the subtree's *original* alternate was forced and the
    /// window is inherited, not re-anchored, by nested forks — so each
    /// initial-run epoch opens one overlapping window of height `k` and
    /// the search cost is a sum of `O(P^k)` subtrees (paper §III-B2).
    window_end: Option<usize>,
}

/// Run the depth-first exploration from scratch.
pub fn explore<F>(run: F, opts: &ExploreOptions) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    explore_inner(run, opts, None)
}

/// Continue an interrupted exploration from a journal (see
/// [`crate::journal`]). The journal's frontier is replayed in its exact
/// stack order, so the completed campaign matches an uninterrupted one.
pub fn explore_resumed<F>(
    run: F,
    opts: &ExploreOptions,
    journal: ExplorationJournal,
) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    explore_inner(run, opts, Some(journal))
}

fn explore_inner<F>(
    mut run: F,
    opts: &ExploreOptions,
    resume: Option<ExplorationJournal>,
) -> Exploration
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    let mut ex = Exploration::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Fork> = Vec::new();
    let mut seen_errors: HashSet<(usize, String)> = HashSet::new();

    match resume {
        Some(journal) => restore(journal, &mut ex, &mut visited, &mut stack, &mut seen_errors),
        None => {
            let first = run_with_retry(&mut run, &DecisionSet::self_run(), opts, &mut ex);
            ex.interleavings = 1;
            ex.first_run_stats = first.stats;
            ex.first_run_makespan = first.outcome.makespan;
            // Leak checking happens at MPI_Finalize; a run that aborted or
            // deadlocked never reached it, so its leftover resources are
            // teardown debris, not application leaks.
            if first.outcome.succeeded() {
                ex.first_run_leaks = first.outcome.leaks.clone();
            }
            absorb_errors(&mut ex, &mut seen_errors, &first.outcome, 1, &DecisionSet::self_run());
            absorb_discoveries(&mut ex, &first.epochs);
            if let Some(detail) = timeout_of(&first.outcome) {
                ex.timeouts.push(ReplayTimeoutRecord {
                    interleaving: 1,
                    detail,
                    decisions: DecisionSet::self_run(),
                });
            } else {
                push_forks(&mut stack, &mut visited, &first.epochs, Root, opts);
            }
            checkpoint_now(opts, &ex, &visited, &stack);
        }
    }

    loop {
        // Budget and stop checks happen *before* the pop so a checkpointed
        // frontier still holds every unexplored fork — resuming with a
        // larger budget loses nothing.
        if let Some(max) = opts.max_interleavings {
            if ex.interleavings >= max && !stack.is_empty() {
                ex.budget_exhausted = true;
                break;
            }
        }
        if opts.stop_on_first_error && !ex.errors.is_empty() {
            break;
        }
        let Some(fork) = stack.pop() else { break };
        let res = run_with_retry(&mut run, &fork.decisions, opts, &mut ex);
        ex.interleavings += 1;
        let interleaving = ex.interleavings;
        absorb_errors(
            &mut ex,
            &mut seen_errors,
            &res.outcome,
            interleaving,
            &fork.decisions,
        );
        absorb_discoveries(&mut ex, &res.epochs);
        if let Some(detail) = timeout_of(&res.outcome) {
            // A killed replay's epoch log is truncated; forking from it
            // would schedule prefixes the run never confirmed. Record the
            // partial coverage honestly and keep walking the rest of the
            // frontier.
            ex.timeouts.push(ReplayTimeoutRecord {
                interleaving,
                detail,
                decisions: fork.decisions.clone(),
            });
        } else {
            push_forks(
                &mut stack,
                &mut visited,
                &res.epochs,
                Child {
                    fork_index: fork_index_of(&fork),
                    window_end: fork.window_end,
                },
                opts,
            );
        }
        checkpoint_now(opts, &ex, &visited, &stack);
    }
    ex
}

/// Execute one schedule, retrying (with exponential backoff) when a guided
/// replay diverges from its decisions. The final attempt's result is the
/// one the walk uses; every attempt's cost and divergences are accounted.
fn run_with_retry<F>(
    run: &mut F,
    decisions: &DecisionSet,
    opts: &ExploreOptions,
    ex: &mut Exploration,
) -> RunResult
where
    F: FnMut(&DecisionSet) -> RunResult,
{
    let mut res = run(decisions);
    ex.total_virtual_time += res.outcome.makespan;
    ex.divergences += res.stats.divergences;
    let mut attempt: u32 = 0;
    while !decisions.is_self_run()
        && res.stats.divergences > 0
        && attempt < opts.divergence_retries
    {
        let backoff = opts.retry_backoff * 2u32.saturating_pow(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        attempt += 1;
        ex.retries += 1;
        res = run(decisions);
        ex.total_virtual_time += res.outcome.makespan;
        ex.divergences += res.stats.divergences;
    }
    res
}

/// The watchdog detail when this run was killed over budget.
fn timeout_of(outcome: &RunOutcome) -> Option<String> {
    match &outcome.fatal {
        Some(MpiError::ReplayTimeout { detail }) => Some(detail.clone()),
        _ => None,
    }
}

fn checkpoint_now(
    opts: &ExploreOptions,
    ex: &Exploration,
    visited: &HashSet<u64>,
    stack: &[Fork],
) {
    let Some(path) = &opts.checkpoint else { return };
    let mut sigs: Vec<u64> = visited.iter().copied().collect();
    sigs.sort_unstable();
    let journal = ExplorationJournal {
        version: JOURNAL_VERSION,
        interleavings: ex.interleavings,
        retries: ex.retries,
        divergences: ex.divergences,
        total_virtual_time: ex.total_virtual_time,
        first_run_stats: ex.first_run_stats,
        first_run_makespan: ex.first_run_makespan,
        first_run_leaks: ex.first_run_leaks.clone(),
        errors: ex.errors.clone(),
        timeouts: ex.timeouts.clone(),
        discovered: ExplorationJournal::flatten_discovered(&ex.discovered),
        visited: sigs,
        frontier: stack
            .iter()
            .map(|f| JournalFork {
                decisions: f.decisions.clone(),
                window_end: f.window_end,
            })
            .collect(),
    };
    if let Err(e) = journal.save(path) {
        // A failed checkpoint must not kill a healthy campaign; the
        // previous journal (if any) is still intact thanks to the atomic
        // rename.
        eprintln!("dampi: checkpoint to {} failed: {e}", path.display());
    }
}

fn restore(
    journal: ExplorationJournal,
    ex: &mut Exploration,
    visited: &mut HashSet<u64>,
    stack: &mut Vec<Fork>,
    seen_errors: &mut HashSet<(usize, String)>,
) {
    ex.interleavings = journal.interleavings;
    ex.retries = journal.retries;
    ex.divergences = journal.divergences;
    ex.total_virtual_time = journal.total_virtual_time;
    ex.first_run_stats = journal.first_run_stats;
    ex.first_run_makespan = journal.first_run_makespan;
    ex.discovered = journal.discovered_map();
    ex.first_run_leaks = journal.first_run_leaks;
    for e in &journal.errors {
        seen_errors.insert((e.rank, e.error.to_string()));
    }
    ex.errors = journal.errors;
    ex.timeouts = journal.timeouts;
    visited.extend(journal.visited);
    stack.extend(journal.frontier.into_iter().map(|f| Fork {
        decisions: f.decisions,
        window_end: f.window_end,
    }));
}

fn fork_index_of(fork: &Fork) -> usize {
    // The branch point is the last decision in the set; its canonical
    // index is not needed beyond window math, which uses window_end, so
    // this helper only disambiguates Child provenance for region checks.
    fork.decisions.decisions.len().saturating_sub(1)
}

/// Where a run came from, for window bookkeeping.
enum Provenance {
    /// The initial `SELF_RUN`: every epoch anchors its own window.
    Root,
    /// A guided replay: new epochs may branch only inside the inherited
    /// window.
    Child {
        #[allow(dead_code)]
        fork_index: usize,
        window_end: Option<usize>,
    },
}
use Provenance::{Child, Root};

fn absorb_errors(
    ex: &mut Exploration,
    seen: &mut HashSet<(usize, String)>,
    outcome: &RunOutcome,
    interleaving: u64,
    decisions: &DecisionSet,
) {
    for bug in outcome.program_bugs() {
        let key = (bug.rank, bug.error.to_string());
        if seen.insert(key) {
            ex.errors.push(FoundError {
                interleaving,
                rank: bug.rank,
                error: bug.error,
                decisions: decisions.clone(),
            });
        }
    }
}

fn absorb_discoveries(ex: &mut Exploration, epochs: &[EpochRecord]) {
    for e in epochs {
        let entry = ex.discovered.entry((e.rank, e.clock)).or_default();
        if let Some(m) = e.matched_src {
            entry.insert(m);
        }
        entry.extend(e.alternates.iter().copied());
    }
}

/// Sort this run's epochs canonically and push a fork for every unexplored
/// alternate inside the mixing window.
fn push_forks(
    stack: &mut Vec<Fork>,
    visited: &mut HashSet<u64>,
    epochs: &[EpochRecord],
    provenance: Provenance,
    opts: &ExploreOptions,
) {
    let mut eps: Vec<&EpochRecord> = epochs.iter().collect();
    eps.sort_by_key(|e| (e.clock, e.rank));
    for (i, e) in eps.iter().enumerate() {
        if e.guided && !opts.branch_on_guided {
            continue;
        }
        if opts.honor_regions && e.in_region {
            continue;
        }
        // Bounded-mixing window: in the initial run every epoch anchors a
        // fresh window [i, i+k]; in a replay, new epochs may branch only
        // within the inherited window of the subtree's anchor.
        let window_end = match (&provenance, opts.bound) {
            (_, MixingBound::Unbounded) => None,
            (Root, MixingBound::K(k)) => Some(i.saturating_add(k as usize)),
            (Child { window_end, .. }, MixingBound::K(_)) => {
                match window_end {
                    Some(end) if i <= *end => Some(*end),
                    Some(_) => continue, // outside the window: SELF_RUN only
                    None => None,
                }
            }
        };
        for alt in e.unexplored_alternates() {
            // The forced prefix: every earlier epoch keeps the match it had
            // in this run; the branch point takes the alternate.
            let mut decisions: Vec<EpochDecision> = eps[..i]
                .iter()
                .filter_map(|p| {
                    p.matched_src.map(|m| EpochDecision {
                        rank: p.rank,
                        clock: p.clock,
                        src: m,
                    })
                })
                .collect();
            decisions.push(EpochDecision {
                rank: e.rank,
                clock: e.clock,
                src: alt,
            });
            let ds = DecisionSet::guided(e.clock, decisions);
            if visited.insert(ds.signature()) {
                stack.push(Fork {
                    decisions: ds,
                    window_end,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::NdKind;
    use dampi_clocks::ClockStamp;
    use dampi_mpi::{Comm, LeakReport, MpiError};

    /// A synthetic "program": `n_epochs` wildcard receives on rank 0, each
    /// with sources `0..n_srcs`. The run function honors forced decisions
    /// and reports all alternates, mimicking what DampiLayer produces.
    fn synthetic_run(n_epochs: u64, n_srcs: usize) -> impl FnMut(&DecisionSet) -> RunResult {
        move |ds: &DecisionSet| {
            let epochs: Vec<EpochRecord> = (0..n_epochs)
                .map(|clock| {
                    let forced = ds.lookup(0, clock);
                    let matched = forced.unwrap_or(0);
                    let guided = forced.is_some();
                    EpochRecord {
                        rank: 0,
                        clock,
                        stamp: ClockStamp::Lamport(clock),
                        comm: Comm::WORLD,
                        tag_spec: 0,
                        kind: NdKind::Recv,
                        in_region: false,
                        guided,
                        matched_src: Some(matched),
                        alternates: (0..n_srcs).filter(|s| *s != matched).collect(),
                    }
                })
                .collect();
            RunResult {
                outcome: RunOutcome {
                    rank_errors: vec![None],
                    leaks: LeakReport::default(),
                    fatal: None,
                    per_rank_vt: vec![1.0],
                    makespan: 1.0,
                },
                epochs,
                stats: ToolRunStats {
                    wildcards: n_epochs,
                    ..Default::default()
                },
            }
        }
    }

    fn opts(bound: MixingBound) -> ExploreOptions {
        ExploreOptions {
            bound,
            max_interleavings: Some(1_000_000),
            retry_backoff: Duration::ZERO,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn single_epoch_explores_each_alternate_once() {
        // 1 epoch, 3 sources: initial run + 2 alternates = 3 interleavings.
        let ex = explore(synthetic_run(1, 3), &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 3);
        assert_eq!(ex.discovered[&(0, 0)].len(), 3);
    }

    #[test]
    fn unbounded_covers_full_product() {
        // 3 epochs × 3 sources each: 27 total interleavings (3^3).
        let ex = explore(synthetic_run(3, 3), &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 27);
    }

    #[test]
    fn k0_is_linear() {
        // k=0: initial run + one replay per (epoch, alternate) pair:
        // 1 + N*(P-1) = 1 + 4*2 = 9.
        let ex = explore(synthetic_run(4, 3), &opts(MixingBound::K(0)));
        assert_eq!(ex.interleavings, 9);
    }

    #[test]
    fn k_grows_between_linear_and_exponential() {
        let full = explore(synthetic_run(4, 3), &opts(MixingBound::Unbounded)).interleavings;
        let k0 = explore(synthetic_run(4, 3), &opts(MixingBound::K(0))).interleavings;
        let k1 = explore(synthetic_run(4, 3), &opts(MixingBound::K(1))).interleavings;
        let k2 = explore(synthetic_run(4, 3), &opts(MixingBound::K(2))).interleavings;
        assert!(k0 < k1, "k0={k0} k1={k1}");
        assert!(k1 < k2, "k1={k1} k2={k2}");
        assert!(k2 < full, "k2={k2} full={full}");
        assert_eq!(full, 81);
    }

    #[test]
    fn budget_stops_exploration() {
        let ex = explore(
            synthetic_run(10, 4),
            &ExploreOptions {
                max_interleavings: Some(50),
                ..opts(MixingBound::Unbounded)
            },
        );
        assert_eq!(ex.interleavings, 50);
        assert!(ex.budget_exhausted);
    }

    #[test]
    fn regions_suppress_branching() {
        let mut base = synthetic_run(2, 3);
        let run = move |ds: &DecisionSet| {
            let mut r = base(ds);
            for e in &mut r.epochs {
                e.in_region = true;
            }
            r
        };
        let ex = explore(run, &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 1, "regions make everything SELF_RUN");
    }

    #[test]
    fn errors_deduplicate_and_keep_repro() {
        let mut inner = synthetic_run(1, 2);
        let run = move |ds: &DecisionSet| {
            let mut r = inner(ds);
            // The bug manifests only when source 1 is forced.
            if ds.lookup(0, 0) == Some(1) {
                r.outcome.rank_errors[0] = Some(MpiError::UserAssert {
                    message: "x==33".into(),
                });
            }
            r
        };
        let ex = explore(run, &opts(MixingBound::Unbounded));
        assert_eq!(ex.interleavings, 2);
        assert_eq!(ex.errors.len(), 1);
        let err = &ex.errors[0];
        assert_eq!(err.interleaving, 2);
        assert_eq!(err.decisions.lookup(0, 0), Some(1));
    }

    #[test]
    fn stop_on_first_error_halts() {
        let mut inner = synthetic_run(2, 3);
        let run = move |ds: &DecisionSet| {
            let mut r = inner(ds);
            if !ds.is_self_run() {
                r.outcome.rank_errors[0] = Some(MpiError::UserAssert {
                    message: "any replay fails".into(),
                });
            }
            r
        };
        let ex = explore(
            run,
            &ExploreOptions {
                stop_on_first_error: true,
                ..opts(MixingBound::Unbounded)
            },
        );
        assert_eq!(ex.interleavings, 2);
        assert_eq!(ex.errors.len(), 1);
    }

    #[test]
    fn total_virtual_time_accumulates() {
        let ex = explore(synthetic_run(1, 3), &opts(MixingBound::Unbounded));
        assert!((ex.total_virtual_time - 3.0).abs() < 1e-12);
    }
}
