//! Static pre-analysis prune plans consumed by the scheduler.
//!
//! `crates/analysis` inspects the initial free run's event trace and epoch
//! log *before* any replay is dispatched and condenses its conclusions into
//! a [`PrunePlan`] — a plain data value, so the core scheduler does not
//! depend on the analysis crate. The plan carries three kinds of facts:
//!
//! 1. **Infeasible alternates** — recorded `(rank, clock, src)` alternates
//!    that envelope counting plus MPI non-overtaking prove unmatchable (the
//!    forced source's compatible sends are all necessarily consumed by
//!    receives posted earlier at the epoch's rank). Forcing such an
//!    alternate can only produce a spurious deadlock, never a feasible
//!    schedule, so the fork is dropped from the root frontier.
//! 2. **Deterministic wildcards** — `(rank, clock)` epochs whose
//!    over-approximated feasible sender set is a singleton. These never
//!    branch anyway (the dynamic analysis records no alternates for them);
//!    the plan lists them so the scheduler can report how much of the
//!    wildcard population is *effectively deterministic* (the paper's §IV
//!    observation motivating pruning).
//! 3. **Rank orbits** — groups of interchangeable ranks (identical traced
//!    operation sequences, indistinguishable to every third rank). Within a
//!    frontier push, an alternate whose swap with an already-covered
//!    sibling source fixes the entire forced prefix explores a subtree
//!    isomorphic to one already scheduled; it is pruned (classic symmetry
//!    reduction — errors are preserved up to renaming of orbit members).
//!
//! Every decision the scheduler takes from a plan happens on the
//! deterministic commit path, so `--jobs N` explorations remain
//! byte-identical for any worker count.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// The distilled output of the static pre-analysis, consumed by
/// `scheduler::push_forks` when pruning is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrunePlan {
    /// Alternates `(rank, clock, src)` proven unmatchable for the initial
    /// run's epochs; dropped from the root frontier only (replay epoch
    /// logs may legitimately differ from the analyzed trace).
    pub infeasible: BTreeSet<(usize, u64, usize)>,
    /// Epochs `(rank, clock)` whose over-approximated feasible sender set
    /// is a singleton — statically deterministic wildcards.
    pub deterministic: BTreeSet<(usize, u64)>,
    /// Disjoint groups of interchangeable ranks. Ranks not listed in any
    /// orbit are fixed points (never swapped).
    pub orbits: Vec<BTreeSet<usize>>,
}

impl PrunePlan {
    /// True when the plan prescribes nothing — the scheduler then behaves
    /// exactly as if no plan were installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.infeasible.is_empty()
            && self.deterministic.is_empty()
            && self.orbits.iter().all(|o| o.len() < 2)
    }

    /// The orbit containing `rank`, if it belongs to one with at least two
    /// members.
    #[must_use]
    pub fn orbit_of(&self, rank: usize) -> Option<&BTreeSet<usize>> {
        self.orbits
            .iter()
            .find(|o| o.len() >= 2 && o.contains(&rank))
    }

    /// True when `a` and `b` are distinct members of the same orbit —
    /// i.e. the program cannot tell them apart and swapping them maps the
    /// reachable schedule space onto itself.
    #[must_use]
    pub fn interchangeable(&self, a: usize, b: usize) -> bool {
        a != b && self.orbit_of(a).is_some_and(|o| o.contains(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(PrunePlan::default().is_empty());
        let trivial = PrunePlan {
            orbits: vec![BTreeSet::from([3])],
            ..PrunePlan::default()
        };
        assert!(trivial.is_empty(), "singleton orbits prescribe nothing");
    }

    #[test]
    fn orbit_membership() {
        let plan = PrunePlan {
            orbits: vec![BTreeSet::from([1, 2, 3]), BTreeSet::from([5, 6])],
            ..PrunePlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.interchangeable(1, 3));
        assert!(plan.interchangeable(6, 5));
        assert!(!plan.interchangeable(1, 5));
        assert!(!plan.interchangeable(2, 2));
        assert!(!plan.interchangeable(0, 4));
        assert_eq!(plan.orbit_of(4), None);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = PrunePlan {
            infeasible: BTreeSet::from([(0, 3, 2)]),
            deterministic: BTreeSet::from([(1, 0)]),
            orbits: vec![BTreeSet::from([1, 2])],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: PrunePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
