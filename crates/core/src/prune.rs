//! Static pre-analysis prune plans consumed by the scheduler.
//!
//! `crates/analysis` inspects the initial free run's event trace and epoch
//! log *before* any replay is dispatched and condenses its conclusions into
//! a [`PrunePlan`] — a plain data value, so the core scheduler does not
//! depend on the analysis crate. The plan carries these kinds of facts:
//!
//! 1. **Infeasible alternates** — recorded `(rank, clock, src)` alternates
//!    that envelope counting plus MPI non-overtaking prove unmatchable (the
//!    forced source's compatible sends are all necessarily consumed by
//!    receives posted earlier at the epoch's rank). Forcing such an
//!    alternate can only produce a spurious deadlock, never a feasible
//!    schedule, so the fork is dropped from the root frontier.
//! 2. **Deterministic wildcards** — `(rank, clock)` epochs whose
//!    over-approximated feasible sender set is a singleton. These never
//!    branch anyway (the dynamic analysis records no alternates for them);
//!    the plan lists them so the scheduler can report how much of the
//!    wildcard population is *effectively deterministic* (the paper's §IV
//!    observation motivating pruning).
//! 3. **Rank orbits** — groups of interchangeable ranks (identical traced
//!    operation sequences, indistinguishable to every third rank). Within a
//!    frontier push, an alternate whose swap with an already-covered
//!    sibling source fixes the entire forced prefix explores a subtree
//!    isomorphic to one already scheduled; it is pruned (classic symmetry
//!    reduction — errors are preserved up to renaming of orbit members).
//!
//! Plan **version 2** adds the cross-epoch fixed-point refinement outputs:
//!
//! 4. **Refined infeasible alternates** — alternates the per-channel
//!    positional simulation refutes *beyond* envelope counting: walking the
//!    receiver's completed receives in post order, each definite consumer
//!    (a completed named receive or an earlier epoch's observed match)
//!    takes the forced source's earliest unconsumed tag-compatible send, so
//!    the simulation knows *which* send each claim consumed — precision the
//!    count-based pass gives up on mixed-tag `ANY_TAG` channels.
//! 5. **Refined deterministic wildcards** — epochs whose match set shrinks
//!    to a singleton only at the refinement fixed point.
//! 6. **Oblivious receives** — `(rank, op index)` receive points whose
//!    delivered payload content provably did not steer the receiver in the
//!    traced run (cross-rank twin evidence). Carried for reporting: the
//!    orbit pass already spent this license when it built `orbits`.
//!
//! Plan **version 3** adds the session-type conformance outputs, emitted
//! only when a protocol spec was supplied *and* every rank's traced run
//! conformed to its projection:
//!
//! 7. **Protocol-infeasible alternates** — recorded `(rank, clock, src)`
//!    alternates whose sender is outside the set of roles the local type
//!    admits at that receive state. Forcing one would explore a schedule
//!    the declared protocol forbids; dropped from the root frontier only,
//!    like the other infeasibility facts.
//! 8. **Protocol-deterministic wildcards** — `(rank, clock)` epochs where
//!    the local type admits exactly one sender role, so the wildcard
//!    receive cannot branch under any conformant schedule.
//!
//! Old (version-1/2) plans deserialize with the newer fields empty, so a
//! plan produced by an earlier analyzer build still drives the scheduler.
//!
//! Every decision the scheduler takes from a plan happens on the
//! deterministic commit path, so `--jobs N` explorations remain
//! byte-identical for any worker count.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Current plan schema version written by the analyzer.
pub const PRUNE_PLAN_VERSION: u32 = 3;

/// The distilled output of the static pre-analysis, consumed by
/// `scheduler::push_forks` when pruning is enabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrunePlan {
    /// Plan schema version. Version-1 plans carry no explicit field and
    /// deserialize as 0; both are accepted on load.
    #[serde(default)]
    pub version: u32,
    /// Alternates `(rank, clock, src)` proven unmatchable for the initial
    /// run's epochs; dropped from the root frontier only (replay epoch
    /// logs may legitimately differ from the analyzed trace).
    pub infeasible: BTreeSet<(usize, u64, usize)>,
    /// Epochs `(rank, clock)` whose over-approximated feasible sender set
    /// is a singleton — statically deterministic wildcards.
    pub deterministic: BTreeSet<(usize, u64)>,
    /// Disjoint groups of interchangeable ranks. Ranks not listed in any
    /// orbit are fixed points (never swapped).
    pub orbits: Vec<BTreeSet<usize>>,
    /// Alternates refuted only by the fixed-point positional refinement,
    /// disjoint from [`PrunePlan::infeasible`]. Same consumption rule:
    /// root frontier only.
    #[serde(default)]
    pub refined_infeasible: BTreeSet<(usize, u64, usize)>,
    /// Epochs deterministic only at the refinement fixed point, disjoint
    /// from [`PrunePlan::deterministic`].
    #[serde(default)]
    pub refined_deterministic: BTreeSet<(usize, u64)>,
    /// Receive points `(rank, op index)` proven payload-oblivious; the
    /// orbit pass dropped content digests from projections toward these
    /// receivers. Reporting only — no scheduler effect of its own.
    #[serde(default)]
    pub oblivious_receives: BTreeSet<(usize, usize)>,
    /// Alternates `(rank, clock, src)` whose sender the protocol's local
    /// type forbids at that receive state (plan v3). Disjoint from the
    /// envelope/refinement facts; root frontier only, like them.
    #[serde(default)]
    pub protocol_infeasible: BTreeSet<(usize, u64, usize)>,
    /// Epochs `(rank, clock)` where the local type admits exactly one
    /// sender role (plan v3) — protocol-deterministic wildcards. Disjoint
    /// from `deterministic` and `refined_deterministic`.
    #[serde(default)]
    pub protocol_deterministic: BTreeSet<(usize, u64)>,
}

impl Default for PrunePlan {
    fn default() -> Self {
        Self {
            version: PRUNE_PLAN_VERSION,
            infeasible: BTreeSet::new(),
            deterministic: BTreeSet::new(),
            orbits: Vec::new(),
            refined_infeasible: BTreeSet::new(),
            refined_deterministic: BTreeSet::new(),
            oblivious_receives: BTreeSet::new(),
            protocol_infeasible: BTreeSet::new(),
            protocol_deterministic: BTreeSet::new(),
        }
    }
}

impl PrunePlan {
    /// True when the plan prescribes nothing — the scheduler then behaves
    /// exactly as if no plan were installed. Oblivious receives alone do
    /// not count: they only license orbits, they do not prune by
    /// themselves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.infeasible.is_empty()
            && self.deterministic.is_empty()
            && self.refined_infeasible.is_empty()
            && self.refined_deterministic.is_empty()
            && self.protocol_infeasible.is_empty()
            && self.protocol_deterministic.is_empty()
            && self.orbits.iter().all(|o| o.len() < 2)
    }

    /// The orbit containing `rank`, if it belongs to one with at least two
    /// members.
    #[must_use]
    pub fn orbit_of(&self, rank: usize) -> Option<&BTreeSet<usize>> {
        self.orbits
            .iter()
            .find(|o| o.len() >= 2 && o.contains(&rank))
    }

    /// True when `a` and `b` are distinct members of the same orbit —
    /// i.e. the program cannot tell them apart and swapping them maps the
    /// reachable schedule space onto itself.
    #[must_use]
    pub fn interchangeable(&self, a: usize, b: usize) -> bool {
        a != b && self.orbit_of(a).is_some_and(|o| o.contains(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(PrunePlan::default().is_empty());
        let trivial = PrunePlan {
            orbits: vec![BTreeSet::from([3])],
            ..PrunePlan::default()
        };
        assert!(trivial.is_empty(), "singleton orbits prescribe nothing");
        let oblivious_only = PrunePlan {
            oblivious_receives: BTreeSet::from([(1, 2)]),
            ..PrunePlan::default()
        };
        assert!(
            oblivious_only.is_empty(),
            "oblivious receives alone prune nothing"
        );
    }

    #[test]
    fn refined_facts_make_a_plan_nonempty() {
        let refined = PrunePlan {
            refined_infeasible: BTreeSet::from([(0, 1, 2)]),
            ..PrunePlan::default()
        };
        assert!(!refined.is_empty());
        let det = PrunePlan {
            refined_deterministic: BTreeSet::from([(0, 1)]),
            ..PrunePlan::default()
        };
        assert!(!det.is_empty());
    }

    #[test]
    fn protocol_facts_make_a_plan_nonempty() {
        let infeasible = PrunePlan {
            protocol_infeasible: BTreeSet::from([(0, 1, 2)]),
            ..PrunePlan::default()
        };
        assert!(!infeasible.is_empty());
        let det = PrunePlan {
            protocol_deterministic: BTreeSet::from([(0, 1)]),
            ..PrunePlan::default()
        };
        assert!(!det.is_empty());
    }

    #[test]
    fn orbit_membership() {
        let plan = PrunePlan {
            orbits: vec![BTreeSet::from([1, 2, 3]), BTreeSet::from([5, 6])],
            ..PrunePlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.interchangeable(1, 3));
        assert!(plan.interchangeable(6, 5));
        assert!(!plan.interchangeable(1, 5));
        assert!(!plan.interchangeable(2, 2));
        assert!(!plan.interchangeable(0, 4));
        assert_eq!(plan.orbit_of(4), None);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = PrunePlan {
            infeasible: BTreeSet::from([(0, 3, 2)]),
            deterministic: BTreeSet::from([(1, 0)]),
            orbits: vec![BTreeSet::from([1, 2])],
            refined_infeasible: BTreeSet::from([(0, 4, 1)]),
            refined_deterministic: BTreeSet::from([(0, 4)]),
            oblivious_receives: BTreeSet::from([(2, 1)]),
            protocol_infeasible: BTreeSet::from([(1, 5, 3)]),
            protocol_deterministic: BTreeSet::from([(1, 6)]),
            ..PrunePlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: PrunePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.version, PRUNE_PLAN_VERSION);
    }

    #[test]
    fn version_1_plans_still_deserialize() {
        // The exact shape PR-5 analyzers wrote: no version, no refined
        // fields. Old campaign artifacts must keep loading.
        let v1 = r#"{
            "infeasible": [[0, 3, 2]],
            "deterministic": [[1, 0]],
            "orbits": [[1, 2]]
        }"#;
        let plan: PrunePlan = serde_json::from_str(v1).unwrap();
        assert_eq!(plan.version, 0, "legacy plans report version 0");
        assert!(plan.infeasible.contains(&(0, 3, 2)));
        assert!(plan.refined_infeasible.is_empty());
        assert!(plan.refined_deterministic.is_empty());
        assert!(plan.oblivious_receives.is_empty());
        assert!(plan.protocol_infeasible.is_empty());
        assert!(plan.protocol_deterministic.is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn version_2_plans_still_deserialize() {
        // The exact shape PR-6 analyzers wrote: refined fields present,
        // no protocol fields. They must keep loading with the protocol
        // sets empty.
        let v2 = r#"{
            "version": 2,
            "infeasible": [[0, 3, 2]],
            "deterministic": [[1, 0]],
            "orbits": [[1, 2]],
            "refined_infeasible": [[0, 4, 1]],
            "refined_deterministic": [[0, 4]],
            "oblivious_receives": [[2, 1]]
        }"#;
        let plan: PrunePlan = serde_json::from_str(v2).unwrap();
        assert_eq!(plan.version, 2);
        assert!(plan.refined_infeasible.contains(&(0, 4, 1)));
        assert!(plan.protocol_infeasible.is_empty());
        assert!(plan.protocol_deterministic.is_empty());
        assert!(!plan.is_empty());
    }
}
