//! **DAMPI** — the Distributed Analyzer for MPI: a scalable dynamic formal
//! verifier that guarantees coverage of the space of MPI non-determinism
//! (wildcard receives and probes), reproducing Vo et al., SC 2010.
//!
//! # How it works (paper §II)
//!
//! 1. **Interposition** — [`tool::DampiLayer`] wraps every MPI call of the
//!    target program (the PnMPI analog in `dampi-mpi`).
//! 2. **Decentralized match detection** — each rank keeps a logical clock
//!    ([`clock::AnyClock`]: Lamport by default, vector as the precise
//!    reference mode). Every message carries a **piggybacked** clock stamp
//!    ([`pb`]); each wildcard receive opens an **epoch**
//!    ([`epoch::EpochRecord`]). A message whose stamp is *not causally
//!    after* an epoch is **late** and its sender is recorded as a potential
//!    alternate match ([`late`]).
//! 3. **Replay** — after the free run, the schedule generator
//!    ([`scheduler`]) walks the recorded **Epoch Decisions**
//!    ([`decisions::DecisionSet`]) depth-first, forcing one unexplored
//!    alternate per replay (`GUIDED_RUN` up to `guided_epoch`, then back to
//!    `SELF_RUN`).
//! 4. **Search bounding** — [`bounds::MixingBound`] implements *bounded
//!    mixing* (overlapping exploration windows of height *k*), and
//!    `pcontrol`-bracketed regions implement *loop iteration abstraction*.
//! 5. **Error detection** — deadlocks and program assertions via the
//!    runtime, resource leaks at finalize, plus the §V unsafe-pattern
//!    monitor ([`monitor`]).
//!
//! The top-level driver is [`verifier::DampiVerifier`]:
//!
//! ```
//! use dampi_core::verifier::DampiVerifier;
//! use dampi_mpi::{FnProgram, MatchPolicy, SimConfig, Comm, ANY_SOURCE};
//! use bytes::Bytes;
//!
//! // Paper Fig. 3: the error only manifests if P2's send matches. The
//! // barrier (as in the paper's figure) guarantees both sends are visible
//! // to the wildcard, so the alternate-match analysis is deterministic.
//! let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
//!     match mpi.world_rank() {
//!         0 => {
//!             mpi.send(Comm::WORLD, 1, 22, Bytes::from_static(b"\x16"))?;
//!             mpi.barrier(Comm::WORLD)?;
//!         }
//!         2 => {
//!             mpi.send(Comm::WORLD, 1, 22, Bytes::from_static(b"\x21"))?;
//!             mpi.barrier(Comm::WORLD)?;
//!         }
//!         _ => {
//!             mpi.barrier(Comm::WORLD)?;
//!             let (_, x) = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
//!             dampi_mpi::proc_api::user_assert(x[0] != 0x21, "x == 33")?;
//!             let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?; // drain
//!         }
//!     }
//!     Ok(())
//! });
//! // LowestRank matching keeps the SELF_RUN clean (P0's message wins), so
//! // the bug is provably found by *replay*, not by scheduling luck.
//! let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
//! let report = DampiVerifier::new(sim).verify(&prog);
//! assert!(report.interleavings >= 2);
//! assert!(!report.errors.is_empty(), "DAMPI must find the x==33 bug");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cache;
pub mod clock;
pub mod config;
pub mod decisions;
pub mod epoch;
pub mod journal;
pub mod late;
pub mod metrics;
pub mod minimize;
pub mod monitor;
pub mod pb;
pub mod prune;
pub mod report;
pub mod scheduler;
pub mod shard;
pub mod tool;
pub mod verifier;

pub use bounds::MixingBound;
pub use cache::{ReplayCache, CACHE_SCHEMA_VERSION};
pub use config::{DampiConfig, PiggybackMechanism, RetryBackoff};
pub use decisions::{DecisionSet, EpochDecision};
pub use epoch::{EpochRecord, NdKind};
pub use journal::ExplorationJournal;
pub use metrics::{CampaignMetrics, CampaignTrace, METRICS_SCHEMA_VERSION, TRACE_SCHEMA_VERSION};
pub use prune::PrunePlan;
pub use report::{FoundError, ReplayTimeoutRecord, VerificationReport};
pub use shard::ShardOptions;
pub use verifier::DampiVerifier;

pub use dampi_clocks::ClockMode;
