//! Integration tests of the campaign observability layer: semantic
//! metrics are byte-identical across worker counts, the dispatch
//! accounting invariant holds, and the JSONL trace is schema-versioned
//! and complete.

use std::collections::BTreeSet;

use dampi_clocks::ClockStamp;
use dampi_core::decisions::DecisionSet;
use dampi_core::epoch::{EpochRecord, NdKind, ToolRunStats};
use dampi_core::scheduler::{explore, explore_parallel, ExploreOptions, RunResult};
use dampi_core::{CampaignMetrics, CampaignTrace, TRACE_SCHEMA_VERSION};
use dampi_mpi::program::RunOutcome;
use dampi_mpi::{Comm, LeakReport};

/// Synthetic confluent program: independent epochs on rank 0, epoch `i`
/// choosing among `alt_counts[i]` sources (same model as the scheduler
/// property tests).
fn model_run(alt_counts: Vec<usize>) -> impl Fn(&DecisionSet) -> RunResult + Sync {
    move |ds: &DecisionSet| {
        let epochs: Vec<EpochRecord> = alt_counts
            .iter()
            .enumerate()
            .map(|(i, &nsrc)| {
                let clock = i as u64;
                let forced = ds.lookup(0, clock);
                let matched = forced.unwrap_or(0);
                EpochRecord {
                    rank: 0,
                    clock,
                    stamp: ClockStamp::Lamport(clock + 1),
                    comm: Comm::WORLD,
                    tag_spec: 0,
                    kind: NdKind::Recv,
                    in_region: false,
                    guided: forced.is_some(),
                    matched_src: Some(matched),
                    alternates: (0..nsrc).filter(|s| *s != matched).collect::<BTreeSet<_>>(),
                }
            })
            .collect();
        RunResult {
            outcome: RunOutcome {
                rank_errors: vec![None],
                leaks: LeakReport::default(),
                fatal: None,
                per_rank_vt: vec![1.0],
                wall_elapsed: std::time::Duration::ZERO,
                makespan: 1.0,
            },
            epochs,
            stats: ToolRunStats {
                wildcards: alt_counts.len() as u64,
                ..Default::default()
            },
        }
    }
}

fn semantic_json(metrics: &CampaignMetrics) -> String {
    let snap = metrics.snapshot("model", 1, "lamport", 0);
    serde_json::to_string(snap.get("semantic").expect("semantic section"))
        .expect("semantic serializes")
}

#[test]
fn semantic_metrics_are_byte_identical_across_jobs() {
    let alt_counts = vec![3, 2, 3, 2];
    let mut snapshots = Vec::new();
    for jobs in [1usize, 4] {
        let m = CampaignMetrics::new();
        let opts = ExploreOptions {
            jobs,
            metrics: Some(m.clone()),
            retry_backoff: dampi_core::RetryBackoff::ZERO,
            ..ExploreOptions::default()
        };
        let ex = explore_parallel(model_run(alt_counts.clone()), &opts);
        assert_eq!(ex.interleavings, 36, "3*2*3*2 product coverage");
        snapshots.push(semantic_json(&m));
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "semantic section must not depend on worker count"
    );
}

#[test]
fn sequential_walk_matches_parallel_semantics() {
    let alt_counts = vec![2, 3, 2];
    let m_seq = CampaignMetrics::new();
    let _ = explore(
        model_run(alt_counts.clone()),
        &ExploreOptions {
            metrics: Some(m_seq.clone()),
            ..ExploreOptions::default()
        },
    );
    let m_par = CampaignMetrics::new();
    let _ = explore_parallel(
        model_run(alt_counts),
        &ExploreOptions {
            jobs: 4,
            metrics: Some(m_par.clone()),
            retry_backoff: dampi_core::RetryBackoff::ZERO,
            ..ExploreOptions::default()
        },
    );
    assert_eq!(semantic_json(&m_seq), semantic_json(&m_par));
}

#[test]
fn every_dispatched_replay_is_committed_or_aborted() {
    // A budget mid-frontier forces the coordinator to cancel in-flight and
    // cached work: those dispatches must land in `aborted`, keeping the
    // ledger exact.
    let m = CampaignMetrics::new();
    let opts = ExploreOptions {
        jobs: 4,
        max_interleavings: Some(5),
        metrics: Some(m.clone()),
        retry_backoff: dampi_core::RetryBackoff::ZERO,
        ..ExploreOptions::default()
    };
    let ex = explore_parallel(model_run(vec![3, 3, 3]), &opts);
    assert!(ex.budget_exhausted);
    assert_eq!(m.committed(), ex.interleavings);
    assert_eq!(
        m.started(),
        m.committed() + m.aborted(),
        "dispatch ledger must balance: started {} committed {} aborted {}",
        m.started(),
        m.committed(),
        m.aborted()
    );
}

#[test]
fn trace_is_schema_versioned_and_complete() {
    let (trace, buf) = CampaignTrace::to_shared_buffer();
    let opts = ExploreOptions {
        jobs: 2,
        trace: Some(trace),
        retry_backoff: dampi_core::RetryBackoff::ZERO,
        ..ExploreOptions::default()
    };
    let ex = explore_parallel(model_run(vec![2, 2]), &opts);
    let text = String::from_utf8(buf.lock().clone()).expect("utf8 trace");
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every trace line is JSON"))
        .collect();
    assert!(!lines.is_empty());
    let mut starts = 0u64;
    let mut commits = 0u64;
    for l in &lines {
        assert_eq!(
            l.get("v").and_then(serde_json::Value::as_u64),
            Some(u64::from(TRACE_SCHEMA_VERSION)),
            "every record carries the schema version"
        );
        let event = l
            .get("event")
            .and_then(serde_json::Value::as_object)
            .unwrap();
        let (kind, _) = event.iter().next().expect("externally tagged event");
        match kind.as_str() {
            "ReplayStart" => starts += 1,
            "ReplayCommit" => commits += 1,
            _ => {}
        }
    }
    assert_eq!(commits, ex.interleavings, "one commit record per replay");
    assert!(starts >= commits, "every commit was started");
    let first = &lines[0];
    assert!(first.get("event").unwrap().get("CampaignStart").is_some());
    let last = lines.last().unwrap();
    let end = last.get("event").unwrap().get("CampaignEnd").unwrap();
    assert_eq!(
        end.get("interleavings").and_then(serde_json::Value::as_u64),
        Some(ex.interleavings)
    );
}
