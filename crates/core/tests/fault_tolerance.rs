//! Fault-tolerant exploration, end to end: replay watchdogs, panic
//! isolation, checkpoint/resume, and divergence retry — each driven by
//! substrate fault injection ([`dampi_mpi::fault`]) against the paper's
//! figure-sized benchmarks.
//!
//! The invariant under test everywhere: a misbehaving *replay* (hung,
//! panicked, diverging) is recorded honestly and never blocks the rest of
//! the frontier, and a killed *campaign* resumes from its journal to the
//! same result an uninterrupted campaign produces.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use dampi_core::{
    DampiConfig, DampiVerifier, ExplorationJournal, RetryBackoff, VerificationReport,
};
use dampi_mpi::fault::{FaultAction, FaultPlan, FaultRule};
use dampi_mpi::{Comm, MatchPolicy, MpiError, ReplayBudget, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

/// Fresh journal path in a per-test temp dir (no collisions across tests).
fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dampi-fault-tolerance-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// Order-independent identity of a report's error set.
fn error_set(report: &VerificationReport) -> BTreeSet<(usize, String)> {
    report
        .errors
        .iter()
        .map(|e| (e.rank, e.error.to_string()))
        .collect()
}

#[test]
fn resumed_campaign_matches_uninterrupted_run() {
    let prog = Matmul::new(MatmulParams {
        n: 6,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let sim = SimConfig::new(4);

    let uninterrupted = DampiVerifier::new(sim.clone()).verify(&prog);
    assert!(
        uninterrupted.interleavings > 3,
        "need a campaign long enough to interrupt: {uninterrupted}"
    );

    // "Kill" the campaign mid-exploration: the journal is checkpointed
    // after every run, so stopping at the interleaving budget leaves the
    // same on-disk state as a SIGKILL right after run 3.
    let path = journal_path("resume-matmul");
    let cfg = DampiConfig::default()
        .with_max_interleavings(3)
        .with_journal(path.clone());
    let partial = DampiVerifier::with_config(sim.clone(), cfg).verify(&prog);
    assert!(partial.budget_exhausted);
    assert_eq!(partial.interleavings, 3);
    let journal = ExplorationJournal::load(&path).expect("journal written");
    assert_eq!(journal.interleavings, 3);
    assert!(!journal.frontier.is_empty(), "work must remain");

    // Resume with the interruption lifted: the completed campaign must be
    // indistinguishable from the uninterrupted one.
    let resumed = DampiVerifier::new(sim)
        .verify_resumed(&prog, &path)
        .expect("resume");
    assert_eq!(resumed.interleavings, uninterrupted.interleavings);
    assert_eq!(error_set(&resumed), error_set(&uninterrupted));
    assert_eq!(
        resumed.total_discovered_matches(),
        uninterrupted.total_discovered_matches()
    );

    // The final checkpoint reflects completion: nothing left to explore.
    let done = ExplorationJournal::load(&path).expect("final journal");
    assert!(done.frontier.is_empty());
    assert_eq!(done.interleavings, uninterrupted.interleavings);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resumed_campaign_recovers_the_error_set() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let prog = patterns::fig3();

    let uninterrupted = DampiVerifier::new(sim.clone()).verify(&prog);
    assert!(
        !uninterrupted.errors.is_empty(),
        "fig3 must produce the x==33 bug: {uninterrupted}"
    );

    // Interrupt after the clean SELF_RUN, before any replay has run: the
    // bug is only reachable through the journalled frontier.
    let path = journal_path("resume-fig3");
    let cfg = DampiConfig::default()
        .with_max_interleavings(1)
        .with_journal(path.clone());
    let partial = DampiVerifier::with_config(sim.clone(), cfg).verify(&prog);
    assert!(partial.errors.is_empty(), "interrupted before any replay");

    let resumed = DampiVerifier::new(sim)
        .verify_resumed(&prog, &path)
        .expect("resume");
    assert_eq!(resumed.interleavings, uninterrupted.interleavings);
    assert_eq!(error_set(&resumed), error_set(&uninterrupted));
    std::fs::remove_file(&path).ok();
}

#[test]
fn livelocked_replay_is_killed_and_reported_as_partial_coverage() {
    // Rank 1 livelocks at its first MPI operation — but only on guided
    // replays, so the SELF_RUN seeds a real frontier first.
    let plan = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Livelock { step: 0.5 },
        })
        .guided_only();
    let sim = SimConfig::new(3)
        .with_policy(MatchPolicy::LowestRank)
        .with_budget(ReplayBudget::default().with_max_virtual_time(30.0));
    let report = DampiVerifier::new(sim)
        .with_fault_plan(plan)
        .verify(&patterns::fig3());

    // Every replay hung and was killed within budget; the walk still
    // consumed the whole frontier instead of blocking on the first hang.
    assert!(report.interleavings >= 2, "{report}");
    assert_eq!(report.timeouts.len() as u64, report.interleavings - 1);
    assert!(report.timeouts[0].detail.contains("virtual-time budget"));
    // Honesty check: the fig3 bug lives behind the killed replays, so the
    // report must NOT claim a clean verification silently — the timeout
    // records are the partial-coverage disclosure.
    assert!(report.errors.is_empty());
    assert!(report.to_string().contains("killed by the watchdog"));
}

#[test]
fn wall_clock_watchdog_also_fires() {
    let plan = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            // An infinite virtual-time spin also spins wall-clock; with no
            // vt budget only the wall-clock watchdog can end it.
            action: FaultAction::Livelock { step: 0.0 },
        })
        .guided_only();
    let sim = SimConfig::new(3)
        .with_policy(MatchPolicy::LowestRank)
        .with_budget(ReplayBudget::default().with_max_wall_clock(Duration::from_millis(250)));
    let report = DampiVerifier::new(sim)
        .with_fault_plan(plan)
        .verify(&patterns::fig3());
    assert!(!report.timeouts.is_empty(), "{report}");
    assert!(report.timeouts[0].detail.contains("wall-clock budget"));
}

#[test]
fn panicking_tool_stack_is_isolated_and_recorded() {
    // Rank 1 panics during its very first MPI operation of every guided
    // replay — which is the DAMPI layer's own shadow `comm_dup`, i.e. the
    // tool stack itself blows up, not the application. Matmul's SELF_RUN
    // seeds a multi-fork frontier, so surviving the first panicking replay
    // is observable as further interleavings.
    let plan = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Crash {
                message: "tool layer blew up".into(),
            },
        })
        .guided_only();
    let prog = Matmul::new(MatmulParams {
        n: 6,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let report = DampiVerifier::new(SimConfig::new(4))
        .with_fault_plan(plan)
        .verify(&prog);

    // The panic is confined to its replay: the frontier still drains, the
    // campaign terminates, and the panic is a recorded error with a
    // reproduction schedule — not a crashed verifier.
    assert!(report.interleavings >= 3, "{report}");
    let panics: Vec<_> = report
        .errors
        .iter()
        .filter(|e| matches!(e.error, MpiError::Panicked { .. }))
        .collect();
    assert_eq!(panics.len(), 1, "deduplicated panic record: {report}");
    assert_eq!(panics[0].rank, 1);
    assert!(panics[0].error.to_string().contains("tool layer blew up"));
    assert!(!panics[0].decisions.is_self_run());
}

#[test]
fn diverging_replay_is_retried_with_bounded_backoff() {
    // `symmetric_racers` puts its two wildcard consumers at *equal*
    // Lamport clocks, so the guided replay that branches on rank 1's
    // first epoch deterministically leaves rank 3's equal-clock epoch
    // unprescribed — a prefix divergence on every attempt (the §II-F
    // scalar-clock imprecision). On top of that, the fault plan
    // duplicates rank 0's first piggyback on the shadow communicator
    // (the first derived comm) during guided runs, perturbing the
    // replay's piggyback stream through the very path a retried
    // schedule re-executes.
    let plan = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(0),
            comm: Some(Comm(1)),
            nth: 0,
            action: FaultAction::DuplicateSend,
        })
        .guided_only();
    let cfg = DampiConfig {
        retry_backoff: RetryBackoff::constant(Duration::from_millis(1)),
        ..DampiConfig::default()
    };
    let sim = SimConfig::new(4).with_policy(MatchPolicy::LowestRank);
    let report = DampiVerifier::with_config(sim, cfg)
        .with_fault_plan(plan)
        .verify(&patterns::symmetric_racers());

    // The campaign terminates (no infinite retry loop), the divergences
    // are surfaced, and the retry count stays within the configured
    // budget for each replayed schedule.
    assert!(report.divergences > 0, "{report}");
    assert!(report.retries > 0, "{report}");
    assert!(
        report.retries <= (report.interleavings - 1) * 2,
        "at most divergence_retries (2) per replay: {report}"
    );
    // A divergence is not a program bug and must not be misreported as one.
    assert!(report.errors.is_empty(), "{report}");
    assert!(report.to_string().contains("divergences"));
}

#[test]
fn self_run_timeout_is_reported_not_fatal() {
    // The very first run blowing its budget must not panic the verifier:
    // it yields a 1-interleaving report whose timeout record says why
    // there is no coverage.
    let plan = FaultPlan::new().with_rule(FaultRule {
        rank: Some(0),
        comm: None,
        nth: 0,
        action: FaultAction::Livelock { step: 1.0 },
    });
    let sim = SimConfig::new(3)
        .with_policy(MatchPolicy::LowestRank)
        .with_budget(ReplayBudget::default().with_max_virtual_time(20.0));
    let report = DampiVerifier::new(sim)
        .with_fault_plan(plan)
        .verify(&patterns::fig3());
    assert_eq!(report.interleavings, 1);
    assert_eq!(report.timeouts.len(), 1);
    assert_eq!(report.timeouts[0].interleaving, 1);
    assert!(report.errors.is_empty());
}

#[test]
fn parallel_campaign_killed_mid_flight_resumes_to_sequential_result() {
    // The parallel satellite of the checkpoint/resume invariant: a
    // `jobs = 4` campaign is killed mid-flight (budget interrupt — same
    // on-disk journal state as a SIGKILL right after a commit, including
    // the v2 `in_flight` speculation snapshot), then resumed in parallel.
    // The completed campaign must match an uninterrupted *sequential* one
    // exactly: worker count is a wall-clock knob, never a coverage knob.
    let prog = Matmul::new(MatmulParams {
        n: 6,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let sim = SimConfig::new(4);

    let sequential = DampiVerifier::new(sim.clone()).verify(&prog);
    assert!(
        sequential.interleavings > 4,
        "need a campaign long enough to interrupt: {sequential}"
    );

    let path = journal_path("resume-parallel-matmul");
    let cfg = DampiConfig::default()
        .with_jobs(4)
        .with_max_interleavings(3)
        .with_journal(path.clone());
    let partial = DampiVerifier::with_config(sim.clone(), cfg).verify(&prog);
    assert!(partial.budget_exhausted);
    assert_eq!(partial.interleavings, 3, "parallel budget is exact");
    let journal = ExplorationJournal::load(&path).expect("journal written");
    assert_eq!(journal.interleavings, 3);
    assert!(!journal.frontier.is_empty(), "work must remain");

    let resumed = DampiVerifier::with_config(sim, DampiConfig::default().with_jobs(4))
        .verify_resumed(&prog, &path)
        .expect("resume");
    assert_eq!(resumed.interleavings, sequential.interleavings);
    assert_eq!(error_set(&resumed), error_set(&sequential));
    assert_eq!(
        resumed.total_discovered_matches(),
        sequential.total_discovered_matches()
    );
    let done = ExplorationJournal::load(&path).expect("final journal");
    assert!(done.frontier.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_verify_matches_sequential_on_symmetric_racers() {
    // The acceptance benchmark's parity check at the library level:
    // `jobs = 4` on `symmetric_racers` reports the same interleaving
    // count, error set, and coverage as `jobs = 1`.
    let sim = SimConfig::new(4).with_policy(MatchPolicy::LowestRank);
    let prog = patterns::symmetric_racers();
    let seq = DampiVerifier::new(sim.clone()).verify(&prog);
    let par = DampiVerifier::with_config(sim, DampiConfig::default().with_jobs(4)).verify(&prog);
    assert_eq!(par.interleavings, seq.interleavings);
    assert_eq!(error_set(&par), error_set(&seq));
    assert_eq!(
        par.total_discovered_matches(),
        seq.total_discovered_matches()
    );
    assert_eq!(par.timeouts.len(), seq.timeouts.len());
}
