//! Regression test for the `PiggybackMechanism::SeparateMessage`
//! mispairing: interleaved wildcard + named receives on one
//! `(source, tag, comm)` stream used to pair a deferred piggyback with the
//! wrong payload, silently corrupting late-message analysis.
//!
//! The fixture (`crates/workloads/fixtures/fuzz/separate_message_mispair
//! .json`, mined and shrunk by `dampi-fuzz`) builds the smallest shape
//! that makes the corruption *observable*: rank 2 posts wildcard,
//! wildcard, named on one stream, so under the old eager posting the named
//! receive's piggyback irecv stole the stream's first stamp. The stamp it
//! should have merged differs by exactly one tick, which flips a
//! late-message comparison on rank 1 between `Before` (late → alternate
//! discovered) and `Equal` (not late). Payload packing pairs stamps by
//! construction, so the two mechanisms must agree exactly — any
//! difference is a tool bug, not clock imprecision.

use dampi_core::{ClockMode, DampiConfig, DampiVerifier, PiggybackMechanism};
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::generated::{fixtures, GenProgram};

fn verify(pb: PiggybackMechanism) -> dampi_core::VerificationReport {
    let spec = fixtures::separate_message_mispair();
    let sim = SimConfig::new(spec.nprocs).with_policy(MatchPolicy::LowestRank);
    let cfg = DampiConfig::default()
        .with_clock_mode(ClockMode::Lamport)
        .with_piggyback(pb)
        .with_max_interleavings(200);
    DampiVerifier::with_config(sim, cfg).verify(&GenProgram::new(spec))
}

#[test]
fn separate_message_agrees_with_payload_packing() {
    let sep = verify(PiggybackMechanism::SeparateMessage);
    let packed = verify(PiggybackMechanism::PayloadPacking);
    assert_eq!(
        sep.error_signature(),
        packed.error_signature(),
        "piggyback mechanisms disagree on the error set"
    );
    assert_eq!(
        sep.discovered, packed.discovered,
        "piggyback mechanisms disagree on discovered match sets"
    );
    assert_eq!(
        sep.interleavings, packed.interleavings,
        "piggyback mechanisms disagree on the number of interleavings"
    );
    // The fixture's whole point: the stolen stamp used to *hide* an
    // alternate. Pin the correct answer, not just the agreement.
    let alt: Vec<_> = packed
        .discovered
        .values()
        .filter(|srcs| srcs.len() > 1)
        .collect();
    assert_eq!(alt.len(), 1, "exactly one epoch has an alternate");
}
