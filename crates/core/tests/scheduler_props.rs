//! Property-based tests of the schedule generator (depth-first walk,
//! bounded mixing, dedup) over synthetic epoch structures.

use std::collections::{BTreeSet, HashSet};

use dampi_clocks::ClockStamp;
use dampi_core::bounds::MixingBound;
use dampi_core::decisions::DecisionSet;
use dampi_core::epoch::{EpochRecord, NdKind, ToolRunStats};
use dampi_core::scheduler::{explore, explore_parallel, ExploreOptions, RunResult};
use dampi_mpi::program::RunOutcome;
use dampi_mpi::{Comm, LeakReport};
use proptest::prelude::*;

/// Synthetic program model: independent epochs on rank 0, epoch `i` having
/// `alt_counts[i]` possible sources (0..alt_counts[i]). The run function
/// honors forced decisions and defaults to source 0, exactly like a
/// confluent master/slave program whose matches don't enable new epochs.
/// `Fn + Sync` so it also drives `explore_parallel`'s worker pool.
fn model_run(alt_counts: Vec<usize>) -> impl Fn(&DecisionSet) -> RunResult + Sync {
    move |ds: &DecisionSet| {
        let epochs: Vec<EpochRecord> = alt_counts
            .iter()
            .enumerate()
            .map(|(i, &nsrc)| {
                let clock = i as u64;
                let forced = ds.lookup(0, clock);
                let matched = forced.unwrap_or(0);
                EpochRecord {
                    rank: 0,
                    clock,
                    stamp: ClockStamp::Lamport(clock + 1),
                    comm: Comm::WORLD,
                    tag_spec: 0,
                    kind: NdKind::Recv,
                    in_region: false,
                    guided: forced.is_some(),
                    matched_src: Some(matched),
                    alternates: (0..nsrc).filter(|s| *s != matched).collect::<BTreeSet<_>>(),
                }
            })
            .collect();
        RunResult {
            outcome: RunOutcome {
                rank_errors: vec![None],
                leaks: LeakReport::default(),
                fatal: None,
                per_rank_vt: vec![1.0],
                wall_elapsed: std::time::Duration::ZERO,
                makespan: 1.0,
            },
            epochs,
            stats: ToolRunStats::default(),
        }
    }
}

fn opts(bound: MixingBound) -> ExploreOptions {
    ExploreOptions {
        bound,
        max_interleavings: Some(2_000_000),
        retry_backoff: dampi_core::RetryBackoff::ZERO,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unbounded exploration of independent epochs covers exactly the
    /// product of per-epoch choice counts — full coverage, no duplicates.
    #[test]
    fn unbounded_count_is_product_of_choices(
        alt_counts in prop::collection::vec(1usize..4, 1..6),
    ) {
        let expected: u64 = alt_counts.iter().map(|&n| n as u64).product();
        let ex = explore(model_run(alt_counts), &opts(MixingBound::Unbounded));
        prop_assert_eq!(ex.interleavings, expected);
    }

    /// k = 0 is the paper's linear regime: one replay per (epoch,
    /// alternate) pair.
    #[test]
    fn k0_count_is_one_plus_sum_of_alternates(
        alt_counts in prop::collection::vec(1usize..5, 1..8),
    ) {
        let expected: u64 = 1 + alt_counts.iter().map(|&n| (n - 1) as u64).sum::<u64>();
        let ex = explore(model_run(alt_counts), &opts(MixingBound::K(0)));
        prop_assert_eq!(ex.interleavings, expected);
    }

    /// Interleaving counts are monotone in k and bounded by full coverage.
    #[test]
    fn bounded_counts_are_monotone_in_k(
        alt_counts in prop::collection::vec(1usize..4, 1..6),
    ) {
        let full = explore(model_run(alt_counts.clone()), &opts(MixingBound::Unbounded))
            .interleavings;
        let mut prev = 0;
        for k in 0..4u32 {
            let n = explore(model_run(alt_counts.clone()), &opts(MixingBound::K(k)))
                .interleavings;
            prop_assert!(n >= prev, "k={k}: {n} < {prev}");
            prop_assert!(n <= full, "k={k}: {n} > full {full}");
            prev = n;
        }
        // A window as deep as the program is full coverage.
        let deep = explore(
            model_run(alt_counts.clone()),
            &opts(MixingBound::K(alt_counts.len() as u32)),
        )
        .interleavings;
        prop_assert_eq!(deep, full);
    }

    /// Every executed schedule is distinct (the visited-set dedup): the
    /// run function observes no repeated decision signature.
    #[test]
    fn no_schedule_runs_twice(
        alt_counts in prop::collection::vec(1usize..4, 1..5),
        k in 0u32..3,
    ) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut dup = false;
        let inner = model_run(alt_counts);
        let run = |ds: &DecisionSet| {
            if !seen.insert(ds.signature()) {
                dup = true;
            }
            inner(ds)
        };
        let _ = explore(run, &opts(MixingBound::K(k)));
        prop_assert!(!dup, "a decision signature was executed twice");
    }

    /// Coverage invariant: with unbounded search, every source of every
    /// epoch appears in the discovered map.
    #[test]
    fn unbounded_discovers_every_source(
        alt_counts in prop::collection::vec(1usize..4, 1..5),
    ) {
        let ex = explore(model_run(alt_counts.clone()), &opts(MixingBound::Unbounded));
        for (i, &nsrc) in alt_counts.iter().enumerate() {
            let found = &ex.discovered[&(0, i as u64)];
            prop_assert_eq!(found.len(), nsrc, "epoch {}: {:?}", i, found);
        }
    }

    /// k = 0 discovers the same coverage as unbounded for independent
    /// epochs — full coverage at linear cost, the bounded-mixing pitch.
    #[test]
    fn k0_coverage_equals_unbounded_for_independent_epochs(
        alt_counts in prop::collection::vec(1usize..4, 1..6),
    ) {
        let a = explore(model_run(alt_counts.clone()), &opts(MixingBound::K(0)));
        let b = explore(model_run(alt_counts), &opts(MixingBound::Unbounded));
        prop_assert_eq!(a.discovered, b.discovered);
    }

    /// The parallel driver's contract, as a property over random epoch
    /// structures, mixing bounds, and budgets: `jobs = 4` commits exactly
    /// the exploration `jobs = 1` produces — same interleaving count, same
    /// coverage map, same budget verdict, bitwise-equal virtual time.
    #[test]
    fn parallel_exploration_is_bit_identical_to_sequential(
        alt_counts in prop::collection::vec(1usize..4, 1..6),
        k in 0u32..4,
        budget in prop::collection::vec(1u64..40, 0..2),
    ) {
        let bound = if k == 3 { MixingBound::Unbounded } else { MixingBound::K(k) };
        let o = ExploreOptions {
            // An empty `budget` vec means unbounded (well, the test cap).
            max_interleavings: Some(budget.first().copied().unwrap_or(2_000_000)),
            ..opts(bound)
        };
        let seq = explore(model_run(alt_counts.clone()), &o);
        let par = explore_parallel(
            model_run(alt_counts),
            &ExploreOptions { jobs: 4, ..o },
        );
        prop_assert_eq!(par.interleavings, seq.interleavings);
        prop_assert_eq!(par.discovered, seq.discovered);
        prop_assert_eq!(par.budget_exhausted, seq.budget_exhausted);
        prop_assert_eq!(par.errors.len(), seq.errors.len());
        prop_assert_eq!(par.timeouts.len(), seq.timeouts.len());
        prop_assert_eq!(
            par.total_virtual_time.to_bits(),
            seq.total_virtual_time.to_bits()
        );
    }
}
