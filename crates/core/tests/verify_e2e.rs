//! End-to-end verification tests: DAMPI against the paper's example
//! programs and representative non-deterministic workload patterns.

use bytes::Bytes;
use dampi_core::tool::{PCONTROL_LOOP_BEGIN, PCONTROL_LOOP_END};
use dampi_core::{ClockMode, DampiConfig, DampiVerifier, MixingBound, PiggybackMechanism};
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::{Comm, FnProgram, MatchPolicy, Mpi, MpiError, SimConfig, ANY_SOURCE, ANY_TAG};

fn verifier(n: usize) -> DampiVerifier {
    DampiVerifier::new(SimConfig::new(n))
}

fn with_cfg(n: usize, cfg: DampiConfig) -> DampiVerifier {
    DampiVerifier::with_config(SimConfig::new(n), cfg)
}

/// Paper Fig. 3: P0 and P2 race into P1's wildcard receive; the program
/// errors iff P2's message wins. The barrier before the receive plus the
/// `LowestRank` match policy model a *biased native runtime* that always
/// lets P0 win — the situation where conventional testing masks the bug
/// and only DAMPI's guided replay exposes it (paper §I).
fn fig3_program() -> FnProgram<impl Fn(&mut dyn Mpi) -> dampi_mpi::Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            2 => {
                mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(33))?;
                mpi.barrier(Comm::WORLD)?;
            }
            _ => {
                mpi.barrier(Comm::WORLD)?;
                let (_, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                let x = codec::decode_u64(&data);
                user_assert(x != 33, "x == 33")?;
                // Consume the other message so the run stays clean.
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
        }
        Ok(())
    })
}

/// Verifier whose native runtime deterministically prefers the lowest
/// sender rank — the biased runtime of the Fig. 3 scenario.
fn biased_verifier(n: usize) -> DampiVerifier {
    DampiVerifier::new(SimConfig::new(n).with_policy(MatchPolicy::LowestRank))
}

#[test]
fn fig3_bug_found_by_replay() {
    let report = biased_verifier(3).verify(&fig3_program());
    assert!(
        report.interleavings >= 2,
        "must explore the alternate match"
    );
    assert_eq!(report.assertion_failures(), 1, "{report}");
    // The reproduction recipe must force P2's message.
    let err = &report.errors[0];
    assert!(matches!(err.error, MpiError::UserAssert { .. }));
    assert!(err.decisions.decisions.iter().any(|d| d.src == 2));
}

#[test]
fn fig3_bug_found_even_without_second_receive() {
    // The unmatched message is only seen by the finalize-time drain:
    // exactly the paper's Fig. 3 as written.
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(22))?,
            2 => mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(33))?,
            _ => {
                let (_, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                user_assert(codec::decode_u64(&data) != 33, "x == 33")?;
            }
        }
        Ok(())
    });
    let report = verifier(3).verify(&prog);
    assert_eq!(report.assertion_failures(), 1, "{report}");
}

#[test]
fn deterministic_program_needs_one_interleaving() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            mpi.send(Comm::WORLD, 1, 0, Bytes::from_static(b"d"))?;
        } else if mpi.world_rank() == 1 {
            let _ = mpi.recv(Comm::WORLD, 0, 0)?;
        }
        mpi.barrier(Comm::WORLD)?;
        Ok(())
    });
    let report = verifier(4).verify(&prog);
    assert_eq!(report.interleavings, 1);
    assert_eq!(report.wildcards_analyzed, 0);
    assert!(report.clean(), "{report}");
}

#[test]
fn master_slave_covers_all_match_orders() {
    // Master posts S wildcard receives; S slaves each send once. The full
    // space has S! orders but distinct matched-source *sets* per epoch are
    // what DAMPI covers: each epoch must discover every slave as a
    // potential match.
    let slaves = 3usize;
    let prog = FnProgram(move |mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            for _ in 0..slaves {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            }
        } else {
            mpi.send(
                Comm::WORLD,
                0,
                1,
                codec::encode_u64(mpi.world_rank() as u64),
            )?;
        }
        Ok(())
    });
    let report = verifier(slaves + 1).verify(&prog);
    assert!(report.clean(), "{report}");
    // 3 epochs on rank 0; first must have all 3 slaves as possibilities.
    let first_epoch = report.discovered.iter().next().expect("has epochs");
    assert_eq!(first_epoch.1.len(), slaves, "{report}");
    // Full coverage of distinct orders = 3! = 6 interleavings.
    assert_eq!(report.interleavings, 6, "{report}");
}

#[test]
fn bounded_mixing_reduces_interleavings_on_real_program() {
    let slaves = 3usize;
    let make = move || {
        FnProgram(move |mpi: &mut dyn Mpi| {
            if mpi.world_rank() == 0 {
                for _ in 0..slaves {
                    let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
                }
            } else {
                mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(1))?;
            }
            Ok(())
        })
    };
    let full = verifier(slaves + 1).verify(&make()).interleavings;
    let k0 = with_cfg(
        slaves + 1,
        DampiConfig::default().with_bound(MixingBound::K(0)),
    )
    .verify(&make())
    .interleavings;
    let k1 = with_cfg(
        slaves + 1,
        DampiConfig::default().with_bound(MixingBound::K(1)),
    )
    .verify(&make())
    .interleavings;
    assert!(k0 <= k1, "k0={k0} k1={k1}");
    assert!(k1 <= full, "k1={k1} full={full}");
    assert!(k0 < full, "k0={k0} must prune full={full}");
}

#[test]
fn loop_region_abstraction_suppresses_branching() {
    let slaves = 3usize;
    let prog = FnProgram(move |mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            mpi.pcontrol(PCONTROL_LOOP_BEGIN)?;
            for _ in 0..slaves {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            }
            mpi.pcontrol(PCONTROL_LOOP_END)?;
        } else {
            mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(1))?;
        }
        Ok(())
    });
    let report = verifier(slaves + 1).verify(&prog);
    assert_eq!(
        report.interleavings, 1,
        "regions must pin matches to SELF_RUN: {report}"
    );
    assert_eq!(report.wildcards_analyzed, slaves as u64);
}

/// Paper Fig. 4: the cross-coupled pattern where Lamport clocks lose
/// completeness and vector clocks do not.
///
/// P0: Isend(to:1) ... Isend(to:2)
/// P1: Irecv(*)    ... Isend(to:1)  (rank 2's send)
/// P2: Irecv(*)    ... Isend(to:2)  (rank 1's send)
/// P3: Isend(to:2) ... Isend(to:1)
fn fig4_program() -> FnProgram<impl Fn(&mut dyn Mpi) -> dampi_mpi::Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 0, Bytes::from_static(b"p0"))?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                mpi.send(Comm::WORLD, 2, 0, Bytes::from_static(b"p1"))?;
                // Consume the second message that may arrive (from P2/P3).
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                mpi.send(Comm::WORLD, 1, 0, Bytes::from_static(b"p2"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
            3 => {
                mpi.send(Comm::WORLD, 2, 0, Bytes::from_static(b"p3"))?;
            }
            _ => unreachable!(),
        }
        Ok(())
    })
}

/// §II-F, reproduced deterministically: force the paper's initial matching
/// (P0→P1, P3→P2) via an explicit decisions file and run once in each
/// clock mode. P2's forwarded send is *concurrent* with P1's first epoch:
/// vector clocks classify it late (a potential match); its Lamport
/// projection equals the epoch's clock, so Lamport clocks must judge it
/// "causally after" and miss it — the precise incompleteness the paper
/// describes.
#[test]
fn fig4_lamport_misses_cross_coupled_match_vector_finds_it() {
    use dampi_core::{DecisionSet, EpochDecision};
    let initial = DecisionSet::guided(
        0,
        vec![
            EpochDecision {
                rank: 1,
                clock: 0,
                src: 0,
            },
            EpochDecision {
                rank: 2,
                clock: 0,
                src: 3,
            },
        ],
    );
    let run_mode = |mode: ClockMode| {
        let v = DampiVerifier::with_config(
            SimConfig::new(4),
            DampiConfig::default().with_clock_mode(mode),
        );
        let res = v.instrumented_run(&fig4_program(), &initial);
        assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
        let e10 = res
            .epochs
            .iter()
            .find(|e| e.rank == 1 && e.clock == 0)
            .expect("rank 1's first epoch exists")
            .clone();
        e10
    };
    let lam = run_mode(ClockMode::Lamport);
    let vec = run_mode(ClockMode::Vector);
    assert_eq!(lam.matched_src, Some(0));
    assert_eq!(vec.matched_src, Some(0));
    assert!(
        !lam.alternates.contains(&2),
        "Lamport clocks must miss P2's concurrent forward: {lam:?}"
    );
    assert!(
        vec.alternates.contains(&2),
        "vector clocks must find P2's concurrent forward: {vec:?}"
    );
}

/// Paper Fig. 10: Irecv(*) → Barrier → (late send) → Wait. The monitor
/// must flag the clock transmission that happens before the Wait.
#[test]
fn fig10_unsafe_pattern_monitor_fires() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            1 => {
                let req = mpi.irecv(Comm::WORLD, ANY_SOURCE, 0)?;
                mpi.barrier(Comm::WORLD)?; // transmits the clock: unsafe
                let _ = mpi.wait(req)?;
            }
            _ => {
                mpi.barrier(Comm::WORLD)?;
                mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(33))?;
            }
        }
        Ok(())
    });
    let report = verifier(3).verify(&prog);
    assert!(
        report.unsafe_alerts > 0,
        "monitor must flag the Fig. 10 pattern: {report}"
    );
}

#[test]
fn safe_pattern_raises_no_alert() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            1 => {
                let (_, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?; // completed first
                mpi.barrier(Comm::WORLD)?;
            }
            _ => {
                mpi.barrier(Comm::WORLD)?;
            }
        }
        Ok(())
    });
    let report = verifier(3).verify(&prog);
    assert_eq!(report.unsafe_alerts, 0, "{report}");
}

#[test]
fn deadlock_in_alternate_interleaving_found() {
    // Rank 1 receives twice from anyone. If the FIRST message is from rank
    // 2, it then (incorrectly) receives from rank 0 only — but rank 0
    // already sent its single message, which was consumed as the first:
    // hence a deadlock exists in the schedule where rank 2 wins first.
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(0))?,
            2 => mpi.send(Comm::WORLD, 1, 0, codec::encode_u64(2))?,
            _ => {
                let (st, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                if st.source == 2 {
                    // Bug: expects another message from rank 2.
                    let _ = mpi.recv(Comm::WORLD, 2, 0)?;
                } else {
                    let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                }
            }
        }
        Ok(())
    });
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let report = DampiVerifier::new(sim).verify(&prog);
    assert!(
        report.deadlocks() >= 1,
        "the rank-2-first schedule deadlocks: {report}"
    );
}

#[test]
fn leaks_reported_through_verifier() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let _leak = mpi.comm_dup(Comm::WORLD)?;
        if mpi.world_rank() == 0 {
            let _req_leak = mpi.irecv(Comm::WORLD, ANY_SOURCE, 5)?;
        } else if mpi.world_rank() == 1 {
            mpi.send(Comm::WORLD, 0, 5, Bytes::from_static(b"x"))?;
        }
        Ok(())
    });
    let report = verifier(2).verify(&prog);
    assert!(report.leaks.has_comm_leak(), "{report}");
    assert!(report.leaks.has_request_leak(), "{report}");
    // Exactly the application's one leaked comm — tool shadows are freed.
    assert_eq!(report.leaks.comm_leaks.len(), 1, "{:?}", report.leaks);
}

#[test]
fn payload_packing_mechanism_works() {
    let cfg = DampiConfig::default().with_piggyback(PiggybackMechanism::PayloadPacking);
    let report =
        DampiVerifier::with_config(SimConfig::new(3).with_policy(MatchPolicy::LowestRank), cfg)
            .verify(&fig3_program());
    assert_eq!(report.assertion_failures(), 1, "{report}");
}

#[test]
fn vector_mode_full_session() {
    let cfg = DampiConfig::default().with_clock_mode(ClockMode::Vector);
    let report =
        DampiVerifier::with_config(SimConfig::new(3).with_policy(MatchPolicy::LowestRank), cfg)
            .verify(&fig3_program());
    assert_eq!(report.assertion_failures(), 1, "{report}");
}

#[test]
fn wildcard_probe_is_an_epoch() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            let info = mpi.probe(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
            let _ = mpi.recv(Comm::WORLD, info.src as i32, info.tag)?;
            let info = mpi.probe(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
            let _ = mpi.recv(Comm::WORLD, info.src as i32, info.tag)?;
        } else {
            mpi.send(
                Comm::WORLD,
                0,
                mpi.world_rank() as i32,
                codec::encode_u64(7),
            )?;
        }
        Ok(())
    });
    let report = verifier(3).verify(&prog);
    assert!(report.wildcards_analyzed >= 2, "{report}");
    assert!(report.clean(), "{report}");
}

#[test]
fn coverage_is_schedule_independent() {
    // Verify twice: SELF_RUN races may vary which source matches first,
    // but the *coverage* (union of discovered matches per epoch) must
    // agree on symmetric programs where all sends are mutually concurrent.
    let slaves = 3usize;
    let make = move || {
        FnProgram(move |mpi: &mut dyn Mpi| {
            if mpi.world_rank() == 0 {
                for _ in 0..slaves {
                    let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
                }
            } else {
                mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(1))?;
            }
            Ok(())
        })
    };
    let r1 = verifier(slaves + 1).verify(&make());
    let r2 = verifier(slaves + 1).verify(&make());
    assert_eq!(r1.discovered, r2.discovered);
    assert_eq!(r1.interleavings, r2.interleavings);
}

#[test]
fn max_interleavings_budget_respected() {
    let slaves = 4usize;
    let prog = FnProgram(move |mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            for _ in 0..slaves {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            }
        } else {
            mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(1))?;
        }
        Ok(())
    });
    let cfg = DampiConfig::default().with_max_interleavings(5);
    let report = with_cfg(slaves + 1, cfg).verify(&prog);
    assert_eq!(report.interleavings, 5);
    assert!(report.budget_exhausted);
}

#[test]
fn stop_on_first_error_short_circuits() {
    let cfg = DampiConfig::default().stop_at_first_error();
    let report =
        DampiVerifier::with_config(SimConfig::new(3).with_policy(MatchPolicy::LowestRank), cfg)
            .verify(&fig3_program());
    assert_eq!(report.errors.len(), 1);
}

#[test]
fn overhead_run_reports_slowdown() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        let n = mpi.world_size();
        if mpi.world_rank() == 0 {
            for _ in 1..n {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
        } else {
            mpi.compute(1e-4)?;
            mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(1))?;
        }
        mpi.barrier(Comm::WORLD)?;
        Ok(())
    });
    let v = verifier(8);
    let (slowdown, native, inst) = v.slowdown(&prog);
    assert!(native.succeeded());
    assert!(inst.outcome.succeeded(), "{:?}", inst.outcome.fatal);
    assert!(
        slowdown >= 1.0,
        "instrumentation cannot be free: {slowdown}"
    );
    assert!(slowdown < 20.0, "overhead should be bounded: {slowdown}");
    assert_eq!(inst.stats.wildcards, 7);
}

#[test]
fn decisions_roundtrip_through_file_reproduce_bug() {
    // Take the bug's reproduction decisions, save/load them, and re-run a
    // single guided execution: the bug must re-manifest deterministically.
    let v = biased_verifier(3);
    let report = v.verify(&fig3_program());
    let repro = &report.errors[0].decisions;
    let dir = std::env::temp_dir().join("dampi-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repro.json");
    repro.save(&path).unwrap();
    let loaded = dampi_core::DecisionSet::load(&path).unwrap();
    let rerun = v.instrumented_run(&fig3_program(), &loaded);
    let bugs = rerun.outcome.program_bugs();
    assert!(
        bugs.iter()
            .any(|b| matches!(b.error, MpiError::UserAssert { .. })),
        "replaying the saved schedule must re-trigger the bug: {bugs:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// The §V proposed fix, implemented and demonstrated: with the paired
/// transmittal clock, the Fig. 10 barrier no longer leaks the wildcard's
/// tick, P2's post-barrier send is classified late, and the x==33 crash is
/// found by replay — the coverage hole closes.
#[test]
fn fig10_bug_found_with_deferred_clock_sync() {
    let prog = || {
        FnProgram(|mpi: &mut dyn Mpi| {
            match mpi.world_rank() {
                0 => {
                    mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(22))?;
                    mpi.barrier(Comm::WORLD)?;
                }
                1 => {
                    let req = mpi.irecv(Comm::WORLD, ANY_SOURCE, 22)?;
                    mpi.barrier(Comm::WORLD)?;
                    let (_, data) = mpi.wait(req)?;
                    user_assert(codec::decode_u64(&data) != 33, "x == 33")?;
                    let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
                }
                _ => {
                    mpi.barrier(Comm::WORLD)?;
                    mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(33))?;
                }
            }
            Ok(())
        })
    };
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    // Paper-faithful DAMPI: the pattern escapes coverage; the monitor is
    // the only defense.
    let plain = DampiVerifier::new(sim.clone()).verify(&prog());
    assert_eq!(
        plain.assertion_failures(),
        0,
        "plain Lamport DAMPI cannot see the competitor: {plain}"
    );
    assert!(plain.unsafe_alerts > 0, "but the monitor warns: {plain}");
    // With the paired-clock fix, the competitor is discovered and forced.
    let fixed = DampiVerifier::with_config(sim, DampiConfig::default().with_deferred_clock_sync())
        .verify(&prog());
    assert_eq!(
        fixed.assertion_failures(),
        1,
        "deferred clock sync must close the coverage hole: {fixed}"
    );
}

/// Algorithm 1's horizon semantics: with a decision set whose
/// `guided_epoch` covers only the first of two wildcard phases, the layer
/// forces the first epoch (guided = true) and reverts to SELF_RUN for the
/// second (guided = false), re-discovering its alternates.
#[test]
fn guided_mode_reverts_past_the_horizon() {
    let prog = FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            // Phase 1: one wildcard receive (epoch clock 0).
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
            mpi.barrier(Comm::WORLD)?;
            // Phase 2: two more wildcard receives, clocks past the horizon.
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 2)?;
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 2)?;
        } else {
            mpi.send(Comm::WORLD, 0, 1, codec::encode_u64(1))?;
            mpi.barrier(Comm::WORLD)?;
            mpi.send(Comm::WORLD, 0, 2, codec::encode_u64(2))?;
        }
        Ok(())
    });
    let v = verifier(3);
    // Force epoch 0 to source 2; horizon = clock 0 only.
    let ds = dampi_core::DecisionSet::guided(
        0,
        vec![dampi_core::EpochDecision {
            rank: 0,
            clock: 0,
            src: 2,
        }],
    );
    let run = v.instrumented_run(&prog, &ds);
    assert!(run.outcome.succeeded(), "{:?}", run.outcome.fatal);
    let mut epochs = run.epochs.clone();
    epochs.sort_by_key(|e| e.clock);
    assert_eq!(epochs.len(), 4);
    assert!(epochs[0].guided, "first epoch is forced");
    assert_eq!(epochs[0].matched_src, Some(2), "forced source wins");
    for e in &epochs[1..] {
        assert!(!e.guided, "past the horizon the mode is SELF_RUN: {e:?}");
    }
    // Phase-2 epochs still discover their alternates (both senders).
    let phase2: Vec<_> = epochs.iter().filter(|e| e.tag_spec == 2).collect();
    assert_eq!(phase2.len(), 2);
    let all: std::collections::BTreeSet<usize> = phase2
        .iter()
        .flat_map(|e| {
            e.matched_src
                .into_iter()
                .chain(e.alternates.iter().copied())
        })
        .collect();
    assert_eq!(all, std::collections::BTreeSet::from([1, 2]));
}

/// Reproduction schedules shrink to their essential decisions: the fig3
/// bug needs exactly one forced match.
#[test]
fn minimize_shrinks_fig3_repro_to_one_decision() {
    let v = biased_verifier(3);
    let report = v.verify(&fig3_program());
    let err = report
        .errors
        .iter()
        .find(|e| matches!(e.error, MpiError::UserAssert { .. }))
        .expect("bug found");
    let (minimal, runs) = v.minimize_error(&fig3_program(), err);
    assert_eq!(
        minimal.decisions.len(),
        1,
        "only the P2-wins decision matters: {minimal:?}"
    );
    assert_eq!(minimal.decisions[0].src, 2);
    // And it still reproduces.
    let rerun = v.instrumented_run(&fig3_program(), &minimal);
    assert!(rerun
        .outcome
        .program_bugs()
        .iter()
        .any(|b| matches!(b.error, MpiError::UserAssert { .. })));
    let _ = runs;
}
