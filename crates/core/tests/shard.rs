//! Process-sharding robustness tests, run hermetically with the
//! in-process launcher: supervisor and "workers" are threads talking over
//! in-memory pipes, so every chaos scenario (kills, wedges, corrupt
//! frames) runs in milliseconds with no real processes.
//!
//! The load-bearing property throughout: a sharded campaign's report and
//! checkpoint journal are **byte-identical** to the unsharded ones, no
//! matter what faults the fleet absorbs along the way.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use dampi_core::scheduler::{ExploreOptions, RunResult};
use dampi_core::shard::{InProcessLauncher, ShardOptions};
use dampi_core::{DampiConfig, DampiVerifier, DecisionSet};
use dampi_mpi::fault::{WorkerFaultKind, WorkerFaultPlan};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::adlb::{Adlb, AdlbParams};
use dampi_workloads::patterns;

fn tmp_journal(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dampi-shard-test-{}-{tag}-{n}.journal",
        std::process::id()
    ))
}

fn racers_verifier(journal: PathBuf) -> DampiVerifier {
    DampiVerifier::with_config(
        SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
        DampiConfig::default().with_journal(journal),
    )
}

/// In-process launcher whose workers replay through `verifier` — the
/// exact analog of the CLI spawning `dampi-cli … --worker` processes.
fn launcher_for(verifier: &Arc<DampiVerifier>, prog: &Arc<dyn MpiProgram>) -> InProcessLauncher {
    let v = Arc::clone(verifier);
    let p = Arc::clone(prog);
    let run: Arc<dyn Fn(&DecisionSet) -> RunResult + Send + Sync> =
        Arc::new(move |ds| v.instrumented_run(p.as_ref(), ds));
    InProcessLauncher::new(run, &ExploreOptions::default())
}

/// Fast failure detection for chaos tests: in-process beacons arrive
/// every 20ms, so a 150ms silence window and 400ms lease are generous.
fn chaos_shard_opts(shards: usize) -> ShardOptions {
    ShardOptions {
        shards,
        heartbeat_timeout: Duration::from_millis(150),
        lease: Duration::from_millis(400),
        ..ShardOptions::default()
    }
}

#[test]
fn sharded_report_and_journal_match_unsharded() {
    let prog: Arc<dyn MpiProgram> = Arc::new(patterns::symmetric_racers());
    let base_j = tmp_journal("base");
    let shard_j = tmp_journal("shard");

    let base = racers_verifier(base_j.clone()).verify(prog.as_ref());
    let v = Arc::new(racers_verifier(shard_j.clone()));
    let launcher = launcher_for(&v, &prog);
    let opts = ShardOptions {
        shards: 2,
        ..ShardOptions::default()
    };
    let sharded = v
        .verify_sharded(prog.as_ref(), &launcher, &opts)
        .expect("clean sharded campaign");

    assert_eq!(
        base.to_json().to_string(),
        sharded.to_json().to_string(),
        "report JSON must be byte-identical"
    );
    let base_bytes = std::fs::read(&base_j).expect("baseline journal");
    let shard_bytes = std::fs::read(&shard_j).expect("sharded journal");
    assert_eq!(base_bytes, shard_bytes, "journal must be byte-identical");
    let _ = std::fs::remove_file(base_j);
    let _ = std::fs::remove_file(shard_j);
}

#[test]
fn fleet_recovers_from_every_fault_kind() {
    let prog: Arc<dyn MpiProgram> = Arc::new(patterns::symmetric_racers());
    let base_j = tmp_journal("fk-base");
    let base = racers_verifier(base_j.clone()).verify(prog.as_ref());

    for kind in [
        WorkerFaultKind::Kill,
        WorkerFaultKind::ExitBeforeAck,
        WorkerFaultKind::StallHeartbeats,
        WorkerFaultKind::WedgeReplay,
        WorkerFaultKind::CorruptResult,
    ] {
        let shard_j = tmp_journal("fk");
        let v = Arc::new(racers_verifier(shard_j.clone()));
        let launcher = launcher_for(&v, &prog);
        let mut opts = chaos_shard_opts(2);
        opts.fault = Some(WorkerFaultPlan {
            kind,
            nth_job: 1,
            persistent: false,
        });
        let sharded = v
            .verify_sharded(prog.as_ref(), &launcher, &opts)
            .unwrap_or_else(|e| panic!("campaign under {kind:?} failed: {e}"));
        assert_eq!(
            base.to_json().to_string(),
            sharded.to_json().to_string(),
            "report diverged under injected {kind:?}"
        );
        assert_eq!(
            std::fs::read(&base_j).unwrap(),
            std::fs::read(&shard_j).unwrap(),
            "journal diverged under injected {kind:?}"
        );
        let _ = std::fs::remove_file(shard_j);
    }
    let _ = std::fs::remove_file(base_j);
}

/// A single-slot fleet whose worker dies on every first job can never
/// complete the root subtree: after `max_attempts` losses the subtree
/// must be quarantined and reported as an honest timeout record — the
/// campaign terminates instead of hanging or lying.
#[test]
fn poison_subtree_quarantines_with_honest_partial_coverage() {
    let prog: Arc<dyn MpiProgram> = Arc::new(patterns::symmetric_racers());
    let v = Arc::new(DampiVerifier::with_config(
        SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
        DampiConfig::default(),
    ));
    let launcher = launcher_for(&v, &prog);
    let mut opts = chaos_shard_opts(1);
    opts.max_attempts = 2;
    opts.fault = Some(WorkerFaultPlan {
        kind: WorkerFaultKind::Kill,
        nth_job: 0,
        persistent: true,
    });
    let report = v
        .verify_sharded(prog.as_ref(), &launcher, &opts)
        .expect("quarantine must terminate the campaign, not kill it");
    assert_eq!(report.quarantined, 1, "root subtree quarantined");
    assert_eq!(report.timeouts.len(), 1, "quarantine is a timeout record");
    assert!(
        report.timeouts[0].detail.contains("lost with its worker"),
        "detail names the loss: {}",
        report.timeouts[0].detail
    );
    assert_eq!(report.interleavings, 1, "only the quarantine commit");
    assert!(report.errors.is_empty(), "no invented program errors");
}

/// Drain mid-campaign via the SIGTERM flag, then resume from the
/// checkpoint: the union must converge to the unsharded result. ADLB's
/// free run folds wall-clock into its virtual time, so two independent
/// campaigns are not bit-identical — the byte-parity claims live in the
/// deterministic racers tests above; here we check the semantic fields.
#[test]
fn drain_checkpoint_resume_converges() {
    let prog: Arc<dyn MpiProgram> = Arc::new(Adlb::new(AdlbParams::default()));
    let mk_cfg = |j: PathBuf| {
        DampiConfig::default()
            .with_max_interleavings(200)
            .with_journal(j)
    };
    let base_j = tmp_journal("drain-base");
    let base =
        DampiVerifier::with_config(SimConfig::new(4), mk_cfg(base_j.clone())).verify(prog.as_ref());

    let shard_j = tmp_journal("drain-shard");
    let v = Arc::new(DampiVerifier::with_config(
        SimConfig::new(4),
        mk_cfg(shard_j.clone()),
    ));
    let launcher = launcher_for(&v, &prog);
    let drain = Arc::new(AtomicBool::new(true));
    let mut opts = ShardOptions {
        shards: 2,
        // Fast ticks so the pre-set drain flag is noticed immediately.
        heartbeat_timeout: Duration::from_millis(150),
        lease: Duration::from_millis(400),
        ..ShardOptions::default()
    };
    opts.drain = Some(Arc::clone(&drain));
    let partial = v
        .verify_sharded(prog.as_ref(), &launcher, &opts)
        .expect("drained campaign");
    assert!(partial.drained, "pre-set flag must drain the campaign");
    assert!(
        partial.interleavings < 200,
        "drained early, not at the budget: {}",
        partial.interleavings
    );

    opts.drain = None;
    let resumed = v
        .verify_sharded_resumed(prog.as_ref(), &launcher, &opts, &shard_j)
        .expect("resumed campaign");
    assert!(!resumed.drained);
    assert_eq!(resumed.interleavings, base.interleavings);
    assert_eq!(resumed.budget_exhausted, base.budget_exhausted);
    assert_eq!(
        serde_json::to_string(&resumed.errors).unwrap(),
        serde_json::to_string(&base.errors).unwrap(),
        "resumed error set must converge to the uninterrupted one"
    );
    let _ = std::fs::remove_file(base_j);
    let _ = std::fs::remove_file(shard_j);
}

/// Baseline racers report, computed once for the property below.
fn racers_baseline() -> &'static (String, Vec<u8>) {
    static BASE: OnceLock<(String, Vec<u8>)> = OnceLock::new();
    BASE.get_or_init(|| {
        let prog = patterns::symmetric_racers();
        let j = tmp_journal("prop-base");
        let report = racers_verifier(j.clone()).verify(&prog);
        let bytes = std::fs::read(&j).expect("baseline journal");
        let _ = std::fs::remove_file(j);
        (report.to_json().to_string(), bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Re-dispatch is idempotent: under a random worker-kill schedule
    /// (fault kind × victim slot × trigger job × persistence × fleet
    /// width), the error set, report JSON, and journal bytes are
    /// identical to the unsharded run. `max_attempts` is set high enough
    /// that recovery is always possible, so any divergence here is a
    /// double-commit or a lost subtree.
    #[test]
    fn redispatch_is_idempotent_under_random_kill_schedules(
        width in 1i32..4,
        kind_idx in 0i32..5,
        nth_job in 0i64..5,
        persistent_sel in 0i32..2,
        slot_sel in 0i32..3,
    ) {
        let kind = [
            WorkerFaultKind::Kill,
            WorkerFaultKind::ExitBeforeAck,
            WorkerFaultKind::StallHeartbeats,
            WorkerFaultKind::WedgeReplay,
            WorkerFaultKind::CorruptResult,
        ][kind_idx as usize];
        let nth_job = nth_job as u64;
        let persistent = persistent_sel == 1;
        // A persistent fault on a one-slot fleet has no healthy peer to
        // recover onto; that scenario is the quarantine test's, not ours.
        let shards = if persistent {
            (width as usize).max(2)
        } else {
            width as usize
        };
        let (base_json, base_bytes) = racers_baseline();

        let prog: Arc<dyn MpiProgram> = Arc::new(patterns::symmetric_racers());
        let shard_j = tmp_journal("prop");
        let v = Arc::new(racers_verifier(shard_j.clone()));
        let launcher = launcher_for(&v, &prog);
        let mut opts = chaos_shard_opts(shards);
        // Never quarantine: bounded restarts retire the faulty slot long
        // before any subtree burns 100 attempts.
        opts.max_attempts = 100;
        opts.fault = Some(WorkerFaultPlan { kind, nth_job, persistent });
        opts.fault_slot = slot_sel as usize % shards;
        let sharded = v
            .verify_sharded(prog.as_ref(), &launcher, &opts)
            .expect("chaos campaign must still complete");

        prop_assert_eq!(base_json, &sharded.to_json().to_string());
        let shard_bytes = std::fs::read(&shard_j).expect("sharded journal");
        let _ = std::fs::remove_file(shard_j);
        prop_assert_eq!(base_bytes, &shard_bytes);
    }
}
