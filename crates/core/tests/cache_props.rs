//! Property-based oracle for the replay cache: over randomly chosen
//! `patterns::*` workloads and interleaving budgets, a campaign verified
//! cache-off, cache-cold, and cache-warm must produce identical reports
//! (error sets, interleaving counts, every serialized field), the warm
//! run must reuse every committed subtree, and a campaign killed
//! mid-flight must resume *through* the cache to the same answer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use dampi_core::cache::plan_digest;
use dampi_core::{CampaignMetrics, DampiConfig, DampiVerifier, ReplayCache};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dampi-cache-props-{}-{tag}-{n}",
        std::process::id()
    ))
}

/// The workload matrix: each entry is (program, nprocs) with real
/// wildcard nondeterminism so the frontier has subtrees worth caching,
/// constructed fresh per campaign. Only in-process-stable workloads
/// qualify: `fig4_cross_coupled`'s free run is timing-sensitive (its
/// cross-coupled wildcards resolve differently under thread-pool load,
/// cache or no cache), which would make any off-vs-on comparison vacuous.
fn workload(ix: usize) -> (Box<dyn MpiProgram>, usize) {
    match ix {
        0 => (Box::new(patterns::fig3()), 3),
        1 => (Box::new(patterns::symmetric_racers()), 4),
        _ => (
            Box::new(Matmul::new(MatmulParams {
                n: 6,
                rounds_per_slave: 1,
                task_cost: 0.0,
                ..Default::default()
            })),
            4,
        ),
    }
}

fn verifier(np: usize, max: u64, jobs: usize) -> DampiVerifier {
    DampiVerifier::with_config(
        SimConfig::new(np).with_policy(MatchPolicy::LowestRank),
        DampiConfig::default()
            .with_max_interleavings(max)
            .with_jobs(jobs),
    )
}

/// Run one campaign against an optional cache and return the serialized
/// report plus the (hits, misses, committed) ledger.
fn campaign(
    ix: usize,
    max: u64,
    jobs: usize,
    cache: Option<&Arc<ReplayCache>>,
) -> (String, u64, u64, u64) {
    let (prog, np) = workload(ix);
    let m = CampaignMetrics::new();
    let mut v = verifier(np, max, jobs).with_metrics(m.clone());
    if let Some(c) = cache {
        v = v.with_cache(Arc::clone(c));
    }
    let report = v.verify(prog.as_ref()).to_json().to_string();
    let snap = m.snapshot(prog.name(), np, "lamport", jobs);
    let field = |k: &str| snap["cache"][k].as_u64().expect("cache ledger");
    let committed = snap["wall_clock"]["replays_committed"]
        .as_u64()
        .expect("committed");
    (report, field("hits"), field("misses"), committed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The three-way oracle: cache-off, cache-cold, and cache-warm all
    /// agree on every serialized report field, and the warm ledger shows
    /// total reuse.
    #[test]
    fn off_cold_and_warm_reports_are_identical(
        ix in 0usize..3,
        max in 2u64..40,
        par in 0usize..2,
    ) {
        let jobs = [1, 4][par];
        let dir = tmp_path("oracle");
        let cache = Arc::new(
            ReplayCache::open(&dir, 0xdead_beef, plan_digest(None), false).expect("open"),
        );

        let (off, off_hits, _, _) = campaign(ix, max, jobs, None);
        prop_assert_eq!(off_hits, 0, "no cache, no hits");
        let (cold, cold_hits, cold_misses, cold_committed) =
            campaign(ix, max, jobs, Some(&cache));
        let (warm, warm_hits, warm_misses, warm_committed) =
            campaign(ix, max, jobs, Some(&cache));

        // Cache-off vs cache-on: identical error sets and interleaving
        // counts. (Not full report bytes: the divergence-retry counters
        // record real thread-scheduling races the retry machinery absorbs,
        // so two *executed* campaigns can legitimately differ there.)
        let semantics = |report: &str| {
            let v: serde_json::Value = serde_json::from_str(report).expect("report JSON");
            (
                v["errors"].to_string(),
                v["interleavings"].as_u64().expect("interleavings"),
            )
        };
        prop_assert_eq!(semantics(&cold), semantics(&off), "cache-cold vs cache-off");
        prop_assert_eq!(semantics(&warm), semantics(&off), "cache-warm vs cache-off");
        // Warm vs cold is the hard contract: every subtree is reused, so
        // the entire serialized report is byte-identical.
        prop_assert_eq!(&warm, &cold, "cache-warm must equal cache-cold byte-for-byte");
        prop_assert_eq!(cold_hits, 0);
        prop_assert_eq!(cold_misses, cold_committed);
        prop_assert_eq!(warm_hits, warm_committed, "warm reuses every subtree");
        prop_assert_eq!(warm_misses, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Kill-mid-campaign resume that re-enters through the cache: a run
    /// interrupted at a random budget, resumed against a fully populated
    /// store, must reach the uninterrupted answer — and must do so on
    /// cache hits alone.
    #[test]
    fn interrupted_resume_re_enters_through_the_cache(
        ix in 0usize..3,
        cut_seed in 1u64..16,
    ) {
        let dir = tmp_path("resume");
        let cache = Arc::new(
            ReplayCache::open(&dir, 0xdead_beef, plan_digest(None), false).expect("open"),
        );

        // Uninterrupted baseline, which also fully populates the store.
        let (full, _, _, full_committed) = campaign(ix, 1000, 1, Some(&cache));
        prop_assert!(full_committed >= 2, "need at least one replay to cut");
        // A random cut strictly inside the campaign, so work remains.
        let cut = 1 + cut_seed % (full_committed - 1);

        // "Kill" a fresh campaign at the cut: journal checkpoints after
        // every commit, so stopping at the budget leaves the same on-disk
        // state as a SIGKILL mid-flight.
        let journal = tmp_path("journal");
        let (prog, np) = workload(ix);
        let partial = DampiVerifier::with_config(
            SimConfig::new(np).with_policy(MatchPolicy::LowestRank),
            DampiConfig::default()
                .with_max_interleavings(cut)
                .with_journal(journal.clone()),
        )
        .with_cache(Arc::clone(&cache))
        .verify(prog.as_ref());
        prop_assert!(partial.budget_exhausted);

        // Resume with the interruption lifted, re-entering via the cache.
        let (prog, np) = workload(ix);
        let m = CampaignMetrics::new();
        let resumed = DampiVerifier::with_config(
            SimConfig::new(np).with_policy(MatchPolicy::LowestRank),
            DampiConfig::default(),
        )
        .with_metrics(m.clone())
        .with_cache(Arc::clone(&cache))
        .verify_resumed(prog.as_ref(), &journal)
        .expect("resume");
        prop_assert_eq!(
            resumed.to_json().to_string(),
            full,
            "resumed-through-cache campaign must equal the uninterrupted one"
        );
        let snap = m.snapshot(prog.name(), np, "lamport", 1);
        let hits = snap["cache"]["hits"].as_u64().unwrap();
        let misses = snap["cache"]["misses"].as_u64().unwrap();
        let committed = snap["wall_clock"]["replays_committed"].as_u64().unwrap();
        prop_assert!(hits > 0, "the resume must actually re-enter through the cache");
        prop_assert_eq!(hits, committed, "a populated store serves the whole resume");
        prop_assert_eq!(misses, 0);
        let _ = std::fs::remove_file(journal);
        let _ = std::fs::remove_dir_all(dir);
    }
}
