//! Property tests of the piggyback codec (`dampi_core::pb`).
//!
//! Two families of properties:
//!
//! * **Roundtrips** — `encode_stamp`/`decode_stamp` and `pack`/`unpack`
//!   are inverses for arbitrary stamps and payloads, and the codec is
//!   canonical (re-encoding a decoded stamp reproduces the consumed
//!   bytes).
//! * **Malformed-input containment** — the codec's failure mode on
//!   corrupt frames is *always* one of its own diagnostics ("too short",
//!   "truncated", "unknown stamp mode", "Lamport stamp must be one
//!   word"), never an index-out-of-range or arithmetic-overflow panic.
//!   This pins the `decode_stamp` checked-arithmetic fix: an adversarial
//!   `nwords` must not wrap the bounds check.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bytes::Bytes;
use dampi_clocks::ClockStamp;
use dampi_core::pb::{decode_stamp, encode_stamp, pack, unpack};
use proptest::prelude::*;

/// The complete set of intended codec diagnostics.
const CODEC_PANICS: &[&str] = &[
    "stamp frame too short",
    "stamp frame truncated",
    "unknown stamp mode",
    "Lamport stamp must be one word",
];

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Run the decoder; `Err` carries the panic message of a rejected frame.
fn try_decode(data: &[u8]) -> Result<(ClockStamp, usize), String> {
    catch_unwind(AssertUnwindSafe(|| decode_stamp(data))).map_err(|p| panic_text(p.as_ref()))
}

fn is_codec_diagnostic(msg: &str) -> bool {
    CODEC_PANICS.iter().any(|m| msg.contains(m))
}

/// Build a stamp from sampled raw material: `mode_sel` picks Lamport or
/// Vector, `words` feeds the clock values.
fn stamp_from(mode_sel: usize, words: &[u64]) -> ClockStamp {
    if mode_sel == 0 {
        ClockStamp::Lamport(words.first().copied().unwrap_or(7))
    } else {
        ClockStamp::Vector(words.to_vec())
    }
}

proptest! {
    /// Stamps survive the wire: decode(encode(s)) == s, consuming the
    /// whole frame.
    #[test]
    fn stamp_roundtrip(
        mode_sel in 0usize..2,
        words in prop::collection::vec(0u64..u64::MAX, 0..17),
    ) {
        let s = stamp_from(mode_sel, &words);
        let enc = encode_stamp(&s);
        let (dec, used) = decode_stamp(&enc);
        prop_assert_eq!(&dec, &s);
        prop_assert_eq!(used, enc.len());
    }

    /// Packing prepends exactly the stamp frame: unpack returns the stamp
    /// and the untouched payload for arbitrary payload bytes.
    #[test]
    fn pack_unpack_roundtrip(
        mode_sel in 0usize..2,
        words in prop::collection::vec(0u64..u64::MAX, 0..9),
        payload_raw in prop::collection::vec(0usize..256, 0..64),
    ) {
        let s = stamp_from(mode_sel, &words);
        let payload: Vec<u8> = payload_raw.iter().map(|b| *b as u8).collect();
        let packed = pack(&s, &Bytes::from(payload.clone()));
        prop_assert_eq!(packed.len(), encode_stamp(&s).len() + payload.len());
        let (dec, rest) = unpack(&packed);
        prop_assert_eq!(&dec, &s);
        prop_assert_eq!(&rest[..], &payload[..]);
    }

    /// Every strict prefix of a valid frame is rejected with a codec
    /// diagnostic — never an index or overflow panic.
    #[test]
    fn truncated_frames_fail_with_codec_diagnostic(
        mode_sel in 0usize..2,
        words in prop::collection::vec(0u64..u64::MAX, 1..9),
        cut_raw in 0usize..4096,
    ) {
        let enc = encode_stamp(&stamp_from(mode_sel, &words));
        let cut = cut_raw % enc.len();
        let msg = try_decode(&enc[..cut]).expect_err("strict prefix must be rejected");
        prop_assert!(is_codec_diagnostic(&msg), "unexpected panic: {}", msg);
    }

    /// Semi-structured corrupt frames — arbitrary mode and word-count
    /// headers (including counts whose byte size overflows `usize`) over
    /// an arbitrary tail — either decode canonically or fail with a codec
    /// diagnostic.
    #[test]
    fn corrupt_headers_are_contained(
        mode in 0u64..4,
        nwords_sel in 0usize..3,
        nwords_small in 0u64..9,
        tail in prop::collection::vec(0usize..256, 0..80),
    ) {
        // Three regimes: plausible counts, the usize-wrapping count that
        // defeated the unchecked `16 + n * 8` bound, and u64::MAX.
        let nwords = match nwords_sel {
            0 => nwords_small,
            1 => u64::try_from(usize::MAX / 8 + 1).unwrap_or(u64::MAX),
            _ => u64::MAX,
        };
        let mut frame = Vec::with_capacity(16 + tail.len());
        frame.extend_from_slice(&mode.to_le_bytes());
        frame.extend_from_slice(&nwords.to_le_bytes());
        frame.extend(tail.iter().map(|b| *b as u8));
        match try_decode(&frame) {
            Ok((stamp, used)) => {
                prop_assert!(used <= frame.len());
                // The codec is canonical: a decoded stamp re-encodes to
                // exactly the bytes it consumed.
                prop_assert_eq!(&encode_stamp(&stamp)[..], &frame[..used]);
            }
            Err(msg) => {
                prop_assert!(is_codec_diagnostic(&msg), "unexpected panic: {}", msg);
            }
        }
    }

    /// Pure byte soup never escapes the codec's own diagnostics.
    #[test]
    fn arbitrary_bytes_are_contained(
        soup in prop::collection::vec(0usize..256, 0..120),
    ) {
        let data: Vec<u8> = soup.iter().map(|b| *b as u8).collect();
        if let Err(msg) = try_decode(&data) {
            prop_assert!(is_codec_diagnostic(&msg), "unexpected panic: {}", msg);
        }
    }
}
