//! Version-1 prune-plan compatibility, end to end: a plan file written by a
//! PR-5 analyzer (no `version`, no refined fields) must still load and still
//! steer a scheduler campaign. The fixture is the analyzer's own output for
//! `symmetric_racers` at np 4 with the lowest-rank policy, minus everything
//! version 2 added — the exact artifact an old campaign would have on disk.

use dampi_core::prune::PrunePlan;
use dampi_core::DampiVerifier;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::patterns;

const V1_FIXTURE: &str = include_str!("fixtures/prune_plan_v1.json");

#[test]
fn v1_fixture_deserializes_with_empty_refined_fields() {
    let plan: PrunePlan = serde_json::from_str(V1_FIXTURE).expect("v1 plan must load");
    assert_eq!(plan.version, 0, "legacy plans report version 0");
    assert!(plan.infeasible.is_empty());
    assert!(plan.deterministic.is_empty());
    assert!(plan.refined_infeasible.is_empty());
    assert!(plan.refined_deterministic.is_empty());
    assert!(plan.oblivious_receives.is_empty());
    assert_eq!(plan.orbits.len(), 2);
    assert!(!plan.is_empty(), "two non-trivial orbits prescribe pruning");
}

#[test]
fn v1_fixture_still_steers_a_campaign() {
    // The racers trace is deterministic under the lowest-rank policy, so
    // the orbit prune must halve the campaign (4 -> 2) exactly as the
    // freshly-built v2 plan does, with the (empty) error set unchanged.
    let plan: PrunePlan = serde_json::from_str(V1_FIXTURE).expect("v1 plan must load");
    let prog = patterns::symmetric_racers();
    let v = DampiVerifier::new(SimConfig::new(4).with_policy(MatchPolicy::LowestRank));
    let (_, run) = v.traced_run(&prog);
    let base = v.verify_with_first_run(&prog, run.clone());
    let pruned = v
        .clone()
        .with_prune_plan(plan)
        .verify_with_first_run(&prog, run);
    assert!(base.errors.is_empty() && pruned.errors.is_empty());
    assert!(
        pruned.interleavings < base.interleavings,
        "v1 orbits must still prune: {} -> {}",
        base.interleavings,
        pruned.interleavings
    );
}
