//! End-to-end tests of the content-addressed replay cache: a warm run
//! must be **byte-identical** to a cold run (report JSON and journal
//! bytes) at every driver (`--jobs 1`, `--jobs 4`, in-process `--shards
//! 2`), reuse every committed subtree, and any change to the program or
//! prune-plan digest must be a full miss — never stale reuse.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dampi_core::cache::plan_digest;
use dampi_core::scheduler::{ExploreOptions, RunResult};
use dampi_core::shard::{InProcessLauncher, ShardOptions};
use dampi_core::{
    CampaignMetrics, DampiConfig, DampiVerifier, DecisionSet, PrunePlan, ReplayCache,
};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::patterns;

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dampi-cache-test-{}-{tag}-{n}", std::process::id()))
}

const PROGRAM_DIGEST: u64 = 0x1234_5678_9abc_def0;

fn racers_verifier(jobs: usize, journal: &Path) -> DampiVerifier {
    DampiVerifier::with_config(
        SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
        DampiConfig::default()
            .with_jobs(jobs)
            .with_journal(journal.to_path_buf()),
    )
}

struct RunStats {
    report: String,
    journal: Vec<u8>,
    hits: u64,
    misses: u64,
    stores: u64,
    stale: u64,
    committed: u64,
}

/// One racers campaign against `cache`, returning everything the parity
/// assertions need: the serialized report, the journal bytes, and the
/// cache ledger from the metrics snapshot.
fn run_racers(cache: &Arc<ReplayCache>, jobs: usize, shards: Option<usize>) -> RunStats {
    let journal = tmp_path("journal");
    let m = CampaignMetrics::new();
    let verifier = racers_verifier(jobs, &journal)
        .with_metrics(m.clone())
        .with_cache(Arc::clone(cache));
    let report = if let Some(shards) = shards {
        let prog: Arc<dyn MpiProgram> = Arc::new(patterns::symmetric_racers());
        let v = Arc::new(verifier);
        let vr = Arc::clone(&v);
        let pr = Arc::clone(&prog);
        let run: Arc<dyn Fn(&DecisionSet) -> RunResult + Send + Sync> =
            Arc::new(move |ds| vr.instrumented_run(pr.as_ref(), ds));
        let launcher = InProcessLauncher::new(run, &ExploreOptions::default());
        let opts = ShardOptions {
            shards,
            ..ShardOptions::default()
        };
        v.verify_sharded(prog.as_ref(), &launcher, &opts)
            .expect("clean sharded campaign")
    } else {
        verifier.verify(&patterns::symmetric_racers())
    };
    let snap = m.snapshot("racers", 4, "lamport", shards.unwrap_or(jobs));
    let cache_block = snap.get("cache").expect("cache ledger in snapshot");
    let field = |k: &str| cache_block.get(k).and_then(serde_json::Value::as_u64);
    let stats = RunStats {
        report: report.to_json().to_string(),
        journal: std::fs::read(&journal).expect("journal written"),
        hits: field("hits").expect("hits"),
        misses: field("misses").expect("misses"),
        stores: field("stores").expect("stores"),
        stale: field("stale").expect("stale"),
        committed: snap["wall_clock"]["replays_committed"]
            .as_u64()
            .expect("committed"),
    };
    let _ = std::fs::remove_file(journal);
    stats
}

#[test]
fn warm_run_is_byte_identical_and_all_hits_at_every_driver() {
    let dir = tmp_path("warm");
    let cache = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), false).expect("open cache"),
    );

    // Baseline without any cache: the cold cached run must not perturb it.
    let base_j = tmp_path("base-journal");
    let base = racers_verifier(1, &base_j)
        .verify(&patterns::symmetric_racers())
        .to_json()
        .to_string();
    let base_journal = std::fs::read(&base_j).expect("baseline journal");
    let _ = std::fs::remove_file(&base_j);

    let cold = run_racers(&cache, 1, None);
    assert_eq!(cold.report, base, "cache-off vs cache-cold report");
    assert_eq!(
        cold.journal, base_journal,
        "cache-off vs cache-cold journal"
    );
    assert_eq!(cold.hits, 0, "empty store cannot hit");
    assert_eq!(cold.misses, cold.committed);
    assert_eq!(cold.stores, cold.misses, "every miss populates the store");
    assert!(cold.committed >= 2, "racers explores multiple subtrees");

    for (jobs, shards) in [(1, None), (4, None), (1, Some(2))] {
        let warm = run_racers(&cache, jobs, shards);
        assert_eq!(
            warm.report, cold.report,
            "warm report at jobs={jobs} shards={shards:?}"
        );
        assert_eq!(
            warm.journal, cold.journal,
            "warm journal at jobs={jobs} shards={shards:?}"
        );
        assert_eq!(
            warm.hits, warm.committed,
            "warm run must reuse every subtree at jobs={jobs} shards={shards:?}"
        );
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.stores, 0, "a fully-warm run writes nothing");
        assert_eq!(warm.stale, 0);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn program_digest_change_forces_a_full_miss() {
    let dir = tmp_path("prog-flip");
    let cache = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), false).expect("open cache"),
    );
    let cold = run_racers(&cache, 1, None);
    assert_eq!(cold.stores, cold.committed);

    // Same store root, different program digest: a different keyspace
    // directory, so nothing can be reused — not even accidentally.
    let flipped = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST ^ 1, plan_digest(None), false).expect("open cache"),
    );
    let warm = run_racers(&flipped, 1, None);
    assert_eq!(warm.hits, 0, "program-digest change must fully miss");
    assert_eq!(warm.misses, warm.committed);
    assert_eq!(warm.report, cold.report);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn prune_plan_digest_change_forces_a_full_miss() {
    let dir = tmp_path("plan-flip");
    let cache = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), false).expect("open cache"),
    );
    let cold = run_racers(&cache, 1, None);
    assert_eq!(cold.stores, cold.committed);

    // A non-empty plan digests differently from the no-plan keyspace, so
    // installing (or changing) a plan can never reuse subtrees explored
    // under different pruning. (The plan is deliberately *not* installed
    // in the verifier here: the exploration must stay identical so the
    // only variable is the keyspace.)
    let mut plan = PrunePlan::default();
    plan.deterministic.insert((1, 7));
    assert_ne!(plan_digest(Some(&plan)), plan_digest(None));
    let keyed = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(Some(&plan)), false)
            .expect("open cache"),
    );
    let warm = run_racers(&keyed, 1, None);
    assert_eq!(warm.hits, 0, "plan-digest change must fully miss");
    assert_eq!(warm.misses, warm.committed);
    assert_eq!(warm.report, cold.report);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn readonly_cache_reads_but_never_writes() {
    let dir = tmp_path("readonly");
    let ro = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), true).expect("open readonly"),
    );
    let cold = run_racers(&ro, 1, None);
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.stores, 0, "readonly must not populate the store");
    assert!(
        !dir.join(format!("{PROGRAM_DIGEST:016x}-{:016x}", plan_digest(None)))
            .exists(),
        "readonly open must not even create the keyspace directory"
    );

    // Populate read-write, then a readonly warm run reuses everything.
    let rw = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), false).expect("open cache"),
    );
    let populate = run_racers(&rw, 1, None);
    assert_eq!(populate.stores, populate.committed);
    let warm = run_racers(&ro, 1, None);
    assert_eq!(warm.hits, warm.committed);
    assert_eq!(warm.stores, 0);
    assert_eq!(warm.report, cold.report);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_entry_is_counted_stale_and_silently_re_executed() {
    let dir = tmp_path("corrupt");
    let cache = Arc::new(
        ReplayCache::open(&dir, PROGRAM_DIGEST, plan_digest(None), false).expect("open cache"),
    );
    let cold = run_racers(&cache, 1, None);
    assert!(cold.stores >= 2);

    // Truncate one stored entry: its frame checksum can no longer verify.
    let keyspace = dir.join(format!("{PROGRAM_DIGEST:016x}-{:016x}", plan_digest(None)));
    let victim = std::fs::read_dir(&keyspace)
        .expect("keyspace dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.is_file())
        .expect("at least one entry");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let warm = run_racers(&cache, 1, None);
    assert_eq!(warm.report, cold.report, "stale entry must not leak");
    assert_eq!(warm.stale, 1, "exactly the truncated entry is stale");
    assert_eq!(warm.misses, 1, "the stale subtree re-executes");
    assert_eq!(warm.hits, warm.committed - 1);
    assert_eq!(warm.stores, 1, "the re-execution repopulates the entry");

    // The repaired store is fully warm again.
    let again = run_racers(&cache, 1, None);
    assert_eq!(again.hits, again.committed);
    assert_eq!(again.stale, 0);
    let _ = std::fs::remove_dir_all(dir);
}
