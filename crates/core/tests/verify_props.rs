//! Property-based end-to-end tests of the verifier on randomly shaped
//! (but confluent) master/worker programs running on the real threaded
//! runtime.

use dampi_core::{DampiConfig, DampiVerifier, MixingBound};
use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, FnProgram, Mpi, SimConfig, ANY_SOURCE};
use proptest::prelude::*;

/// A master that receives `msgs_per_slave * slaves` messages via wildcard
/// receives; each slave sends `msgs_per_slave` tagged messages. Confluent:
/// every schedule reaches the same final state.
fn master_slave(
    slaves: usize,
    msgs_per_slave: usize,
) -> FnProgram<impl Fn(&mut dyn Mpi) -> dampi_mpi::Result<()> + Send + Sync> {
    FnProgram(move |mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            let mut total = 0u64;
            for _ in 0..slaves * msgs_per_slave {
                let (_, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
                total += codec::decode_u64(&data);
            }
            // Order-independent checksum: catches data corruption under
            // any explored schedule.
            let expect: u64 = (1..=slaves as u64).sum::<u64>() * msgs_per_slave as u64;
            dampi_mpi::proc_api::user_assert(
                total == expect,
                format!("checksum {total} != {expect}"),
            )?;
        } else {
            for _ in 0..msgs_per_slave {
                mpi.send(
                    Comm::WORLD,
                    0,
                    1,
                    codec::encode_u64(mpi.world_rank() as u64),
                )?;
            }
        }
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Completeness on confluent programs: every epoch's discovered match
    /// set contains every slave that still had messages in flight. The
    /// first epoch in particular must see all slaves.
    #[test]
    fn first_epoch_sees_every_slave(
        slaves in 2usize..4,
        msgs in 1usize..3,
    ) {
        let cfg = DampiConfig::default()
            .with_bound(MixingBound::K(0))
            .with_max_interleavings(500);
        let report = DampiVerifier::with_config(SimConfig::new(slaves + 1), cfg)
            .verify(&master_slave(slaves, msgs));
        prop_assert!(report.errors.is_empty(), "{}", report);
        let first = report.discovered.iter().next().expect("epochs exist");
        prop_assert_eq!(
            first.1.len(),
            slaves,
            "first epoch must discover all {} slaves: {:?}",
            slaves,
            first.1
        );
    }

    /// Soundness: every run under every explored schedule passes the
    /// order-independent checksum — no schedule corrupts message routing.
    #[test]
    fn all_explored_schedules_preserve_data(
        slaves in 2usize..4,
        msgs in 1usize..3,
    ) {
        let cfg = DampiConfig::default().with_max_interleavings(300);
        let report = DampiVerifier::with_config(SimConfig::new(slaves + 1), cfg)
            .verify(&master_slave(slaves, msgs));
        prop_assert!(
            report.errors.is_empty(),
            "schedule corrupted routing: {}",
            report
        );
        prop_assert!(report.interleavings >= 2, "non-determinism was explored");
    }

    /// Bounded runs are always a prefix-cost of unbounded runs, on the
    /// real runtime too.
    #[test]
    fn bounds_monotone_on_real_runtime(slaves in 2usize..4) {
        let run = |bound| {
            let cfg = DampiConfig::default()
                .with_bound(bound)
                .with_max_interleavings(2000);
            DampiVerifier::with_config(SimConfig::new(slaves + 1), cfg)
                .verify(&master_slave(slaves, 1))
                .interleavings
        };
        let k0 = run(MixingBound::K(0));
        let k1 = run(MixingBound::K(1));
        let full = run(MixingBound::Unbounded);
        prop_assert!(k0 <= k1 && k1 <= full, "{} {} {}", k0, k1, full);
    }
}
