//! Configuration-matrix regression: every combination of clock mode,
//! piggyback mechanism, and §V clock handling must find the same bugs on
//! the benchmark patterns (except where the paper says otherwise — the
//! Fig. 10 hole that only the deferred clock closes).

use dampi_core::{ClockMode, DampiConfig, DampiVerifier, PiggybackMechanism};
use dampi_mpi::{MatchPolicy, MpiError, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

fn configs() -> Vec<(String, DampiConfig)> {
    let mut out = Vec::new();
    for clock in [ClockMode::Lamport, ClockMode::Vector] {
        for pb in [
            PiggybackMechanism::SeparateMessage,
            PiggybackMechanism::PayloadPacking,
        ] {
            for deferred in [false, true] {
                let mut cfg = DampiConfig::default()
                    .with_clock_mode(clock)
                    .with_piggyback(pb)
                    .with_max_interleavings(500);
                if deferred {
                    cfg = cfg.with_deferred_clock_sync();
                }
                out.push((
                    format!("{}/{:?}/deferred={}", clock.name(), pb, deferred),
                    cfg,
                ));
            }
        }
    }
    out
}

#[test]
fn fig3_bug_found_under_every_configuration() {
    for (name, cfg) in configs() {
        let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
        let report = DampiVerifier::with_config(sim, cfg).verify(&patterns::fig3());
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e.error, MpiError::UserAssert { .. })),
            "[{name}] must find x==33: {report}"
        );
    }
}

#[test]
fn schedule_deadlock_found_under_every_configuration() {
    for (name, cfg) in configs() {
        let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
        let report = DampiVerifier::with_config(sim, cfg)
            .verify(&patterns::deadlock_on_alternate_schedule());
        assert!(
            report.deadlocks() >= 1,
            "[{name}] must find the schedule deadlock: {report}"
        );
    }
}

#[test]
fn matmul_clean_under_every_configuration() {
    let prog = Matmul::new(MatmulParams {
        n: 6,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    for (name, cfg) in configs() {
        let report = DampiVerifier::with_config(SimConfig::new(4), cfg).verify(&prog);
        assert!(
            report.errors.is_empty(),
            "[{name}] matmul must verify clean: {report}"
        );
        assert_eq!(report.interleavings, 6, "[{name}] 3! orders: {report}");
    }
}

#[test]
fn fig10_found_exactly_when_deferred_clock_is_on() {
    // The §V coverage hole: only the paired transmittal clock closes it.
    // (Vector clocks alone do NOT: the barrier merges the ticked vector
    // into every rank, so the post-barrier send looks causally later
    // regardless of clock precision.)
    for (name, cfg) in configs() {
        let deferred = cfg.deferred_clock_sync;
        let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
        let report = DampiVerifier::with_config(sim, cfg).verify(&patterns::fig10_unsafe());
        let found = report
            .errors
            .iter()
            .any(|e| matches!(e.error, MpiError::UserAssert { .. }));
        assert_eq!(
            found, deferred,
            "[{name}] fig10 coverage must track the deferred clock: {report}"
        );
        if !deferred {
            assert!(
                report.unsafe_alerts > 0,
                "[{name}] the monitor must warn when the hole is open"
            );
        }
    }
}
