//! MPI operation census, classified as in the paper's Table I.
//!
//! The paper logs all *communication* MPI operations of ParMETIS and buckets
//! them as Send-Recv (all point-to-point including probes), Collective, and
//! Wait (all `MPI_Wait`/`MPI_Test` variants). Local operations
//! (`MPI_Type_create`, `MPI_Get_count`, …) are not counted. The census is
//! collected by a [`StatsLayer`](crate::interpose::StatsLayer) placed at the
//! *top* of the interposition stack so tool-generated traffic (piggybacks)
//! is excluded, exactly like logging the application's own calls.

use parking_lot::Mutex;
use std::sync::Arc;

/// Classification of a communication operation (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Point-to-point: send/isend/recv/irecv/probe/iprobe.
    SendRecv,
    /// Collective: barrier, bcast, reductions, gathers, scatters, alltoall,
    /// and communicator management (collective by the standard).
    Collective,
    /// Completion: wait/test/waitall/waitany variants.
    Wait,
}

/// Census of operations for one rank or aggregated across ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Point-to-point operation count.
    pub send_recv: u64,
    /// Collective operation count.
    pub collective: u64,
    /// Wait/test operation count.
    pub wait: u64,
}

impl OpStats {
    /// Record one operation.
    pub fn record(&mut self, class: OpClass) {
        match class {
            OpClass::SendRecv => self.send_recv += 1,
            OpClass::Collective => self.collective += 1,
            OpClass::Wait => self.wait += 1,
        }
    }

    /// Total operations across all classes (Table I "All" row).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.send_recv + self.collective + self.wait
    }

    /// Merge another census into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.send_recv += other.send_recv;
        self.collective += other.collective;
        self.wait += other.wait;
    }
}

/// Thread-safe collector aggregating per-rank censuses; shared between the
/// caller and the [`StatsLayer`](crate::interpose::StatsLayer) instances.
#[derive(Debug, Default)]
pub struct StatsCollector {
    inner: Mutex<CollectorInner>,
}

#[derive(Debug, Default)]
struct CollectorInner {
    total: OpStats,
    per_rank: Vec<(usize, OpStats)>,
}

impl StatsCollector {
    /// New empty collector behind an `Arc` for sharing with layers.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Fold one rank's census in (called by the layer at finalize). A rank
    /// finalizing more than once (a layer rebuilt across replays of one
    /// campaign) merges into its existing entry — pushing blindly would
    /// double-count `total` and skew the per-proc means with duplicate
    /// `per_rank` rows.
    pub fn submit(&self, rank: usize, stats: OpStats) {
        let mut g = self.inner.lock();
        g.total.merge(&stats);
        if let Some((_, existing)) = g.per_rank.iter_mut().find(|(r, _)| *r == rank) {
            existing.merge(&stats);
        } else {
            g.per_rank.push((rank, stats));
        }
    }

    /// Aggregated census across all submitted ranks.
    #[must_use]
    pub fn total(&self) -> OpStats {
        self.inner.lock().total
    }

    /// Per-rank censuses in submission order.
    #[must_use]
    pub fn per_rank(&self) -> Vec<(usize, OpStats)> {
        self.inner.lock().per_rank.clone()
    }

    /// Mean operations per submitting rank (Table I "per proc" rows).
    #[must_use]
    pub fn per_proc(&self) -> OpStats {
        let g = self.inner.lock();
        let n = g.per_rank.len().max(1) as u64;
        OpStats {
            send_recv: g.total.send_recv / n,
            collective: g.total.collective / n,
            wait: g.total.wait / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = OpStats::default();
        s.record(OpClass::SendRecv);
        s.record(OpClass::SendRecv);
        s.record(OpClass::Collective);
        s.record(OpClass::Wait);
        assert_eq!(s.send_recv, 2);
        assert_eq!(s.collective, 1);
        assert_eq!(s.wait, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn merge_sums_classes() {
        let mut a = OpStats {
            send_recv: 1,
            collective: 2,
            wait: 3,
        };
        let b = OpStats {
            send_recv: 10,
            collective: 20,
            wait: 30,
        };
        a.merge(&b);
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn collector_aggregates() {
        let c = StatsCollector::new();
        c.submit(
            0,
            OpStats {
                send_recv: 4,
                collective: 2,
                wait: 2,
            },
        );
        c.submit(
            1,
            OpStats {
                send_recv: 6,
                collective: 2,
                wait: 4,
            },
        );
        assert_eq!(c.total().total(), 20);
        assert_eq!(c.per_proc().send_recv, 5);
        assert_eq!(c.per_rank().len(), 2);
    }

    #[test]
    fn duplicate_submit_merges_by_rank() {
        let c = StatsCollector::new();
        let census = OpStats {
            send_recv: 4,
            collective: 2,
            wait: 2,
        };
        // Rank 0 finalizes twice (layer rebuilt across replays); rank 1
        // once. The duplicate must merge, not append.
        c.submit(0, census);
        c.submit(0, census);
        c.submit(1, census);
        let per_rank = c.per_rank();
        assert_eq!(per_rank.len(), 2, "no duplicate per_rank rows");
        assert_eq!(
            per_rank[0],
            (
                0,
                OpStats {
                    send_recv: 8,
                    collective: 4,
                    wait: 4
                }
            )
        );
        assert_eq!(per_rank[1], (1, census));
        assert_eq!(c.total().total(), 24);
        // Means divide by distinct ranks, not submissions.
        assert_eq!(c.per_proc().send_recv, 6);
    }
}
