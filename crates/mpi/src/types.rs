//! Basic MPI-flavored scalar types and wildcard constants.

/// Message tag. Like MPI, tags are small non-negative integers; the wildcard
/// [`ANY_TAG`] is negative.
pub type Tag = i32;

/// Wildcard source rank: matches a message from any source
/// (`MPI_ANY_SOURCE`). Receives posted with this source are the
/// *non-deterministic* operations whose outcomes DAMPI enumerates.
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag (`MPI_ANY_TAG`): matches a message with any tag.
pub const ANY_TAG: i32 = -1;

/// True if `spec` (a source argument) accepts world/comm rank `actual`.
#[must_use]
pub fn source_matches(spec: i32, actual: usize) -> bool {
    spec == ANY_SOURCE || spec == actual as i32
}

/// True if `spec` (a tag argument) accepts message tag `actual`.
#[must_use]
pub fn tag_matches(spec: Tag, actual: Tag) -> bool {
    spec == ANY_TAG || spec == actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_source_matches_everything() {
        assert!(source_matches(ANY_SOURCE, 0));
        assert!(source_matches(ANY_SOURCE, 1023));
    }

    #[test]
    fn named_source_matches_only_itself() {
        assert!(source_matches(3, 3));
        assert!(!source_matches(3, 4));
    }

    #[test]
    fn tag_wildcards() {
        assert!(tag_matches(ANY_TAG, 0));
        assert!(tag_matches(ANY_TAG, 99));
        assert!(tag_matches(7, 7));
        assert!(!tag_matches(7, 8));
    }
}
