//! Message envelopes carried through the matching engine.

use bytes::Bytes;

use crate::types::Tag;

/// A message in flight: the simulator analog of an MPI message plus the
/// metadata the matching engine and virtual-time model need.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender, as a rank *within the message's communicator*.
    pub src: usize,
    /// Destination, as a rank within the communicator.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes (eager-buffered; ownership moves to the receiver).
    pub payload: Bytes,
    /// Arrival sequence number at the destination — total order of message
    /// arrivals per destination per communicator. Because envelopes are
    /// enqueued under the runtime lock at send time and each sender is a
    /// single thread, per-(src,dst) subsequences are in send order, which is
    /// exactly MPI's non-overtaking guarantee.
    pub arrival_seq: u64,
    /// Sender's virtual time at send (plus send overhead); receive-side
    /// completion time derives from this.
    pub send_vt: f64,
    /// For rendezvous-mode sends: the send request that completes only
    /// when this message is matched by a receive. `None` for eager sends
    /// (buffered; the send request completed at post time).
    pub send_req: Option<u64>,
}

impl Envelope {
    /// Wire size used by the virtual-time model.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        self.payload.len()
    }
}

/// Payload helpers: tiny codec for the scalar/array payloads workloads use.
pub mod codec {
    use bytes::{BufMut, Bytes, BytesMut};

    /// Encode a `u64` slice little-endian.
    #[must_use]
    pub fn encode_u64s(values: &[u64]) -> Bytes {
        let mut b = BytesMut::with_capacity(values.len() * 8);
        for v in values {
            b.put_u64_le(*v);
        }
        b.freeze()
    }

    /// Decode a little-endian `u64` slice; panics on ragged input.
    #[must_use]
    pub fn decode_u64s(data: &[u8]) -> Vec<u64> {
        assert!(data.len().is_multiple_of(8), "ragged u64 payload");
        data.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Encode an `f64` slice little-endian.
    #[must_use]
    pub fn encode_f64s(values: &[f64]) -> Bytes {
        let mut b = BytesMut::with_capacity(values.len() * 8);
        for v in values {
            b.put_f64_le(*v);
        }
        b.freeze()
    }

    /// Decode a little-endian `f64` slice; panics on ragged input.
    #[must_use]
    pub fn decode_f64s(data: &[u8]) -> Vec<f64> {
        assert!(data.len().is_multiple_of(8), "ragged f64 payload");
        data.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Encode a single u64 (common case: a work-item id or a clock word).
    #[must_use]
    pub fn encode_u64(v: u64) -> Bytes {
        encode_u64s(&[v])
    }

    /// Decode a single u64.
    #[must_use]
    pub fn decode_u64(data: &[u8]) -> u64 {
        let v = decode_u64s(data);
        assert_eq!(v.len(), 1, "expected a single u64 payload");
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::codec::*;
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let vals = vec![0, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&vals)), vals);
    }

    #[test]
    fn f64_roundtrip() {
        let vals = vec![0.0, -1.5, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&vals)), vals);
    }

    #[test]
    fn single_u64_roundtrip() {
        assert_eq!(decode_u64(&encode_u64(7)), 7);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_panics() {
        let _ = decode_u64s(&[1, 2, 3]);
    }

    #[test]
    fn wire_bytes_is_payload_len() {
        let e = Envelope {
            src: 0,
            dst: 1,
            tag: 0,
            payload: Bytes::from_static(b"abcd"),
            arrival_seq: 0,
            send_vt: 0.0,
            send_req: None,
        };
        assert_eq!(e.wire_bytes(), 4);
    }
}
