//! The simulated-world runtime: rank threads, blocking, progress, deadlock
//! detection, collectives, communicator management, and the run harness.
//!
//! Every rank is an OS thread. All shared state sits behind one mutex; a
//! rank that cannot make progress waits on its *own* condvar (targeted
//! wakeups keep 1024-rank runs cheap). Deadlock is declared exactly when
//! every unfinished rank is blocked inside the runtime: state then can only
//! change through another rank's action, and there is none left to act —
//! the classical "all live processes blocked" criterion.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::collective::{combine, CollOutcome, CollSig, CollSlot, Contribution, ReduceOp};
use crate::comm::{Comm, CommInfo};
use crate::envelope::Envelope;
use crate::error::{MpiError, Result};
use crate::leak::{CommLeak, LeakReport};
use crate::matching::{Delivery, MatchEngine, MatchPolicy, ProbeInfo};
use crate::proc_api::{Pmpi, Status};
use crate::program::{MpiProgram, RunOutcome};
use crate::request::{ReqKind, ReqState, Request, RequestEntry, RequestTable};
use crate::types::{Tag, ANY_SOURCE};
use crate::vtime::VTimeParams;

/// Per-replay watchdog budgets (§ fault-tolerant exploration).
///
/// Both limits apply to a *single* run of the world — one interleaving.
/// When either trips, the runtime declares a global
/// [`MpiError::ReplayTimeout`] fatal: every blocked or still-running rank
/// unwinds with that error, the run harness returns normally, and the
/// verifier records the schedule as timed out instead of hanging the
/// whole campaign on one pathological interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayBudget {
    /// Kill the run once any rank's virtual clock passes this many
    /// simulated seconds (catches livelocks that spin in `compute`).
    pub max_virtual_time: Option<f64>,
    /// Kill the run once this much real time has elapsed since the world
    /// was created (catches hangs that make no virtual progress).
    pub max_wall_clock: Option<Duration>,
}

impl ReplayBudget {
    /// No limits (the default): replays run to completion or deadlock.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder-style: cap per-replay virtual time (simulated seconds).
    #[must_use]
    pub fn with_max_virtual_time(mut self, seconds: f64) -> Self {
        self.max_virtual_time = Some(seconds);
        self
    }

    /// Builder-style: cap per-replay wall-clock time.
    #[must_use]
    pub fn with_max_wall_clock(mut self, limit: Duration) -> Self {
        self.max_wall_clock = Some(limit);
        self
    }
}

/// Configuration of a simulated world.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of MPI processes (rank threads).
    pub nprocs: usize,
    /// Wildcard-receive resolution policy of the "native" runtime.
    pub policy: MatchPolicy,
    /// Virtual-time model parameters.
    pub vtime: VTimeParams,
    /// Stack size per rank thread (kept small so 1024-rank worlds are
    /// cheap; workloads are shallow).
    pub stack_size: usize,
    /// Eager-protocol threshold: messages with payloads up to this size
    /// are buffered (the send completes at post time); larger messages use
    /// the rendezvous protocol (the send completes only when matched by a
    /// receive). `None` means everything is eager — the default, and the
    /// common small-message regime. Real MPI implementations switch
    /// protocols exactly this way, and programs that are only correct
    /// under eager buffering ("unsafe" sends per the MPI standard)
    /// deadlock when run with `Some(0)`.
    pub eager_limit: Option<usize>,
    /// Per-replay watchdog budgets (wall clock and virtual time).
    pub budget: ReplayBudget,
    /// Deterministic cooperative scheduling. When set, exactly one
    /// runnable rank executes runtime calls at a time: a round-robin turn
    /// token passes to the next unfinished, unblocked rank whenever the
    /// holder blocks or finishes. Message arrival order — and therefore
    /// every wildcard-match candidate set in the *unconstrained* part of a
    /// run — becomes a pure function of the program and the forced replay
    /// prefix instead of an OS thread-scheduling race. Exhaustive
    /// (vector-clock/ISP) exploration is insensitive to this choice; the
    /// schedule-relative Lamport analysis is not, so differential fuzzing
    /// requires it. Off by default: free-threaded runs exercise the racy
    /// arrival orders real MPI exhibits. Caveat: a rank that busy-waits on
    /// nonblocking calls (`test`/`iprobe` spin loops) without ever
    /// blocking never yields the token; only the wall-clock watchdog can
    /// reclaim such a run.
    pub deterministic: bool,
}

impl SimConfig {
    /// Default configuration for `nprocs` ranks.
    #[must_use]
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "world must have at least one rank");
        Self {
            nprocs,
            policy: MatchPolicy::default(),
            vtime: VTimeParams::default(),
            stack_size: 256 * 1024,
            eager_limit: None,
            budget: ReplayBudget::default(),
            deterministic: false,
        }
    }

    /// Builder-style: set the eager-protocol threshold (see
    /// [`SimConfig::eager_limit`]).
    #[must_use]
    pub fn with_eager_limit(mut self, limit: Option<usize>) -> Self {
        self.eager_limit = limit;
        self
    }

    /// Builder-style: set the wildcard match policy.
    #[must_use]
    pub fn with_policy(mut self, policy: MatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set virtual-time parameters.
    #[must_use]
    pub fn with_vtime(mut self, vtime: VTimeParams) -> Self {
        self.vtime = vtime;
        self
    }

    /// Builder-style: set per-replay watchdog budgets.
    #[must_use]
    pub fn with_budget(mut self, budget: ReplayBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style: toggle deterministic cooperative scheduling (see
    /// [`SimConfig::deterministic`]).
    #[must_use]
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }
}

struct CommEntry {
    info: CommInfo,
    engine: MatchEngine,
    coll: CollSlot,
}

impl CommEntry {
    fn new(info: CommInfo) -> Self {
        let size = info.size();
        Self {
            info,
            engine: MatchEngine::new(size),
            coll: CollSlot::new(size),
        }
    }
}

struct Shared {
    comms: Vec<CommEntry>,
    requests: RequestTable,
    vt: Vec<f64>,
    blocked: Vec<bool>,
    nblocked: usize,
    finished: Vec<bool>,
    nfinished: usize,
    fatal: Option<MpiError>,
    /// Holder of the execution turn under deterministic scheduling
    /// ([`SimConfig::deterministic`]); unused otherwise.
    turn: usize,
}

/// A simulated MPI world. Construct with [`World::new`], then execute
/// programs with [`run_native`] / [`run_with_layers`] (which build the
/// world internally) or drive ranks manually through [`Pmpi`] handles.
pub struct World {
    cfg: SimConfig,
    state: Mutex<Shared>,
    /// One condvar per rank for targeted wakeups; all bound to `state`.
    cvs: Vec<Condvar>,
    /// Wall-clock watchdog deadline for this run (from the replay budget).
    deadline: Option<Instant>,
}

impl World {
    /// Create a world with `COMM_WORLD` over `cfg.nprocs` ranks.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Arc<Self> {
        let n = cfg.nprocs;
        let shared = Shared {
            comms: vec![CommEntry::new(CommInfo::world(n))],
            requests: RequestTable::new(),
            vt: vec![0.0; n],
            blocked: vec![false; n],
            nblocked: 0,
            finished: vec![false; n],
            nfinished: 0,
            fatal: None,
            turn: 0,
        };
        let deadline = cfg
            .budget
            .max_wall_clock
            .map(|limit| Instant::now() + limit);
        Arc::new(Self {
            cfg,
            state: Mutex::new(shared),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            deadline,
        })
    }

    /// Number of ranks.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    /// The world configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    // ---- internal helpers -------------------------------------------------

    fn resolve(s: &Shared, comm: Comm, world_rank: usize) -> Result<(usize, usize)> {
        let idx = comm.0 as usize;
        let entry = s.comms.get(idx).ok_or(MpiError::InvalidComm)?;
        if entry.info.freed {
            return Err(MpiError::InvalidComm);
        }
        let crank = entry
            .info
            .comm_rank_of(world_rank)
            .ok_or(MpiError::InvalidComm)?;
        Ok((idx, crank))
    }

    fn fatal_err(s: &Shared) -> Option<MpiError> {
        s.fatal.clone()
    }

    /// Declare a watchdog timeout as the world's fatal error and wake every
    /// rank. An earlier fatal (first cause) wins.
    fn trip_timeout(&self, s: &mut Shared, detail: String) -> MpiError {
        if s.fatal.is_none() {
            s.fatal = Some(MpiError::ReplayTimeout { detail });
            for cv in &self.cvs {
                cv.notify_all();
            }
        }
        s.fatal.clone().expect("fatal just set")
    }

    /// Fatal-or-watchdog check. An existing fatal error wins; otherwise the
    /// wall-clock deadline is consulted here — on every runtime entry — so
    /// even non-blocking spin loops (`iprobe`/`test` livelocks) observe the
    /// watchdog, not just ranks parked in `block_on`.
    fn guard(&self, s: &mut Shared) -> Option<MpiError> {
        if let Some(f) = Self::fatal_err(s) {
            return Some(f);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let limit = self.cfg.budget.max_wall_clock.unwrap_or_default();
                return Some(
                    self.trip_timeout(s, format!("wall-clock budget of {limit:?} exceeded")),
                );
            }
        }
        None
    }

    /// Virtual-time budget check, called after `rank`'s clock advances.
    fn check_vt_budget(&self, s: &mut Shared, rank: usize) -> Result<()> {
        if let Some(limit) = self.cfg.budget.max_virtual_time {
            if s.vt[rank] > limit {
                let vt = s.vt[rank];
                return Err(self.trip_timeout(
                    s,
                    format!("virtual-time budget of {limit}s exceeded (rank {rank} at {vt:.6}s)"),
                ));
            }
        }
        Ok(())
    }

    /// Lock shared state and — in deterministic mode — park until `rank`
    /// holds the execution turn. Once the world has a fatal error the turn
    /// discipline is abandoned so every rank can unwind concurrently.
    fn enter(&self, rank: usize) -> parking_lot::MutexGuard<'_, Shared> {
        let mut g = self.state.lock();
        if self.cfg.deterministic {
            while g.fatal.is_none() && g.turn != rank {
                if self.guard(&mut g).is_some() {
                    break; // watchdog tripped: fatal is now set
                }
                self.park(&mut g, rank);
            }
        }
        g
    }

    /// Wait on `rank`'s condvar, bounded by the wall-clock deadline when
    /// one is configured (so parked ranks re-check the watchdog).
    fn park(&self, g: &mut parking_lot::MutexGuard<'_, Shared>, rank: usize) {
        match self.deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                let _ = self.cvs[rank].wait_for(g, remaining);
            }
            None => self.cvs[rank].wait(g),
        }
    }

    /// Deterministic mode: hand the execution turn from `from` to the next
    /// runnable (unfinished, not logically blocked) rank, round-robin. The
    /// caller must have made `from` ineligible first — blocked or finished
    /// — so the token never returns to a rank that cannot act. If no rank
    /// is eligible the token stays put; the caller's deadlock check owns
    /// that case.
    fn pass_turn(&self, g: &mut Shared, from: usize) {
        if !self.cfg.deterministic || g.turn != from || g.fatal.is_some() {
            return;
        }
        let n = self.cfg.nprocs;
        for off in 1..n {
            let r = (from + off) % n;
            if !g.finished[r] && !g.blocked[r] {
                g.turn = r;
                self.cvs[r].notify_all();
                return;
            }
        }
    }

    /// Block `rank` until `ready` yields a result, with deadlock detection.
    ///
    /// `blocked[r]` means *logically* blocked: `r`'s predicate was
    /// unsatisfied when last evaluated and no event since could have
    /// satisfied it. Every predicate-changing event ([`Self::unblock`])
    /// clears the flag of the rank it may have satisfied *before* notifying,
    /// so `nblocked == live ranks` holds exactly when no rank can ever make
    /// progress — a true deadlock, immune to wakeup-scheduling races.
    fn block_on<T>(
        &self,
        rank: usize,
        mut ready: impl FnMut(&mut Shared) -> Option<Result<T>>,
    ) -> Result<T> {
        let mut g = self.state.lock();
        loop {
            // Deterministic mode: only the turn holder may evaluate its
            // predicate (evaluation can consume state — complete a request,
            // take a collective outcome), so park until the token arrives.
            // A fatal error suspends the discipline: every rank proceeds to
            // the unwind paths below.
            if self.cfg.deterministic
                && g.fatal.is_none()
                && g.turn != rank
                && self.guard(&mut g).is_none()
            {
                self.park(&mut g, rank);
                continue;
            }
            // Completion first: an operation whose predicate is already
            // satisfied succeeds even if the job is being torn down — only
            // operations that would still have to wait observe the abort.
            if let Some(out) = ready(&mut g) {
                Self::clear_blocked(&mut g, rank);
                return out;
            }
            if let Some(f) = self.guard(&mut g) {
                Self::clear_blocked(&mut g, rank);
                return Err(f);
            }
            if !g.blocked[rank] {
                g.blocked[rank] = true;
                g.nblocked += 1;
            }
            if g.nblocked == self.cfg.nprocs - g.nfinished {
                // Every unfinished rank (including us) is blocked: deadlock.
                let blocked_ranks: Vec<usize> = g
                    .blocked
                    .iter()
                    .enumerate()
                    .filter_map(|(r, &b)| b.then_some(r))
                    .collect();
                let err = MpiError::Deadlock { blocked_ranks };
                g.fatal = Some(err.clone());
                Self::clear_blocked(&mut g, rank);
                for cv in &self.cvs {
                    cv.notify_all();
                }
                return Err(err);
            }
            // No deadlock, so some other rank is runnable: hand it the
            // turn (no-op outside deterministic mode). On timeout of the
            // bounded wait the loop re-enters `guard`, which trips the
            // watchdog and unwinds every rank.
            self.pass_turn(&mut g, rank);
            self.park(&mut g, rank);
        }
    }

    fn clear_blocked(s: &mut Shared, rank: usize) {
        if s.blocked[rank] {
            s.blocked[rank] = false;
            s.nblocked -= 1;
        }
    }

    /// An event occurred that may satisfy `world_rank`'s blocking
    /// predicate: clear its logical-block flag and wake it.
    fn unblock(&self, s: &mut Shared, world_rank: usize) {
        Self::clear_blocked(s, world_rank);
        self.cvs[world_rank].notify_all();
    }

    /// Complete a recv request (and, for rendezvous messages, the paired
    /// send request) and wake the owners. Caller holds the lock.
    fn complete_recv_locked(&self, s: &mut Shared, req_id: u64, env: Envelope) {
        if let Some(sreq) = env.send_req {
            let sender = s.requests.complete_send(sreq);
            self.unblock(s, sender);
        }
        s.requests.complete_recv(req_id, env);
        let owner = s
            .requests
            .get(Request(req_id))
            .expect("just completed")
            .owner;
        self.unblock(s, owner);
    }

    // ---- point-to-point ---------------------------------------------------

    pub(crate) fn op_now(&self, rank: usize) -> f64 {
        self.state.lock().vt[rank]
    }

    pub(crate) fn op_compute(&self, rank: usize, seconds: f64) -> Result<()> {
        let mut g = self.state.lock();
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        g.vt[rank] += seconds.max(0.0);
        self.check_vt_budget(&mut g, rank)
    }

    pub(crate) fn op_fatal_check(&self) -> Result<()> {
        let mut g = self.state.lock();
        match self.guard(&mut g) {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    pub(crate) fn op_comm_rank(&self, rank: usize, comm: Comm) -> Result<usize> {
        let g = self.state.lock();
        Self::resolve(&g, comm, rank).map(|(_, crank)| crank)
    }

    pub(crate) fn op_comm_size(&self, rank: usize, comm: Comm) -> Result<usize> {
        let g = self.state.lock();
        Self::resolve(&g, comm, rank).map(|(idx, _)| g.comms[idx].info.size())
    }

    pub(crate) fn op_translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        let g = self.state.lock();
        let entry = g.comms.get(comm.0 as usize).ok_or(MpiError::InvalidComm)?;
        entry
            .info
            .world_rank_of(comm_rank)
            .ok_or(MpiError::InvalidRank {
                rank: comm_rank as i32,
                comm_size: entry.info.size(),
            })
    }

    pub(crate) fn op_isend(
        &self,
        rank: usize,
        comm: Comm,
        dest: i32,
        tag: Tag,
        data: Bytes,
    ) -> Result<Request> {
        let mut g = self.enter(rank);
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        let (idx, crank) = Self::resolve(&g, comm, rank)?;
        let size = g.comms[idx].info.size();
        if dest < 0 || dest as usize >= size {
            return Err(MpiError::InvalidRank {
                rank: dest,
                comm_size: size,
            });
        }
        g.vt[rank] += self.cfg.vtime.send_overhead;
        self.check_vt_budget(&mut g, rank)?;
        let eager = self.cfg.eager_limit.is_none_or(|limit| data.len() <= limit);
        let req = g.requests.create(RequestEntry {
            owner: rank,
            comm,
            kind: ReqKind::Send,
            src_spec: dest,
            tag_spec: tag,
            state: if eager {
                ReqState::SendDone
            } else {
                ReqState::Pending
            },
        });
        let env = Envelope {
            src: crank,
            dst: dest as usize,
            tag,
            payload: data,
            arrival_seq: 0,
            send_vt: g.vt[rank],
            send_req: (!eager).then_some(req.0),
        };
        let dst_world = g.comms[idx]
            .info
            .world_rank_of(dest as usize)
            .expect("validated dest");
        match g.comms[idx].engine.deliver(env) {
            Delivery::Matched {
                req: rreq,
                envelope,
            } => {
                self.complete_recv_locked(&mut g, rreq, envelope);
            }
            Delivery::Queued => {
                // A new unexpected message may satisfy a blocked probe.
                self.unblock(&mut g, dst_world);
            }
        }
        Ok(req)
    }

    pub(crate) fn op_irecv(&self, rank: usize, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        let mut g = self.enter(rank);
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        let (idx, crank) = Self::resolve(&g, comm, rank)?;
        let size = g.comms[idx].info.size();
        if src != ANY_SOURCE && (src < 0 || src as usize >= size) {
            return Err(MpiError::InvalidRank {
                rank: src,
                comm_size: size,
            });
        }
        let req = g.requests.create(RequestEntry {
            owner: rank,
            comm,
            kind: ReqKind::Recv,
            src_spec: src,
            tag_spec: tag,
            state: ReqState::Pending,
        });
        let policy = self.cfg.policy;
        if let Some(env) = g.comms[idx].engine.post(crank, req.0, src, tag, policy) {
            self.complete_recv_locked(&mut g, req.0, env);
        }
        Ok(req)
    }

    fn finish_wait(&self, s: &mut Shared, rank: usize, req: Request) -> Result<(Status, Bytes)> {
        let entry = s.requests.consume(req)?;
        match entry.state {
            ReqState::SendDone => Ok((
                Status {
                    source: rank,
                    tag: entry.tag_spec,
                },
                Bytes::new(),
            )),
            ReqState::RecvDone(env) => {
                s.vt[rank] =
                    self.cfg
                        .vtime
                        .recv_complete(env.send_vt, s.vt[rank], env.payload.len());
                Ok((
                    Status {
                        source: env.src,
                        tag: env.tag,
                    },
                    env.payload,
                ))
            }
            ReqState::Pending => unreachable!("finish_wait on incomplete request"),
        }
    }

    pub(crate) fn op_wait(&self, rank: usize, req: Request) -> Result<(Status, Bytes)> {
        self.block_on(rank, |s| {
            let entry = match s.requests.get(req) {
                Ok(e) => e,
                Err(e) => return Some(Err(e)),
            };
            if entry.owner != rank {
                return Some(Err(MpiError::ToolProtocol {
                    detail: format!("rank {rank} waited on rank {}'s request", entry.owner),
                }));
            }
            if entry.is_done() {
                Some(self.finish_wait(s, rank, req))
            } else {
                None
            }
        })
    }

    pub(crate) fn op_test(&self, rank: usize, req: Request) -> Result<Option<(Status, Bytes)>> {
        let mut g = self.enter(rank);
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        let entry = g.requests.get(req)?;
        if entry.owner != rank {
            return Err(MpiError::ToolProtocol {
                detail: format!("rank {rank} tested rank {}'s request", entry.owner),
            });
        }
        if entry.is_done() {
            self.finish_wait(&mut g, rank, req).map(Some)
        } else {
            Ok(None)
        }
    }

    pub(crate) fn op_waitany(
        &self,
        rank: usize,
        reqs: &[Request],
    ) -> Result<(usize, Status, Bytes)> {
        if reqs.is_empty() {
            return Err(MpiError::ToolProtocol {
                detail: "waitany on an empty request list".to_owned(),
            });
        }
        self.block_on(rank, |s| {
            for (i, r) in reqs.iter().enumerate() {
                match s.requests.get(*r) {
                    Ok(e) if e.is_done() && e.owner == rank => {
                        return Some(self.finish_wait(s, rank, *r).map(|(st, b)| (i, st, b)));
                    }
                    Ok(_) => {}
                    Err(e) => return Some(Err(e)),
                }
            }
            None
        })
    }

    pub(crate) fn op_testany(
        &self,
        rank: usize,
        reqs: &[Request],
    ) -> Result<Option<(usize, Status, Bytes)>> {
        let mut g = self.enter(rank);
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        for (i, r) in reqs.iter().enumerate() {
            match g.requests.get(*r) {
                Ok(e) if e.is_done() && e.owner == rank => {
                    return self
                        .finish_wait(&mut g, rank, *r)
                        .map(|(st, b)| Some((i, st, b)));
                }
                Ok(_) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    pub(crate) fn op_waitsome(
        &self,
        rank: usize,
        reqs: &[Request],
    ) -> Result<Vec<(usize, Status, Bytes)>> {
        if reqs.is_empty() {
            return Err(MpiError::ToolProtocol {
                detail: "waitsome on an empty request list".to_owned(),
            });
        }
        self.block_on(rank, |s| {
            let mut done = Vec::new();
            for (i, r) in reqs.iter().enumerate() {
                match s.requests.get(*r) {
                    Ok(e) if e.is_done() && e.owner == rank => done.push(i),
                    Ok(_) => {}
                    Err(e) => return Some(Err(e)),
                }
            }
            if done.is_empty() {
                return None;
            }
            let mut out = Vec::with_capacity(done.len());
            for i in done {
                match self.finish_wait(s, rank, reqs[i]) {
                    Ok((st, b)) => out.push((i, st, b)),
                    Err(e) => return Some(Err(e)),
                }
            }
            Some(Ok(out))
        })
    }

    pub(crate) fn op_probe(
        &self,
        rank: usize,
        comm: Comm,
        src: i32,
        tag: Tag,
    ) -> Result<ProbeInfo> {
        let policy = self.cfg.policy;
        self.block_on(rank, move |s| {
            let (idx, crank) = match Self::resolve(s, comm, rank) {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            };
            s.comms[idx].engine.probe(crank, src, tag, policy).map(Ok)
        })
    }

    pub(crate) fn op_iprobe(
        &self,
        rank: usize,
        comm: Comm,
        src: i32,
        tag: Tag,
    ) -> Result<Option<ProbeInfo>> {
        let mut g = self.enter(rank);
        if let Some(f) = self.guard(&mut g) {
            return Err(f);
        }
        let (idx, crank) = Self::resolve(&g, comm, rank)?;
        let policy = self.cfg.policy;
        Ok(g.comms[idx].engine.probe(crank, src, tag, policy))
    }

    // ---- collectives ------------------------------------------------------

    /// Shared rendezvous path for every collective operation.
    fn collective(
        &self,
        rank: usize,
        comm: Comm,
        sig: CollSig,
        contribution: Contribution,
    ) -> Result<CollOutcome> {
        let gen = {
            let mut g = self.enter(rank);
            if let Some(f) = self.guard(&mut g) {
                return Err(f);
            }
            let (idx, crank) = Self::resolve(&g, comm, rank)?;
            g.vt[rank] += self.cfg.vtime.send_overhead;
            self.check_vt_budget(&mut g, rank)?;
            let vt = g.vt[rank];
            let (gen, last) = match g.comms[idx].coll.enter(crank, sig, contribution, vt) {
                Ok(v) => v,
                Err(e) => {
                    // Mismatched collective: a program bug that would hang
                    // the other participants — declare it globally.
                    g.fatal = Some(e.clone());
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                    return Err(e);
                }
            };
            if last {
                let (sig, contribs, max_vt) = g.comms[idx].coll.take_contributions();
                let size = g.comms[idx].info.size();
                let result_vt = max_vt + self.cfg.vtime.collective_cost(size);
                let outcomes = match sig {
                    CollSig::CommDup | CollSig::CommSplit | CollSig::CommFree => {
                        self.comm_management(&mut g, idx, sig, &contribs)
                    }
                    _ => combine(sig, &contribs),
                };
                g.comms[idx].coll.finish(gen, outcomes, result_vt);
                let members: Vec<usize> = g.comms[idx].info.group.clone();
                for m in members {
                    if m != rank {
                        self.unblock(&mut g, m);
                    }
                }
            }
            gen
        };
        let idx = comm.0 as usize;
        let crank = {
            let g = self.state.lock();
            g.comms[idx]
                .info
                .comm_rank_of(rank)
                .ok_or(MpiError::InvalidComm)?
        };
        let (outcome, vt) =
            self.block_on(rank, |s| s.comms[idx].coll.try_take(gen, crank).map(Ok))?;
        let mut g = self.state.lock();
        g.vt[rank] = g.vt[rank].max(vt);
        self.check_vt_budget(&mut g, rank)?;
        outcome
    }

    /// Combine communicator-management collectives; owns the comm table.
    fn comm_management(
        &self,
        s: &mut Shared,
        parent_idx: usize,
        sig: CollSig,
        contribs: &[Contribution],
    ) -> std::result::Result<Vec<CollOutcome>, MpiError> {
        let n = contribs.len();
        match sig {
            CollSig::CommDup => {
                let parent = &s.comms[parent_idx].info;
                let id = Comm(s.comms.len() as u32);
                let info = CommInfo::derived(
                    id,
                    parent.group.clone(),
                    self.cfg.nprocs,
                    format!("dup of {}", parent.label),
                );
                s.comms.push(CommEntry::new(info));
                Ok(vec![CollOutcome::Comm(id); n])
            }
            CollSig::CommSplit => {
                let parent_group = s.comms[parent_idx].info.group.clone();
                let parent_label = s.comms[parent_idx].info.label.clone();
                // Collect (color, key, comm rank) triples.
                let mut triples: Vec<(i64, i64, usize)> = Vec::with_capacity(n);
                for (crank, c) in contribs.iter().enumerate() {
                    match c {
                        Contribution::Split { color, key } => triples.push((*color, *key, crank)),
                        _ => {
                            return Err(MpiError::CollectiveMismatch {
                                detail: "comm_split got a non-split contribution".to_owned(),
                            })
                        }
                    }
                }
                let mut colors: Vec<i64> =
                    triples.iter().map(|t| t.0).filter(|&c| c >= 0).collect();
                colors.sort_unstable();
                colors.dedup();
                let mut outcomes = vec![CollOutcome::NoComm; n];
                for color in colors {
                    let mut members: Vec<(i64, usize)> = triples
                        .iter()
                        .filter(|t| t.0 == color)
                        .map(|t| (t.1, t.2))
                        .collect();
                    members.sort_unstable();
                    let group: Vec<usize> = members
                        .iter()
                        .map(|&(_, crank)| parent_group[crank])
                        .collect();
                    let id = Comm(s.comms.len() as u32);
                    let info = CommInfo::derived(
                        id,
                        group,
                        self.cfg.nprocs,
                        format!("split(color={color}) of {parent_label}"),
                    );
                    s.comms.push(CommEntry::new(info));
                    for &(_, crank) in &members {
                        outcomes[crank] = CollOutcome::Comm(id);
                    }
                }
                Ok(outcomes)
            }
            CollSig::CommFree => {
                s.comms[parent_idx].info.freed = true;
                Ok(vec![CollOutcome::None; n])
            }
            _ => unreachable!("comm_management called for a data collective"),
        }
    }

    pub(crate) fn op_barrier(&self, rank: usize, comm: Comm) -> Result<()> {
        match self.collective(rank, comm, CollSig::Barrier, Contribution::None)? {
            CollOutcome::None => Ok(()),
            other => Err(MpiError::ToolProtocol {
                detail: format!("barrier returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_bcast(
        &self,
        rank: usize,
        comm: Comm,
        root: usize,
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        let crank = self.op_comm_rank(rank, comm)?;
        let contribution = if crank == root {
            Contribution::Bytes(data.ok_or_else(|| MpiError::ToolProtocol {
                detail: "bcast root passed no data".to_owned(),
            })?)
        } else {
            Contribution::None
        };
        match self.collective(rank, comm, CollSig::Bcast { root }, contribution)? {
            CollOutcome::Bytes(b) => Ok(b),
            other => Err(MpiError::ToolProtocol {
                detail: format!("bcast returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_reduce_u64(
        &self,
        rank: usize,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        match self.collective(
            rank,
            comm,
            CollSig::ReduceU64 { root, op },
            Contribution::U64s(value),
        )? {
            CollOutcome::U64s(v) => Ok(Some(v)),
            CollOutcome::None => Ok(None),
            other => Err(MpiError::ToolProtocol {
                detail: format!("reduce returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_allreduce_u64(
        &self,
        rank: usize,
        comm: Comm,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Vec<u64>> {
        match self.collective(
            rank,
            comm,
            CollSig::AllreduceU64 { op },
            Contribution::U64s(value),
        )? {
            CollOutcome::U64s(v) => Ok(v),
            other => Err(MpiError::ToolProtocol {
                detail: format!("allreduce returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_reduce_f64(
        &self,
        rank: usize,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        match self.collective(
            rank,
            comm,
            CollSig::ReduceF64 { root, op },
            Contribution::F64s(value),
        )? {
            CollOutcome::F64s(v) => Ok(Some(v)),
            CollOutcome::None => Ok(None),
            other => Err(MpiError::ToolProtocol {
                detail: format!("reduce returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_allreduce_f64(
        &self,
        rank: usize,
        comm: Comm,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Vec<f64>> {
        match self.collective(
            rank,
            comm,
            CollSig::AllreduceF64 { op },
            Contribution::F64s(value),
        )? {
            CollOutcome::F64s(v) => Ok(v),
            other => Err(MpiError::ToolProtocol {
                detail: format!("allreduce returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_gather(
        &self,
        rank: usize,
        comm: Comm,
        root: usize,
        data: Bytes,
    ) -> Result<Option<Vec<Bytes>>> {
        match self.collective(
            rank,
            comm,
            CollSig::Gather { root },
            Contribution::Bytes(data),
        )? {
            CollOutcome::BytesVec(v) => Ok(Some(v)),
            CollOutcome::None => Ok(None),
            other => Err(MpiError::ToolProtocol {
                detail: format!("gather returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_allgather(&self, rank: usize, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        match self.collective(rank, comm, CollSig::Allgather, Contribution::Bytes(data))? {
            CollOutcome::BytesVec(v) => Ok(v),
            other => Err(MpiError::ToolProtocol {
                detail: format!("allgather returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_scatter(
        &self,
        rank: usize,
        comm: Comm,
        root: usize,
        data: Option<Vec<Bytes>>,
    ) -> Result<Bytes> {
        let crank = self.op_comm_rank(rank, comm)?;
        let contribution = if crank == root {
            Contribution::BytesVec(data.ok_or_else(|| MpiError::ToolProtocol {
                detail: "scatter root passed no data".to_owned(),
            })?)
        } else {
            Contribution::None
        };
        match self.collective(rank, comm, CollSig::Scatter { root }, contribution)? {
            CollOutcome::Bytes(b) => Ok(b),
            other => Err(MpiError::ToolProtocol {
                detail: format!("scatter returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_alltoall(
        &self,
        rank: usize,
        comm: Comm,
        data: Vec<Bytes>,
    ) -> Result<Vec<Bytes>> {
        match self.collective(rank, comm, CollSig::Alltoall, Contribution::BytesVec(data))? {
            CollOutcome::BytesVec(v) => Ok(v),
            other => Err(MpiError::ToolProtocol {
                detail: format!("alltoall returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_comm_dup(&self, rank: usize, comm: Comm) -> Result<Comm> {
        match self.collective(rank, comm, CollSig::CommDup, Contribution::None)? {
            CollOutcome::Comm(c) => Ok(c),
            other => Err(MpiError::ToolProtocol {
                detail: format!("comm_dup returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_comm_split(
        &self,
        rank: usize,
        comm: Comm,
        color: i64,
        key: i64,
    ) -> Result<Option<Comm>> {
        match self.collective(
            rank,
            comm,
            CollSig::CommSplit,
            Contribution::Split { color, key },
        )? {
            CollOutcome::Comm(c) => Ok(Some(c)),
            CollOutcome::NoComm => Ok(None),
            other => Err(MpiError::ToolProtocol {
                detail: format!("comm_split returned {other:?}"),
            }),
        }
    }

    pub(crate) fn op_comm_free(&self, rank: usize, comm: Comm) -> Result<()> {
        if comm == Comm::WORLD {
            return Err(MpiError::ToolProtocol {
                detail: "cannot free MPI_COMM_WORLD".to_owned(),
            });
        }
        match self.collective(rank, comm, CollSig::CommFree, Contribution::None)? {
            CollOutcome::None => Ok(()),
            other => Err(MpiError::ToolProtocol {
                detail: format!("comm_free returned {other:?}"),
            }),
        }
    }

    // ---- lifecycle --------------------------------------------------------

    fn mark_finished(&self, rank: usize) {
        let mut g = self.state.lock();
        if g.finished[rank] {
            return;
        }
        g.finished[rank] = true;
        g.nfinished += 1;
        // A finishing rank can strand blocked peers: recheck deadlock.
        if g.fatal.is_none() && g.nblocked > 0 && g.nblocked == self.cfg.nprocs - g.nfinished {
            let blocked_ranks: Vec<usize> = g
                .blocked
                .iter()
                .enumerate()
                .filter_map(|(r, &b)| b.then_some(r))
                .collect();
            g.fatal = Some(MpiError::Deadlock { blocked_ranks });
        }
        self.pass_turn(&mut g, rank);
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    fn abort(&self, rank: usize) {
        let mut g = self.state.lock();
        if g.fatal.is_none() {
            g.fatal = Some(MpiError::Aborted { by_rank: rank });
        }
        if !g.finished[rank] {
            g.finished[rank] = true;
            g.nfinished += 1;
        }
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    fn leak_report(&self) -> LeakReport {
        let g = self.state.lock();
        let comm_leaks = g
            .comms
            .iter()
            .filter(|c| c.info.derived && !c.info.freed)
            .map(|c| CommLeak {
                comm: c.info.id,
                label: c.info.label.clone(),
                size: c.info.size(),
            })
            .collect();
        let request_leaks = g.requests.live_by_owner(self.cfg.nprocs);
        let unreceived_messages = g.comms.iter().map(|c| c.engine.total_unexpected()).sum();
        LeakReport {
            comm_leaks,
            request_leaks,
            unreceived_messages,
        }
    }

    fn snapshot_vt(&self) -> Vec<f64> {
        self.state.lock().vt.clone()
    }

    fn fatal(&self) -> Option<MpiError> {
        self.state.lock().fatal.clone()
    }
}

/// Factory building each rank's interposition stack on top of the runtime
/// handle — the analog of PnMPI loading a tool-module chain. Construction
/// is fallible (tool setup may itself perform MPI calls, e.g. the shadow
/// `comm_dup`); a failure is recorded as that rank's error instead of
/// panicking the harness.
pub type LayerFactory<'a> = dyn Fn(usize, Pmpi) -> Result<Box<dyn Mpi>> + Sync + 'a;

use crate::proc_api::Mpi;

/// Execute `program` on a fresh world with a tool stack built by `factory`
/// for each rank. Blocks until every rank thread exits; returns the
/// [`RunOutcome`] with per-rank errors, leak census, and virtual times.
pub fn run_with_layers(
    cfg: &SimConfig,
    program: &dyn MpiProgram,
    factory: &LayerFactory<'_>,
) -> RunOutcome {
    let world = World::new(cfg.clone());
    let n = cfg.nprocs;
    let mut rank_errors: Vec<Option<MpiError>> = vec![None; n];
    let wall_start = std::time::Instant::now();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let builder = scope
                .builder()
                .stack_size(cfg.stack_size)
                .name(format!("rank-{rank}"));
            let handle = builder
                .spawn(move |_| {
                    let pmpi = Pmpi::new(Arc::clone(&world), rank);
                    // The unwind barrier covers the *whole* per-rank
                    // lifecycle — tool-stack construction, the program
                    // body, and finalize — so a panicking tool layer is
                    // isolated exactly like a panicking application rank.
                    // The stack is dropped inside the barrier too (during
                    // unwind on panic), letting tool layers flush partial
                    // state from `Drop`.
                    let result = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                        let mut stack = factory(rank, pmpi)?;
                        program.run(stack.as_mut())?;
                        stack.finalize()
                    }));
                    let outcome: Option<MpiError> = match result {
                        Ok(Ok(())) => None,
                        Ok(Err(e)) => Some(e),
                        Err(panic) => Some(MpiError::Panicked {
                            message: panic_message(panic.as_ref()),
                        }),
                    };
                    match &outcome {
                        None => world.mark_finished(rank),
                        Some(_) => world.abort(rank),
                    }
                    outcome
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            rank_errors[rank] = h.join().expect("rank thread never panics past the catch");
        }
    })
    .expect("scope completes");

    let per_rank_vt = world.snapshot_vt();
    let makespan = per_rank_vt.iter().copied().fold(0.0_f64, f64::max);
    RunOutcome {
        rank_errors,
        leaks: world.leak_report(),
        fatal: world.fatal(),
        per_rank_vt,
        wall_elapsed: wall_start.elapsed(),
        makespan,
    }
}

/// Execute `program` with no tool layers (the "native MPI" baseline used
/// for Table II slowdown denominators).
pub fn run_native(cfg: &SimConfig, program: &dyn MpiProgram) -> RunOutcome {
    run_with_layers(cfg, program, &|_, pmpi| Ok(Box::new(pmpi)))
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod thread_safety {
    //! The isolation contract parallel exploration rests on, checked at
    //! compile time: every replay builds a *fresh* [`World`] inside
    //! [`run_with_layers`], so concurrent replays on a scheduler worker
    //! pool share no mutable runtime state — only `Sync` configuration
    //! ([`SimConfig`], an `Arc<FaultPlan>`, the program itself). If a
    //! process-global ever sneaks into these types (a `Cell`, an `Rc`, a
    //! raw pointer), these assertions stop compiling before any test can
    //! race.

    use super::*;
    use crate::fault::FaultPlan;

    fn sync_send<T: Send + Sync + ?Sized>() {}

    #[test]
    fn replay_state_is_per_world_and_configuration_is_sync() {
        sync_send::<World>();
        sync_send::<SimConfig>();
        sync_send::<FaultPlan>();
        sync_send::<dyn MpiProgram>();
        sync_send::<Pmpi>();
    }
}
