//! Nonblocking-communication request table.

use std::collections::HashMap;

use crate::comm::Comm;
use crate::envelope::Envelope;
use crate::error::{MpiError, Result};
use crate::types::Tag;

/// A request handle (the analog of `MPI_Request`). Handles are globally
/// unique for a run, so tool layers can key their own metadata on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request(pub u64);

/// What kind of operation a request tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// An `isend`. Completes at post time in eager mode (the message is
    /// buffered), or only when matched by a receive in rendezvous mode
    /// (payload above the configured eager limit).
    Send,
    /// An `irecv`.
    Recv,
}

/// Completion state of a request.
#[derive(Debug)]
pub enum ReqState {
    /// Still waiting for a match (unmatched receives, rendezvous sends).
    Pending,
    /// Send completed (buffer reusable).
    SendDone,
    /// Receive matched; envelope held until the owner waits.
    RecvDone(Envelope),
}

/// One live request.
#[derive(Debug)]
pub struct RequestEntry {
    /// World rank that created the request (only the owner may wait on it).
    pub owner: usize,
    /// Communicator of the operation.
    pub comm: Comm,
    /// Send or receive.
    pub kind: ReqKind,
    /// Source specifier as posted (receives; `ANY_SOURCE` marks the request
    /// non-deterministic — what DAMPI keys its epochs on).
    pub src_spec: i32,
    /// Tag specifier as posted.
    pub tag_spec: Tag,
    /// Completion state.
    pub state: ReqState,
}

impl RequestEntry {
    /// Whether the request has completed (waitable without blocking).
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.state, ReqState::SendDone | ReqState::RecvDone(_))
    }
}

/// Table of live requests. A request is removed when its owner consumes it
/// via `wait`/successful `test`; entries remaining at finalize are request
/// leaks (Table II's "R-Leak" column).
#[derive(Debug, Default)]
pub struct RequestTable {
    entries: HashMap<u64, RequestEntry>,
    next: u64,
}

impl RequestTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new request; returns its handle.
    pub fn create(&mut self, entry: RequestEntry) -> Request {
        let id = self.next;
        self.next += 1;
        self.entries.insert(id, entry);
        Request(id)
    }

    /// Look up a live request.
    pub fn get(&self, req: Request) -> Result<&RequestEntry> {
        self.entries.get(&req.0).ok_or(MpiError::InvalidRequest)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, req: Request) -> Result<&mut RequestEntry> {
        self.entries.get_mut(&req.0).ok_or(MpiError::InvalidRequest)
    }

    /// True if the request is live (not yet consumed).
    #[must_use]
    pub fn is_live(&self, req: Request) -> bool {
        self.entries.contains_key(&req.0)
    }

    /// Consume a completed request, removing it from the table.
    pub fn consume(&mut self, req: Request) -> Result<RequestEntry> {
        let entry = self
            .entries
            .remove(&req.0)
            .ok_or(MpiError::InvalidRequest)?;
        debug_assert!(entry.is_done(), "consumed an incomplete request");
        Ok(entry)
    }

    /// Complete a pending receive with a matched envelope.
    pub fn complete_recv(&mut self, req_id: u64, env: Envelope) {
        let entry = self
            .entries
            .get_mut(&req_id)
            .expect("matching engine completed an unknown request");
        debug_assert!(matches!(entry.state, ReqState::Pending));
        entry.state = ReqState::RecvDone(env);
    }

    /// Complete a pending rendezvous send (its message was matched by a
    /// receive). Returns the owning rank to wake.
    pub fn complete_send(&mut self, req_id: u64) -> usize {
        let entry = self
            .entries
            .get_mut(&req_id)
            .expect("matched a message of an unknown send request");
        debug_assert!(matches!(entry.kind, ReqKind::Send));
        debug_assert!(matches!(entry.state, ReqState::Pending));
        entry.state = ReqState::SendDone;
        entry.owner
    }

    /// Requests still live, grouped by owning rank — the R-leak census.
    #[must_use]
    pub fn live_by_owner(&self, nprocs: usize) -> Vec<usize> {
        let mut counts = vec![0usize; nprocs];
        for e in self.entries.values() {
            counts[e.owner] += 1;
        }
        counts
    }

    /// Number of live requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn send_entry() -> RequestEntry {
        RequestEntry {
            owner: 0,
            comm: Comm::WORLD,
            kind: ReqKind::Send,
            src_spec: 1,
            tag_spec: 0,
            state: ReqState::SendDone,
        }
    }

    fn recv_entry(owner: usize) -> RequestEntry {
        RequestEntry {
            owner,
            comm: Comm::WORLD,
            kind: ReqKind::Recv,
            src_spec: crate::types::ANY_SOURCE,
            tag_spec: 0,
            state: ReqState::Pending,
        }
    }

    #[test]
    fn create_and_consume() {
        let mut t = RequestTable::new();
        let r = t.create(send_entry());
        assert!(t.is_live(r));
        assert!(t.get(r).unwrap().is_done());
        t.consume(r).unwrap();
        assert!(!t.is_live(r));
        assert!(matches!(t.get(r), Err(MpiError::InvalidRequest)));
    }

    #[test]
    fn double_consume_is_invalid() {
        let mut t = RequestTable::new();
        let r = t.create(send_entry());
        t.consume(r).unwrap();
        assert!(matches!(t.consume(r), Err(MpiError::InvalidRequest)));
    }

    #[test]
    fn complete_recv_transitions_state() {
        let mut t = RequestTable::new();
        let r = t.create(recv_entry(1));
        assert!(!t.get(r).unwrap().is_done());
        t.complete_recv(
            r.0,
            Envelope {
                src: 0,
                dst: 1,
                tag: 0,
                payload: Bytes::from_static(b"x"),
                arrival_seq: 0,
                send_vt: 0.0,
                send_req: None,
            },
        );
        assert!(t.get(r).unwrap().is_done());
    }

    #[test]
    fn leak_census_by_owner() {
        let mut t = RequestTable::new();
        t.create(recv_entry(0));
        t.create(recv_entry(2));
        t.create(recv_entry(2));
        assert_eq!(t.live_by_owner(3), vec![1, 0, 2]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ids_are_unique() {
        let mut t = RequestTable::new();
        let a = t.create(send_entry());
        let b = t.create(send_entry());
        assert_ne!(a, b);
    }
}
