//! Substrate fault injection: a tool layer that perturbs the world
//! underneath the verifier.
//!
//! A real DAMPI deployment runs on clusters where the substrate
//! misbehaves: piggyback messages get delayed or lost by failing NICs,
//! ranks crash, and runaway interleavings livelock. The verifier must
//! *survive* these — record what happened, report partial coverage
//! honestly, and keep exploring the remaining frontier. [`FaultLayer`]
//! makes such failures reproducible in-process: it sits *below* the DAMPI
//! tool layer (closest to [`Pmpi`](crate::proc_api::Pmpi)), so an
//! injected fault hits both
//! application traffic and the tool's own piggyback messages on the shadow
//! communicator.
//!
//! Fault attribution is deliberately realistic: MPI does not tell a tool
//! *why* a message never arrived. A dropped message can therefore surface
//! as a deadlock (the receiver blocks forever), a replay timeout (the
//! watchdog fires first), or a divergence (a perturbed clock misses its
//! epoch decision). Tests assert on the *honest* downstream report, not on
//! the injection site.

use std::sync::Arc;

use bytes::Bytes;

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::error::Result;
use crate::matching::ProbeInfo;
use crate::proc_api::{Mpi, Status};
use crate::request::Request;
use crate::types::Tag;

/// Tag offset used by [`FaultAction::DropSend`]: the message is diverted to
/// a tag no receiver posts for, so it sits unreceived until teardown (and
/// shows up in the leak census as an unreceived message — the drop is
/// observable, like a real lost packet occupying switch counters).
pub const BLACK_HOLE_TAG_OFFSET: Tag = 1 << 20;

/// What to do when a [`FaultRule`] fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Divert the matched send to a black-hole tag: the payload never
    /// reaches any posted receive. The receiver blocks (deadlock or
    /// watchdog timeout) or analyzes without it (partial coverage).
    DropSend,
    /// Send the matched message twice (the duplicate is sent first and its
    /// request completed immediately, so the leak census stays clean).
    DuplicateSend,
    /// Charge `seconds` of virtual time before the matched send — a slow
    /// link on one message.
    DelaySend {
        /// Virtual seconds of injected latency.
        seconds: f64,
    },
    /// Panic on the rule's nth MPI operation — a crashing rank. Panic
    /// isolation in the run harness converts this into a recorded
    /// `MpiError::Panicked` for that rank.
    Crash {
        /// Payload of the injected panic.
        message: String,
    },
    /// Spin in `compute(step)` forever starting at the rule's nth MPI
    /// operation — a livelocked rank. Only a replay budget
    /// ([`crate::ReplayBudget`]) ends it, which is exactly what the
    /// watchdog tests exercise.
    Livelock {
        /// Virtual seconds charged per spin iteration.
        step: f64,
    },
}

impl FaultAction {
    /// True for actions that trigger on sends (`isend`), as opposed to the
    /// operation-indexed actions (`Crash`, `Livelock`).
    #[must_use]
    pub fn is_send_action(&self) -> bool {
        matches!(
            self,
            FaultAction::DropSend | FaultAction::DuplicateSend | FaultAction::DelaySend { .. }
        )
    }
}

/// One injection site.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// World rank the fault applies to (`None` = every rank).
    pub rank: Option<usize>,
    /// Communicator filter for send actions (`None` = any). The world
    /// shadow communicator created by the DAMPI layer is the first derived
    /// communicator, `Comm(1)` — target it to perturb piggyback traffic
    /// specifically.
    pub comm: Option<Comm>,
    /// Zero-based index of the event the rule fires on: for send actions,
    /// the nth *matching* send; for `Crash`/`Livelock`, the nth MPI
    /// operation issued through the layer.
    pub nth: u64,
    /// The injected fault.
    pub action: FaultAction,
}

impl FaultRule {
    /// Does this rule's filter accept a send by `rank` on `comm`?
    fn matches_send(&self, rank: usize, comm: Comm) -> bool {
        self.action.is_send_action()
            && self.rank.is_none_or(|r| r == rank)
            && self.comm.is_none_or(|c| c == comm)
    }
}

/// A reproducible set of substrate faults for one verification campaign.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Injection sites, checked in order; the first rule that fires on an
    /// event wins.
    pub rules: Vec<FaultRule>,
    /// Arm the plan only for guided replays, keeping the initial
    /// `SELF_RUN` (and the trace it seeds exploration with) clean.
    pub only_guided: bool,
}

impl FaultPlan {
    /// Empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add an injection site.
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Builder-style: arm only for guided replays.
    #[must_use]
    pub fn guided_only(mut self) -> Self {
        self.only_guided = true;
        self
    }

    /// Should the fault layer be installed for this run?
    #[must_use]
    pub fn armed(&self, self_run: bool) -> bool {
        if self.rules.is_empty() {
            return false;
        }
        !(self.only_guided && self_run)
    }
}

/// Process-level fault to inject into a shard *worker* — the extension of
/// the substrate-fault idea one layer up: instead of perturbing messages
/// under one replay, perturb the worker process the supervisor is
/// entrusting whole subtrees to. Each kind exercises one supervisor
/// recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WorkerFaultKind {
    /// Die instantly (process workers: `abort()`, i.e. the observable
    /// equivalent of a `kill -9`; in-process test workers: drop the
    /// connection). Exercises dead-worker detection via EOF/heartbeat
    /// loss and subtree re-dispatch.
    Kill,
    /// Execute the replay fully, then exit *without* sending the result
    /// frame. Exercises re-dispatch idempotence: the work was done, the
    /// ack was lost, and running it again must change nothing.
    ExitBeforeAck,
    /// Stop sending heartbeats and go silent without exiting. Exercises
    /// the heartbeat-timeout detector (a worker can be alive yet
    /// unresponsive — stuck in D-state, swapping, GC'd runtime).
    StallHeartbeats,
    /// Keep heartbeating but never finish the job. Exercises the
    /// wall-clock *lease* detector — the failure heartbeats cannot see.
    WedgeReplay,
    /// Send the result in a frame whose checksum is wrong. Exercises
    /// frame validation and treat-as-lost recovery.
    CorruptResult,
}

/// A reproducible process-level fault for one shard worker (the
/// [`FaultPlan`] analog of the worker supervisor — see `dampi-core`'s
/// `shard` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerFaultPlan {
    /// What goes wrong.
    pub kind: WorkerFaultKind,
    /// Zero-based index of the job (within the faulted worker) the fault
    /// fires on.
    pub nth_job: u64,
    /// Re-arm on every respawned incarnation of the worker slot. Default
    /// (false) fires only in the slot's first incarnation, so the
    /// supervisor's restart actually recovers — the chaos-smoke setting.
    /// `true` makes the slot a repeat offender, driving quarantine.
    pub persistent: bool,
}

impl WorkerFaultPlan {
    /// Parse a CLI spec: `kind:nth[:always]`, e.g. `kill:2`,
    /// `wedge:0:always`. Kinds: `kill`, `exit-before-ack`,
    /// `stall-heartbeats`, `wedge`, `corrupt-result`.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut parts = spec.split(':');
        let kind = match parts.next().unwrap_or("") {
            "kill" => WorkerFaultKind::Kill,
            "exit-before-ack" => WorkerFaultKind::ExitBeforeAck,
            "stall-heartbeats" => WorkerFaultKind::StallHeartbeats,
            "wedge" => WorkerFaultKind::WedgeReplay,
            "corrupt-result" => WorkerFaultKind::CorruptResult,
            other => {
                return Err(format!(
                    "unknown worker fault kind `{other}` (expected kill, \
                     exit-before-ack, stall-heartbeats, wedge, corrupt-result)"
                ))
            }
        };
        let nth_job = match parts.next() {
            None | Some("") => 0,
            Some(n) => n
                .parse()
                .map_err(|_| format!("worker fault job index `{n}` is not a number"))?,
        };
        let persistent = match parts.next() {
            None => false,
            Some("always") => true,
            Some(other) => return Err(format!("unexpected worker fault modifier `{other}`")),
        };
        if let Some(junk) = parts.next() {
            return Err(format!("trailing worker fault field `{junk}`"));
        }
        Ok(Self {
            kind,
            nth_job,
            persistent,
        })
    }
}

/// The fault-injection interposition layer. Transparent except where a
/// [`FaultRule`] fires.
pub struct FaultLayer<M: Mpi> {
    inner: M,
    plan: Arc<FaultPlan>,
    rank: usize,
    /// MPI operations issued through this layer (Crash/Livelock index).
    ops: u64,
    /// Per-rule count of matching sends seen so far.
    send_counts: Vec<u64>,
    /// Faults actually fired on this rank (diagnostics).
    fired: u64,
}

impl<M: Mpi> FaultLayer<M> {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: M, plan: Arc<FaultPlan>) -> Self {
        let rank = inner.world_rank();
        let send_counts = vec![0; plan.rules.len()];
        Self {
            inner,
            plan,
            rank,
            ops: 0,
            send_counts,
            fired: 0,
        }
    }

    /// Number of faults fired on this rank so far.
    #[must_use]
    pub fn faults_fired(&self) -> u64 {
        self.fired
    }

    /// Operation-indexed faults (`Crash`, `Livelock`): called on every MPI
    /// operation entering the layer.
    fn op_event(&mut self) -> Result<()> {
        let op_idx = self.ops;
        self.ops += 1;
        let plan = Arc::clone(&self.plan);
        for rule in &plan.rules {
            if rule.rank.is_some_and(|r| r != self.rank) || rule.nth != op_idx {
                continue;
            }
            match &rule.action {
                FaultAction::Crash { message } => {
                    self.fired += 1;
                    panic!("injected fault: {message}");
                }
                FaultAction::Livelock { step } => {
                    self.fired += 1;
                    let step = step.max(1e-9);
                    loop {
                        // Ends only when the world turns fatal — replay
                        // budget, abort, or deadlock declaration.
                        self.inner.compute(step)?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl<M: Mpi> Mpi for FaultLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }
    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.op_event()?;
        let plan = Arc::clone(&self.plan);
        for (i, rule) in plan.rules.iter().enumerate() {
            if !rule.matches_send(self.rank, comm) {
                continue;
            }
            let seen = self.send_counts[i];
            self.send_counts[i] += 1;
            if seen != rule.nth {
                continue;
            }
            self.fired += 1;
            match &rule.action {
                FaultAction::DropSend => {
                    return self
                        .inner
                        .isend(comm, dest, tag + BLACK_HOLE_TAG_OFFSET, data);
                }
                FaultAction::DuplicateSend => {
                    let dup = self.inner.isend(comm, dest, tag, data.clone())?;
                    self.inner.wait(dup)?;
                    return self.inner.isend(comm, dest, tag, data);
                }
                FaultAction::DelaySend { seconds } => {
                    self.inner.compute(seconds.max(0.0))?;
                    return self.inner.isend(comm, dest, tag, data);
                }
                _ => unreachable!("matches_send admits only send actions"),
            }
        }
        self.inner.isend(comm, dest, tag, data)
    }

    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.op_event()?;
        self.inner.irecv(comm, src, tag)
    }
    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        self.op_event()?;
        self.inner.wait(req)
    }
    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        self.op_event()?;
        self.inner.test(req)
    }
    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        self.op_event()?;
        self.inner.waitany(reqs)
    }
    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        self.op_event()?;
        self.inner.testany(reqs)
    }
    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        self.op_event()?;
        self.inner.waitsome(reqs)
    }
    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        self.op_event()?;
        self.inner.probe(comm, src, tag)
    }
    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        self.op_event()?;
        self.inner.iprobe(comm, src, tag)
    }

    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.op_event()?;
        self.inner.barrier(comm)
    }
    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.op_event()?;
        self.inner.bcast(comm, root, data)
    }
    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.op_event()?;
        self.inner.reduce_u64(comm, root, value, op)
    }
    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.op_event()?;
        self.inner.allreduce_u64(comm, value, op)
    }
    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.op_event()?;
        self.inner.reduce_f64(comm, root, value, op)
    }
    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.op_event()?;
        self.inner.allreduce_f64(comm, value, op)
    }
    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.op_event()?;
        self.inner.gather(comm, root, data)
    }
    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.op_event()?;
        self.inner.allgather(comm, data)
    }
    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.op_event()?;
        self.inner.scatter(comm, root, data)
    }
    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.op_event()?;
        self.inner.alltoall(comm, data)
    }

    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.op_event()?;
        self.inner.comm_dup(comm)
    }
    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.op_event()?;
        self.inner.comm_split(comm, color, key)
    }
    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.op_event()?;
        self.inner.comm_free(comm)
    }

    fn pcontrol(&mut self, code: i32) -> Result<()> {
        self.op_event()?;
        self.inner.pcontrol(code)
    }
    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.op_event()?;
        self.inner.compute(seconds)
    }
    fn finalize(&mut self) -> Result<()> {
        // Teardown is never an injection site: finalize must stay
        // fault-free so a clean run's leak census is trustworthy.
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use crate::runtime::{run_with_layers, ReplayBudget, SimConfig};
    use crate::types::ANY_SOURCE;
    use crate::MpiError;
    use std::time::Duration;

    fn bts(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }

    fn faulted(
        plan: FaultPlan,
        cfg: SimConfig,
        prog: impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync,
    ) -> crate::program::RunOutcome {
        let plan = Arc::new(plan);
        run_with_layers(&cfg, &FnProgram(prog), &move |_, pmpi| {
            Ok(Box::new(FaultLayer::new(pmpi, Arc::clone(&plan))))
        })
    }

    #[test]
    fn empty_plan_is_transparent() {
        let out = faulted(FaultPlan::new(), SimConfig::new(2), |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"hi"))?;
            } else {
                let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
                assert_eq!(st.source, 0);
                assert_eq!(&data[..], b"hi");
            }
            mpi.barrier(Comm::WORLD)
        });
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn dropped_send_blocks_receiver_until_watchdog() {
        let plan = FaultPlan::new().with_rule(FaultRule {
            rank: Some(0),
            comm: Some(Comm::WORLD),
            nth: 0,
            action: FaultAction::DropSend,
        });
        let cfg = SimConfig::new(2)
            .with_budget(ReplayBudget::default().with_max_wall_clock(Duration::from_millis(200)));
        let out = faulted(plan, cfg, |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"hi"))?;
            } else {
                mpi.recv(Comm::WORLD, 0, 7)?;
            }
            Ok(())
        });
        assert!(!out.succeeded());
        // The receiver blocked on a message that will never come. With one
        // rank still unblocked-but-finished this is declared a deadlock;
        // if the deadlock check races teardown, the watchdog fires. Either
        // way the run terminates and reports a fatal condition.
        let fatal = out.fatal.expect("run must not hang");
        assert!(
            matches!(
                fatal,
                MpiError::Deadlock { .. }
                    | MpiError::ReplayTimeout { .. }
                    | MpiError::Aborted { .. }
            ),
            "unexpected fatal: {fatal:?}"
        );
        // The dropped message is observable in the leak census.
        assert!(out.leaks.unreceived_messages >= 1);
    }

    #[test]
    fn duplicate_send_delivers_twice() {
        let plan = FaultPlan::new().with_rule(FaultRule {
            rank: Some(0),
            comm: None,
            nth: 0,
            action: FaultAction::DuplicateSend,
        });
        let out = faulted(plan, SimConfig::new(2), |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"x"))?;
            } else {
                let (a, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
                let (b, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
                assert_eq!((a.source, b.source), (0, 0));
            }
            Ok(())
        });
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn delayed_send_charges_virtual_time() {
        let plan = FaultPlan::new().with_rule(FaultRule {
            rank: Some(0),
            comm: None,
            nth: 0,
            action: FaultAction::DelaySend { seconds: 5.0 },
        });
        let out = faulted(plan, SimConfig::new(2), |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"x"))?;
            } else {
                mpi.recv(Comm::WORLD, 0, 7)?;
            }
            Ok(())
        });
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.makespan >= 5.0, "delay must show up: {}", out.makespan);
    }

    #[test]
    fn crash_is_isolated_and_recorded() {
        let plan = FaultPlan::new().with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Crash {
                message: "simulated rank failure".into(),
            },
        });
        let out = faulted(plan, SimConfig::new(2), |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"x"))?;
            } else {
                mpi.recv(Comm::WORLD, 0, 7)?;
            }
            Ok(())
        });
        assert!(!out.succeeded());
        match &out.rank_errors[1] {
            Some(MpiError::Panicked { message }) => {
                assert!(message.contains("simulated rank failure"));
            }
            other => panic!("expected isolated panic, got {other:?}"),
        }
    }

    #[test]
    fn livelock_is_killed_by_virtual_time_budget() {
        let plan = FaultPlan::new().with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Livelock { step: 0.5 },
        });
        let cfg =
            SimConfig::new(2).with_budget(ReplayBudget::default().with_max_virtual_time(10.0));
        let out = faulted(plan, cfg, |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, bts(b"x"))?;
            } else {
                mpi.recv(Comm::WORLD, 0, 7)?;
            }
            Ok(())
        });
        assert!(!out.succeeded());
        assert!(
            matches!(out.fatal, Some(MpiError::ReplayTimeout { .. })),
            "livelock must trip the watchdog, got {:?}",
            out.fatal
        );
    }

    #[test]
    fn worker_fault_spec_parses() {
        assert_eq!(
            WorkerFaultPlan::parse("kill:2").unwrap(),
            WorkerFaultPlan {
                kind: WorkerFaultKind::Kill,
                nth_job: 2,
                persistent: false,
            }
        );
        assert_eq!(
            WorkerFaultPlan::parse("wedge:0:always").unwrap(),
            WorkerFaultPlan {
                kind: WorkerFaultKind::WedgeReplay,
                nth_job: 0,
                persistent: true,
            }
        );
        // Bare kind defaults to the first job, one-shot.
        assert_eq!(WorkerFaultPlan::parse("corrupt-result").unwrap().nth_job, 0);
        for bad in [
            "",
            "explode",
            "kill:x",
            "kill:1:sometimes",
            "kill:1:always:x",
        ] {
            assert!(WorkerFaultPlan::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn guided_only_plan_is_disarmed_for_self_run() {
        let plan = FaultPlan::new()
            .with_rule(FaultRule {
                rank: None,
                comm: None,
                nth: 0,
                action: FaultAction::DropSend,
            })
            .guided_only();
        assert!(!plan.armed(true));
        assert!(plan.armed(false));
        // An empty plan never arms, regardless of run kind.
        assert!(!FaultPlan::new().armed(false));
    }
}
