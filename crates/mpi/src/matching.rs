//! The message-matching engine: MPI point-to-point semantics.
//!
//! One engine instance exists per communicator. It implements the MPI
//! matching rules the DAMPI algorithm depends on:
//!
//! * **tag/source matching** with `ANY_SOURCE` / `ANY_TAG` wildcards;
//! * **non-overtaking** (MPI 2.1 §3.5): two messages between the same pair
//!   on the same communicator and tag are matched in send order, and posted
//!   receives are matched in post order;
//! * a configurable **wildcard policy** deciding which source a wildcard
//!   receive takes when several sources have queued messages — this models
//!   the "native bias" of real MPI runtimes that masks Heisenbugs (paper
//!   §I), and is what DAMPI's guided replay overrides.
//!
//! The engine is a pure data structure (no locking, no threads) so the
//! semantics are testable in isolation; [`crate::runtime`] drives it under
//! the world lock.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::envelope::Envelope;
use crate::types::{source_matches, tag_matches, Tag};

/// How the runtime resolves a wildcard receive with several eligible
/// sources. Real MPI implementations have a fixed internal policy; making it
/// explicit (and seedable) lets tests demonstrate that *testing under one
/// policy misses bugs another policy exposes* — DAMPI's motivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchPolicy {
    /// Earliest-arrived message wins (typical eager-protocol behavior).
    #[default]
    ArrivalOrder,
    /// Lowest source rank wins (typical of some rendezvous queues).
    LowestRank,
    /// Pseudo-random choice derived from the given seed and a per-engine
    /// match counter; deterministic for a fixed seed.
    Seeded(u64),
}

/// A receive posted to the engine and not yet matched.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// Runtime request id to complete when a message matches.
    pub req: u64,
    /// Source specifier (`ANY_SOURCE` or a comm rank).
    pub src_spec: i32,
    /// Tag specifier (`ANY_TAG` or a tag).
    pub tag_spec: Tag,
    /// Post order (per destination), for earliest-posted-first matching.
    pub post_seq: u64,
}

/// Outcome of delivering an incoming message.
#[derive(Debug)]
pub enum Delivery {
    /// The message matched a posted receive; complete this request.
    Matched {
        /// Request id of the matched posted receive.
        req: u64,
        /// The message itself.
        envelope: Envelope,
    },
    /// No posted receive matched; the message was queued as unexpected.
    Queued,
}

/// Metadata returned by a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Source comm rank of the probed message.
    pub src: usize,
    /// Tag of the probed message.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
}

/// Per-communicator matching state.
#[derive(Debug)]
pub struct MatchEngine {
    size: usize,
    /// Unexpected-message queue per destination, in arrival order.
    unexpected: Vec<VecDeque<Envelope>>,
    /// Posted-receive queue per destination, in post order.
    posted: Vec<VecDeque<PostedRecv>>,
    arrival_seq: Vec<u64>,
    post_seq: Vec<u64>,
    /// Monotone counter consumed by the seeded policy.
    match_counter: u64,
}

impl MatchEngine {
    /// New engine for a communicator of `size` ranks.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            size,
            unexpected: (0..size).map(|_| VecDeque::new()).collect(),
            posted: (0..size).map(|_| VecDeque::new()).collect(),
            arrival_seq: vec![0; size],
            post_seq: vec![0; size],
            match_counter: 0,
        }
    }

    /// Communicator size this engine serves.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Deliver an incoming message: match it against the earliest
    /// compatible posted receive at the destination, else queue it.
    pub fn deliver(&mut self, mut env: Envelope) -> Delivery {
        let dst = env.dst;
        env.arrival_seq = self.arrival_seq[dst];
        self.arrival_seq[dst] += 1;
        let q = &mut self.posted[dst];
        if let Some(pos) = q
            .iter()
            .position(|p| source_matches(p.src_spec, env.src) && tag_matches(p.tag_spec, env.tag))
        {
            let p = q.remove(pos).expect("position just found");
            self.match_counter += 1;
            Delivery::Matched {
                req: p.req,
                envelope: env,
            }
        } else {
            self.unexpected[dst].push_back(env);
            Delivery::Queued
        }
    }

    /// Post a receive: match it against queued unexpected messages, else
    /// enqueue it. Returns the matched message if any.
    ///
    /// For a named source the earliest queued message from that source with
    /// a matching tag is taken (non-overtaking). For `ANY_SOURCE` the
    /// *earliest per source* candidates are gathered and the wildcard
    /// `policy` chooses among sources.
    pub fn post(
        &mut self,
        dst: usize,
        req: u64,
        src_spec: i32,
        tag_spec: Tag,
        policy: MatchPolicy,
    ) -> Option<Envelope> {
        match self.select_unexpected(dst, src_spec, tag_spec, policy) {
            Some(idx) => {
                let env = self.unexpected[dst].remove(idx).expect("index just found");
                self.match_counter += 1;
                Some(env)
            }
            None => {
                let seq = self.post_seq[dst];
                self.post_seq[dst] += 1;
                self.posted[dst].push_back(PostedRecv {
                    req,
                    src_spec,
                    tag_spec,
                    post_seq: seq,
                });
                None
            }
        }
    }

    /// Probe without removing: report the message a matching receive
    /// *would* take right now, if any.
    pub fn probe(
        &mut self,
        dst: usize,
        src_spec: i32,
        tag_spec: Tag,
        policy: MatchPolicy,
    ) -> Option<ProbeInfo> {
        let idx = self.select_unexpected(dst, src_spec, tag_spec, policy)?;
        let env = &self.unexpected[dst][idx];
        Some(ProbeInfo {
            src: env.src,
            tag: env.tag,
            len: env.payload.len(),
        })
    }

    /// Cancel a posted (unmatched) receive request. Returns true if found.
    pub fn cancel_posted(&mut self, dst: usize, req: u64) -> bool {
        let q = &mut self.posted[dst];
        if let Some(pos) = q.iter().position(|p| p.req == req) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Index into `unexpected[dst]` of the message a receive with the given
    /// specs would match, honoring non-overtaking and the wildcard policy.
    fn select_unexpected(
        &mut self,
        dst: usize,
        src_spec: i32,
        tag_spec: Tag,
        policy: MatchPolicy,
    ) -> Option<usize> {
        let q = &self.unexpected[dst];
        if src_spec != crate::types::ANY_SOURCE {
            // Earliest message from the named source with a matching tag:
            // queue is arrival-ordered and per-source arrival order is send
            // order, so first hit is the non-overtaking-correct one.
            return q
                .iter()
                .position(|e| source_matches(src_spec, e.src) && tag_matches(tag_spec, e.tag));
        }
        // Wildcard: earliest candidate per source...
        let mut per_src: Vec<Option<usize>> = vec![None; self.size];
        for (i, e) in q.iter().enumerate() {
            if tag_matches(tag_spec, e.tag) && per_src[e.src].is_none() {
                per_src[e.src] = Some(i);
            }
        }
        let candidates: Vec<usize> = per_src.into_iter().flatten().collect();
        if candidates.is_empty() {
            return None;
        }
        // ...then the policy picks the source.
        let pick = match policy {
            MatchPolicy::ArrivalOrder => *candidates
                .iter()
                .min_by_key(|&&i| q[i].arrival_seq)
                .expect("nonempty"),
            MatchPolicy::LowestRank => *candidates
                .iter()
                .min_by_key(|&&i| q[i].src)
                .expect("nonempty"),
            MatchPolicy::Seeded(seed) => {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ self.match_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                candidates[rng.gen_range(0..candidates.len())]
            }
        };
        Some(pick)
    }

    /// Number of unexpected (unreceived) messages queued for `dst`.
    #[must_use]
    pub fn unexpected_count(&self, dst: usize) -> usize {
        self.unexpected[dst].len()
    }

    /// Number of posted-but-unmatched receives at `dst`.
    #[must_use]
    pub fn posted_count(&self, dst: usize) -> usize {
        self.posted[dst].len()
    }

    /// Total unreceived messages across the communicator (finalize-time
    /// diagnostics: messages sent but never received).
    #[must_use]
    pub fn total_unexpected(&self) -> usize {
        self.unexpected.iter().map(VecDeque::len).sum()
    }

    /// Debug invariant: no compatible (posted, unexpected) pair coexists.
    /// MPI matching maintains this by construction; tests assert it.
    #[must_use]
    pub fn matching_invariant_holds(&self) -> bool {
        for dst in 0..self.size {
            for p in &self.posted[dst] {
                for e in &self.unexpected[dst] {
                    if source_matches(p.src_spec, e.src) && tag_matches(p.tag_spec, e.tag) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(src: usize, dst: usize, tag: Tag) -> Envelope {
        Envelope {
            src,
            dst,
            tag,
            payload: Bytes::from(vec![src as u8, tag as u8]),
            arrival_seq: 0,
            send_vt: 0.0,
            send_req: None,
        }
    }

    #[test]
    fn deliver_queues_without_posted() {
        let mut m = MatchEngine::new(2);
        assert!(matches!(m.deliver(env(0, 1, 5)), Delivery::Queued));
        assert_eq!(m.unexpected_count(1), 1);
    }

    #[test]
    fn post_matches_queued_message() {
        let mut m = MatchEngine::new(2);
        m.deliver(env(0, 1, 5));
        let got = m.post(1, 1, 0, 5, MatchPolicy::ArrivalOrder);
        assert_eq!(got.unwrap().src, 0);
        assert_eq!(m.unexpected_count(1), 0);
    }

    #[test]
    fn deliver_matches_posted_receive() {
        let mut m = MatchEngine::new(2);
        assert!(m.post(1, 7, 0, 5, MatchPolicy::ArrivalOrder).is_none());
        match m.deliver(env(0, 1, 5)) {
            Delivery::Matched { req, envelope } => {
                assert_eq!(req, 7);
                assert_eq!(envelope.src, 0);
            }
            Delivery::Queued => panic!("should have matched"),
        }
    }

    #[test]
    fn tag_mismatch_does_not_match() {
        let mut m = MatchEngine::new(2);
        m.post(1, 7, 0, 5, MatchPolicy::ArrivalOrder);
        assert!(matches!(m.deliver(env(0, 1, 6)), Delivery::Queued));
        assert!(m.matching_invariant_holds());
    }

    #[test]
    fn non_overtaking_same_pair_same_tag() {
        let mut m = MatchEngine::new(2);
        let mut e1 = env(0, 1, 5);
        e1.payload = Bytes::from_static(b"first");
        let mut e2 = env(0, 1, 5);
        e2.payload = Bytes::from_static(b"second");
        m.deliver(e1);
        m.deliver(e2);
        let got1 = m.post(1, 1, 0, 5, MatchPolicy::ArrivalOrder).unwrap();
        let got2 = m.post(1, 2, 0, 5, MatchPolicy::ArrivalOrder).unwrap();
        assert_eq!(&got1.payload[..], b"first");
        assert_eq!(&got2.payload[..], b"second");
    }

    #[test]
    fn non_overtaking_applies_to_wildcards_per_source() {
        let mut m = MatchEngine::new(3);
        let mut a1 = env(1, 0, 5);
        a1.payload = Bytes::from_static(b"a1");
        let mut a2 = env(1, 0, 5);
        a2.payload = Bytes::from_static(b"a2");
        m.deliver(a1);
        m.deliver(a2);
        // Wildcard receive must take a1 (earliest from source 1), never a2.
        let got = m
            .post(0, 1, crate::types::ANY_SOURCE, 5, MatchPolicy::LowestRank)
            .unwrap();
        assert_eq!(&got.payload[..], b"a1");
    }

    #[test]
    fn wildcard_policy_lowest_rank() {
        let mut m = MatchEngine::new(3);
        m.deliver(env(2, 0, 5)); // arrives first
        m.deliver(env(1, 0, 5));
        let got = m
            .post(0, 1, crate::types::ANY_SOURCE, 5, MatchPolicy::LowestRank)
            .unwrap();
        assert_eq!(got.src, 1);
    }

    #[test]
    fn wildcard_policy_arrival_order() {
        let mut m = MatchEngine::new(3);
        m.deliver(env(2, 0, 5)); // arrives first
        m.deliver(env(1, 0, 5));
        let got = m
            .post(0, 1, crate::types::ANY_SOURCE, 5, MatchPolicy::ArrivalOrder)
            .unwrap();
        assert_eq!(got.src, 2);
    }

    #[test]
    fn wildcard_policy_seeded_is_deterministic() {
        let run = |seed| {
            let mut m = MatchEngine::new(4);
            m.deliver(env(1, 0, 5));
            m.deliver(env(2, 0, 5));
            m.deliver(env(3, 0, 5));
            m.post(0, 1, crate::types::ANY_SOURCE, 5, MatchPolicy::Seeded(seed))
                .unwrap()
                .src
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn incoming_matches_earliest_posted() {
        let mut m = MatchEngine::new(2);
        m.post(
            1,
            10,
            crate::types::ANY_SOURCE,
            crate::types::ANY_TAG,
            MatchPolicy::ArrivalOrder,
        );
        m.post(1, 11, 0, 5, MatchPolicy::ArrivalOrder);
        match m.deliver(env(0, 1, 5)) {
            Delivery::Matched { req, .. } => assert_eq!(req, 10),
            Delivery::Queued => panic!("should match"),
        }
        // Second message goes to the later posted receive.
        match m.deliver(env(0, 1, 5)) {
            Delivery::Matched { req, .. } => assert_eq!(req, 11),
            Delivery::Queued => panic!("should match"),
        }
    }

    #[test]
    fn probe_reports_without_removing() {
        let mut m = MatchEngine::new(2);
        m.deliver(env(0, 1, 9));
        let info = m
            .probe(
                1,
                crate::types::ANY_SOURCE,
                crate::types::ANY_TAG,
                MatchPolicy::ArrivalOrder,
            )
            .unwrap();
        assert_eq!(info.src, 0);
        assert_eq!(info.tag, 9);
        assert_eq!(info.len, 2);
        assert_eq!(m.unexpected_count(1), 1);
    }

    #[test]
    fn probe_misses_on_empty() {
        let mut m = MatchEngine::new(2);
        assert!(m.probe(1, 0, 0, MatchPolicy::ArrivalOrder).is_none());
    }

    #[test]
    fn cancel_posted_removes() {
        let mut m = MatchEngine::new(2);
        m.post(1, 7, 0, 5, MatchPolicy::ArrivalOrder);
        assert_eq!(m.posted_count(1), 1);
        assert!(m.cancel_posted(1, 7));
        assert_eq!(m.posted_count(1), 0);
        assert!(!m.cancel_posted(1, 7));
    }

    #[test]
    fn any_tag_named_source() {
        let mut m = MatchEngine::new(3);
        m.deliver(env(2, 0, 3));
        m.deliver(env(1, 0, 4));
        let got = m
            .post(0, 1, 1, crate::types::ANY_TAG, MatchPolicy::ArrivalOrder)
            .unwrap();
        assert_eq!(got.src, 1);
        assert_eq!(got.tag, 4);
    }

    #[test]
    fn arrival_seq_is_monotone_per_dst() {
        let mut m = MatchEngine::new(2);
        m.deliver(env(0, 1, 1));
        m.deliver(env(0, 1, 2));
        let a = m.post(1, 1, 0, 1, MatchPolicy::ArrivalOrder).unwrap();
        let b = m.post(1, 2, 0, 2, MatchPolicy::ArrivalOrder).unwrap();
        assert!(a.arrival_seq < b.arrival_seq);
    }
}
