//! PnMPI-style tool layering.
//!
//! A *layer* is just an [`Mpi`] implementation that owns an inner [`Mpi`]
//! and forwards (possibly rewritten) calls downward — the simulator analog
//! of a PnMPI module providing `MPI_f` and calling `PMPI_f`. This module
//! provides two reference layers:
//!
//! * [`PassthroughLayer`] — forwards everything unchanged; the identity
//!   tool, useful in tests and for measuring interposition overhead floors.
//! * [`StatsLayer`] — counts the application's communication operations in
//!   the paper's Table I classification, excluding any traffic layers below
//!   it generate.
//!
//! The verifier tools themselves (`DampiLayer` in `dampi-core`, `IspLayer`
//! in `dampi-isp`) are built on exactly this pattern.

use std::sync::Arc;

use bytes::Bytes;

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::error::Result;
use crate::matching::ProbeInfo;
use crate::proc_api::{Mpi, Status};
use crate::request::Request;
use crate::stats::{OpClass, OpStats, StatsCollector};
use crate::types::Tag;

/// Factory alias re-exported for tool crates.
pub use crate::runtime::LayerFactory;

/// Macro-free delegation baseline: forwards every operation to `inner`.
pub struct PassthroughLayer<M: Mpi> {
    inner: M,
}

impl<M: Mpi> PassthroughLayer<M> {
    /// Wrap `inner`.
    pub fn new(inner: M) -> Self {
        Self { inner }
    }

    /// Unwrap, returning the inner layer.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Mpi> Mpi for PassthroughLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }
    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.inner.isend(comm, dest, tag, data)
    }
    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.inner.irecv(comm, src, tag)
    }
    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        self.inner.wait(req)
    }
    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        self.inner.test(req)
    }
    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        self.inner.waitany(reqs)
    }
    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        self.inner.testany(reqs)
    }
    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        self.inner.waitsome(reqs)
    }
    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        self.inner.probe(comm, src, tag)
    }
    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        self.inner.iprobe(comm, src, tag)
    }
    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.inner.barrier(comm)
    }
    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.inner.bcast(comm, root, data)
    }
    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.inner.reduce_u64(comm, root, value, op)
    }
    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.inner.allreduce_u64(comm, value, op)
    }
    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.inner.reduce_f64(comm, root, value, op)
    }
    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.inner.allreduce_f64(comm, value, op)
    }
    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.inner.gather(comm, root, data)
    }
    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.inner.allgather(comm, data)
    }
    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.inner.scatter(comm, root, data)
    }
    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.inner.alltoall(comm, data)
    }
    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.inner.comm_dup(comm)
    }
    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.inner.comm_split(comm, color, key)
    }
    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.inner.comm_free(comm)
    }
    fn pcontrol(&mut self, code: i32) -> Result<()> {
        self.inner.pcontrol(code)
    }
    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }
    fn finalize(&mut self) -> Result<()> {
        self.inner.finalize()
    }
}

/// Counts application-level communication operations (Table I census).
///
/// Place at the **top** of the stack: only calls entering from the program
/// are counted, never tool-generated traffic below.
pub struct StatsLayer<M: Mpi> {
    inner: M,
    local: OpStats,
    collector: Arc<StatsCollector>,
}

impl<M: Mpi> StatsLayer<M> {
    /// Wrap `inner`, reporting to `collector` at finalize.
    pub fn new(inner: M, collector: Arc<StatsCollector>) -> Self {
        Self {
            inner,
            local: OpStats::default(),
            collector,
        }
    }

    fn tally(&mut self, class: OpClass) {
        self.local.record(class);
    }
}

impl<M: Mpi> Mpi for StatsLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }
    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.tally(OpClass::SendRecv);
        self.inner.isend(comm, dest, tag, data)
    }
    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.tally(OpClass::SendRecv);
        self.inner.irecv(comm, src, tag)
    }
    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        self.tally(OpClass::Wait);
        self.inner.wait(req)
    }
    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        self.tally(OpClass::Wait);
        self.inner.test(req)
    }
    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        self.tally(OpClass::Wait);
        self.inner.waitany(reqs)
    }
    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        self.tally(OpClass::Wait);
        self.inner.testany(reqs)
    }
    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        self.tally(OpClass::Wait);
        self.inner.waitsome(reqs)
    }
    fn waitall(&mut self, reqs: &[Request]) -> Result<Vec<(Status, Bytes)>> {
        // MPI_Waitall is a single call; count it once (Table I counts
        // calls, not completed requests) and let the lower layers expand.
        self.tally(OpClass::Wait);
        self.inner.waitall(reqs)
    }
    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        self.tally(OpClass::SendRecv);
        self.inner.probe(comm, src, tag)
    }
    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        self.tally(OpClass::SendRecv);
        self.inner.iprobe(comm, src, tag)
    }
    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.tally(OpClass::Collective);
        self.inner.barrier(comm)
    }
    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.tally(OpClass::Collective);
        self.inner.bcast(comm, root, data)
    }
    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.tally(OpClass::Collective);
        self.inner.reduce_u64(comm, root, value, op)
    }
    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.tally(OpClass::Collective);
        self.inner.allreduce_u64(comm, value, op)
    }
    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.tally(OpClass::Collective);
        self.inner.reduce_f64(comm, root, value, op)
    }
    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.tally(OpClass::Collective);
        self.inner.allreduce_f64(comm, value, op)
    }
    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.tally(OpClass::Collective);
        self.inner.gather(comm, root, data)
    }
    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.tally(OpClass::Collective);
        self.inner.allgather(comm, data)
    }
    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.tally(OpClass::Collective);
        self.inner.scatter(comm, root, data)
    }
    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.tally(OpClass::Collective);
        self.inner.alltoall(comm, data)
    }
    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.tally(OpClass::Collective);
        self.inner.comm_dup(comm)
    }
    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.tally(OpClass::Collective);
        self.inner.comm_split(comm, color, key)
    }
    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.tally(OpClass::Collective);
        self.inner.comm_free(comm)
    }
    fn pcontrol(&mut self, code: i32) -> Result<()> {
        self.inner.pcontrol(code)
    }
    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }
    fn finalize(&mut self) -> Result<()> {
        self.collector.submit(self.inner.world_rank(), self.local);
        self.inner.finalize()
    }
}
