//! Program abstraction and run outcomes.

use crate::error::{MpiError, Result};
use crate::leak::LeakReport;
use crate::proc_api::Mpi;

/// An MPI program under verification: executed once per rank, against the
/// rank's own interposition stack. Must be `Sync` because every rank thread
/// shares one instance (like a compiled SPMD binary).
pub trait MpiProgram: Send + Sync {
    /// Program body for one rank; `mpi.world_rank()` distinguishes roles.
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()>;

    /// Optional human-readable name used in reports.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Adapter: any `Fn(&mut dyn Mpi) -> Result<()>` is a program.
pub struct FnProgram<F>(pub F);

impl<F> MpiProgram for FnProgram<F>
where
    F: Fn(&mut dyn Mpi) -> Result<()> + Send + Sync,
{
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        (self.0)(mpi)
    }
}

/// A per-rank error paired with its rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankError {
    /// World rank that failed.
    pub rank: usize,
    /// The failure.
    pub error: MpiError,
}

/// Everything a single execution of a program produced. Serializable so
/// shard workers can ship a replay's outcome to the supervisor verbatim.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunOutcome {
    /// Per-rank error, if the rank's program (or its finalize) failed.
    pub rank_errors: Vec<Option<MpiError>>,
    /// Resource-leak census at teardown.
    pub leaks: LeakReport,
    /// The first global failure (deadlock / abort / collective mismatch),
    /// if any.
    pub fatal: Option<MpiError>,
    /// Final virtual time of each rank.
    pub per_rank_vt: Vec<f64>,
    /// Wall-clock time the harness spent executing this run (thread spawn
    /// to join). Unlike everything else here it is *not* deterministic —
    /// observability only, never part of verification semantics.
    pub wall_elapsed: std::time::Duration,
    /// Simulated makespan: max over ranks of final virtual time.
    pub makespan: f64,
}

impl RunOutcome {
    /// Root-cause program bugs: per-rank errors excluding the secondary
    /// `Aborted` teardown errors other ranks observe.
    #[must_use]
    pub fn program_bugs(&self) -> Vec<RankError> {
        let mut bugs: Vec<RankError> = self
            .rank_errors
            .iter()
            .enumerate()
            .filter_map(|(rank, e)| match e {
                // Aborted ranks are collateral of another rank's failure;
                // ReplayTimeout is the harness's own watchdog verdict.
                // Neither is a bug in the program under test.
                Some(err)
                    if !matches!(
                        err,
                        MpiError::Aborted { .. } | MpiError::ReplayTimeout { .. }
                    ) =>
                {
                    Some(RankError {
                        rank,
                        error: err.clone(),
                    })
                }
                _ => None,
            })
            .collect();
        // Every rank blocked in the same cycle reports the same deadlock:
        // keep one representative *per distinct blocked-rank set*. Two
        // independent cycles (disjoint blocked sets) are two bugs, not one.
        let mut seen_cycles: Vec<Vec<usize>> = Vec::new();
        bugs.retain(|b| match &b.error {
            MpiError::Deadlock { blocked_ranks } => {
                if seen_cycles.contains(blocked_ranks) {
                    false
                } else {
                    seen_cycles.push(blocked_ranks.clone());
                    true
                }
            }
            _ => true,
        });
        bugs
    }

    /// True when the run deadlocked.
    #[must_use]
    pub fn deadlocked(&self) -> bool {
        matches!(self.fatal, Some(MpiError::Deadlock { .. }))
    }

    /// True when no rank failed (leaks may still exist).
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.fatal.is_none() && self.rank_errors.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(errors: Vec<Option<MpiError>>, fatal: Option<MpiError>) -> RunOutcome {
        RunOutcome {
            rank_errors: errors,
            leaks: LeakReport::default(),
            fatal,
            per_rank_vt: vec![0.0],
            wall_elapsed: std::time::Duration::ZERO,
            makespan: 0.0,
        }
    }

    #[test]
    fn clean_outcome_succeeds() {
        let o = outcome_with(vec![None, None], None);
        assert!(o.succeeded());
        assert!(o.program_bugs().is_empty());
        assert!(!o.deadlocked());
    }

    #[test]
    fn aborted_ranks_are_not_root_causes() {
        let o = outcome_with(
            vec![
                Some(MpiError::UserAssert {
                    message: "boom".into(),
                }),
                Some(MpiError::Aborted { by_rank: 0 }),
            ],
            Some(MpiError::Aborted { by_rank: 0 }),
        );
        let bugs = o.program_bugs();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].rank, 0);
        assert!(!o.succeeded());
    }

    #[test]
    fn duplicate_deadlocks_collapse() {
        let dl = MpiError::Deadlock {
            blocked_ranks: vec![0, 1],
        };
        let o = outcome_with(vec![Some(dl.clone()), Some(dl.clone())], Some(dl));
        assert!(o.deadlocked());
        assert_eq!(o.program_bugs().len(), 1);
    }

    #[test]
    fn distinct_deadlock_cycles_stay_separate() {
        // Ranks {0,1} block on each other while {2,3} block independently:
        // two cycles, two root causes — dedup must not collapse them.
        let ab = MpiError::Deadlock {
            blocked_ranks: vec![0, 1],
        };
        let cd = MpiError::Deadlock {
            blocked_ranks: vec![2, 3],
        };
        let o = outcome_with(
            vec![
                Some(ab.clone()),
                Some(ab.clone()),
                Some(cd.clone()),
                Some(cd),
            ],
            Some(ab),
        );
        let bugs = o.program_bugs();
        assert_eq!(bugs.len(), 2, "{bugs:?}");
        assert_eq!(bugs[0].rank, 0);
        assert_eq!(bugs[1].rank, 2);
    }

    #[test]
    fn deadlock_dedup_keeps_non_deadlock_bugs() {
        let dl = MpiError::Deadlock {
            blocked_ranks: vec![1, 2],
        };
        let o = outcome_with(
            vec![
                Some(MpiError::UserAssert {
                    message: "boom".into(),
                }),
                Some(dl.clone()),
                Some(dl.clone()),
            ],
            Some(dl),
        );
        let bugs = o.program_bugs();
        assert_eq!(bugs.len(), 2, "{bugs:?}");
        assert!(matches!(bugs[0].error, MpiError::UserAssert { .. }));
        assert!(matches!(bugs[1].error, MpiError::Deadlock { .. }));
    }
}
