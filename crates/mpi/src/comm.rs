//! Communicator handles and the global communicator table.

/// A communicator handle (the analog of `MPI_Comm`). Cheap to copy; resolves
/// through the runtime's communicator table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Comm(pub u32);

impl Comm {
    /// `MPI_COMM_WORLD`.
    pub const WORLD: Comm = Comm(0);
}

/// Metadata for one communicator.
#[derive(Debug, Clone)]
pub struct CommInfo {
    /// Handle of this communicator.
    pub id: Comm,
    /// Group: index is the communicator-local rank, value the world rank.
    pub group: Vec<usize>,
    /// Inverse map: world rank → comm-local rank (None if not a member).
    pub world_to_comm: Vec<Option<usize>>,
    /// Freed by `comm_free`.
    pub freed: bool,
    /// Created by `comm_dup`/`comm_split` (subject to leak accounting; the
    /// predefined world communicator is not).
    pub derived: bool,
    /// Human-readable provenance for leak reports.
    pub label: String,
}

impl CommInfo {
    /// Build the world communicator for `nprocs` ranks.
    #[must_use]
    pub fn world(nprocs: usize) -> Self {
        Self {
            id: Comm::WORLD,
            group: (0..nprocs).collect(),
            world_to_comm: (0..nprocs).map(Some).collect(),
            freed: false,
            derived: false,
            label: "MPI_COMM_WORLD".to_owned(),
        }
    }

    /// Build a derived communicator over `group` (world ranks, in comm-rank
    /// order) with the given handle and provenance label.
    #[must_use]
    pub fn derived(id: Comm, group: Vec<usize>, nprocs: usize, label: String) -> Self {
        let mut world_to_comm = vec![None; nprocs];
        for (crank, &wrank) in group.iter().enumerate() {
            world_to_comm[wrank] = Some(crank);
        }
        Self {
            id,
            group,
            world_to_comm,
            freed: false,
            derived: true,
            label,
        }
    }

    /// Communicator size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Comm-local rank of a world rank, if it is a member.
    #[must_use]
    pub fn comm_rank_of(&self, world_rank: usize) -> Option<usize> {
        self.world_to_comm.get(world_rank).copied().flatten()
    }

    /// World rank of a comm-local rank.
    #[must_use]
    pub fn world_rank_of(&self, comm_rank: usize) -> Option<usize> {
        self.group.get(comm_rank).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_is_identity() {
        let w = CommInfo::world(4);
        assert_eq!(w.size(), 4);
        assert!(!w.derived);
        for r in 0..4 {
            assert_eq!(w.comm_rank_of(r), Some(r));
            assert_eq!(w.world_rank_of(r), Some(r));
        }
    }

    #[test]
    fn derived_comm_maps_ranks() {
        // World ranks {3, 1} as comm ranks {0, 1}.
        let c = CommInfo::derived(Comm(5), vec![3, 1], 4, "split".into());
        assert_eq!(c.size(), 2);
        assert!(c.derived);
        assert_eq!(c.comm_rank_of(3), Some(0));
        assert_eq!(c.comm_rank_of(1), Some(1));
        assert_eq!(c.comm_rank_of(0), None);
        assert_eq!(c.world_rank_of(0), Some(3));
        assert_eq!(c.world_rank_of(2), None);
    }

    #[test]
    fn world_constant() {
        assert_eq!(Comm::WORLD, Comm(0));
    }
}
