//! An MPI runtime **simulator** and PnMPI-style interposition substrate.
//!
//! The DAMPI paper runs on real MPI (MVAPICH2 on an InfiniBand cluster) and
//! interposes on the profiling interface (PMPI) via PnMPI. Rust has no
//! production MPI interposition story, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * **Ranks are OS threads** executing real Rust programs against the
//!   [`Mpi`] trait — the program-facing MPI-2-era API (point-to-point with
//!   wildcard receives and probes, requests, blocking collectives,
//!   communicator management).
//! * **Message matching** follows the MPI standard: per-communicator
//!   unexpected/posted queues, tag matching, `ANY_SOURCE`/`ANY_TAG`
//!   wildcards, and the non-overtaking rule (messages between the same pair
//!   on the same communicator and tag match in order). The wildcard match
//!   *policy* is configurable to model the runtime bias the paper's
//!   introduction discusses (a native MPI library tends to pick the same
//!   match every run, masking Heisenbugs).
//! * **Tool layering** mirrors PnMPI: a tool is a [`Mpi`] implementation
//!   wrapping an inner [`Mpi`]; the bottom of the stack is [`Pmpi`], the
//!   runtime itself (the `PMPI_*` level).
//! * **Virtual time** ([`vtime`]): a LogP-style cost model tracks per-rank
//!   simulated time so verification overheads can be compared in *simulated
//!   seconds* without a 1024-node cluster. This is what regenerates the
//!   shape of the paper's Fig. 5/6 and Table II.
//! * **Error detection substrate**: deadlock detection (all live ranks
//!   blocked inside the runtime), communicator leaks and request leaks at
//!   finalize, collective-call mismatches, and rank aborts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod comm;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod interpose;
pub mod leak;
pub mod matching;
pub mod proc_api;
pub mod program;
pub mod request;
pub mod runtime;
pub mod stats;
pub mod trace;
pub mod types;
pub mod vtime;

pub use collective::ReduceOp;
pub use comm::Comm;
pub use envelope::Envelope;
pub use error::{MpiError, Result};
pub use fault::{FaultAction, FaultLayer, FaultPlan, FaultRule};
pub use interpose::{LayerFactory, PassthroughLayer};
pub use leak::LeakReport;
pub use matching::MatchPolicy;
pub use proc_api::{Mpi, Pmpi, Status};
pub use program::{FnProgram, MpiProgram, RankError, RunOutcome};
pub use request::Request;
pub use runtime::{run_native, run_with_layers, ReplayBudget, SimConfig, World};
pub use stats::{OpClass, OpStats};
pub use types::{Tag, ANY_SOURCE, ANY_TAG};
pub use vtime::VTimeParams;
