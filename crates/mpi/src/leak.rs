//! Resource-leak reporting (Table II's C-Leak / R-Leak columns).
//!
//! DAMPI's "local error checking capabilities" (paper §III) flag MPI
//! resources still live when `MPI_Finalize` is reached: derived
//! communicators that were never `comm_free`d and requests that were never
//! completed by a `Wait`/`Test`. The runtime owns both tables, so the leak
//! census is computed at world teardown.

/// A leaked (never freed) derived communicator.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CommLeak {
    /// Handle of the leaked communicator.
    pub comm: crate::comm::Comm,
    /// Provenance label recorded at creation.
    pub label: String,
    /// Group size.
    pub size: usize,
}

/// Leak census for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LeakReport {
    /// Derived communicators never freed.
    pub comm_leaks: Vec<CommLeak>,
    /// Per-rank count of requests never completed before finalize.
    pub request_leaks: Vec<usize>,
    /// Messages sent but never received (orphan messages at teardown).
    pub unreceived_messages: usize,
}

impl LeakReport {
    /// Table II's C-Leak column: any communicator leaked?
    #[must_use]
    pub fn has_comm_leak(&self) -> bool {
        !self.comm_leaks.is_empty()
    }

    /// Table II's R-Leak column: any request leaked?
    #[must_use]
    pub fn has_request_leak(&self) -> bool {
        self.request_leaks.iter().any(|&c| c > 0)
    }

    /// Total leaked requests across ranks.
    #[must_use]
    pub fn total_request_leaks(&self) -> usize {
        self.request_leaks.iter().sum()
    }

    /// True when no resource leaked at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.has_comm_leak() && !self.has_request_leak() && self.unreceived_messages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;

    #[test]
    fn empty_report_is_clean() {
        let r = LeakReport::default();
        assert!(r.is_clean());
        assert!(!r.has_comm_leak());
        assert!(!r.has_request_leak());
    }

    #[test]
    fn comm_leak_detected() {
        let r = LeakReport {
            comm_leaks: vec![CommLeak {
                comm: Comm(3),
                label: "dup of MPI_COMM_WORLD".into(),
                size: 8,
            }],
            request_leaks: vec![0; 8],
            unreceived_messages: 0,
        };
        assert!(r.has_comm_leak());
        assert!(!r.is_clean());
    }

    #[test]
    fn request_leak_counted() {
        let r = LeakReport {
            comm_leaks: vec![],
            request_leaks: vec![0, 2, 1],
            unreceived_messages: 0,
        };
        assert!(r.has_request_leak());
        assert_eq!(r.total_request_leaks(), 3);
    }

    #[test]
    fn unreceived_messages_are_not_clean() {
        let r = LeakReport {
            unreceived_messages: 4,
            ..Default::default()
        };
        assert!(!r.is_clean());
    }
}
