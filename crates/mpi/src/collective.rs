//! Blocking collective operations: rendezvous slots and data combination.
//!
//! MPI requires all ranks of a communicator to call the *same* collective;
//! it does not require synchronous completion (the paper's §II-E exploits
//! this to define clock semantics per collective). The simulator implements
//! collectives as generation-counted rendezvous: ranks deposit
//! contributions, the last arrival combines them, and every rank leaves with
//! its per-rank outcome. Calling mismatched collectives concurrently on one
//! communicator is detected and reported as an error — itself a useful MPI
//! verification check.

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::{MpiError, Result};

/// Reduction operator for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum (what DAMPI's clock exchange uses: `MPI_MAX`).
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Signature of a collective call, compared across ranks to detect
/// mismatched collectives (different operation, root, or reduction op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollSig {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast` from `root`.
    Bcast {
        /// Root comm rank.
        root: usize,
    },
    /// `MPI_Reduce` of u64 vectors to `root`.
    ReduceU64 {
        /// Root comm rank.
        root: usize,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// `MPI_Allreduce` of u64 vectors.
    AllreduceU64 {
        /// Reduction operator.
        op: ReduceOp,
    },
    /// `MPI_Reduce` of f64 vectors to `root`.
    ReduceF64 {
        /// Root comm rank.
        root: usize,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// `MPI_Allreduce` of f64 vectors.
    AllreduceF64 {
        /// Reduction operator.
        op: ReduceOp,
    },
    /// `MPI_Gather` to `root`.
    Gather {
        /// Root comm rank.
        root: usize,
    },
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Scatter` from `root`.
    Scatter {
        /// Root comm rank.
        root: usize,
    },
    /// `MPI_Alltoall`.
    Alltoall,
    /// `MPI_Comm_dup` (collective over the parent).
    CommDup,
    /// `MPI_Comm_split` (collective over the parent).
    CommSplit,
    /// `MPI_Comm_free` (collective over the freed communicator).
    CommFree,
}

/// Per-rank input to a collective.
#[derive(Debug, Clone)]
pub enum Contribution {
    /// No data (barrier, non-root bcast/scatter, comm ops).
    None,
    /// Byte payload (bcast root, gather/allgather element).
    Bytes(Bytes),
    /// u64 vector (reductions, clock exchange).
    U64s(Vec<u64>),
    /// f64 vector (reductions).
    F64s(Vec<f64>),
    /// Per-destination byte payloads (alltoall; scatter root).
    BytesVec(Vec<Bytes>),
    /// `comm_split` arguments.
    Split {
        /// Color: ranks with equal non-negative colors share a new
        /// communicator; negative means `MPI_UNDEFINED` (no membership).
        color: i64,
        /// Key: ordering of ranks within the new communicator.
        key: i64,
    },
}

/// Per-rank result of a collective.
#[derive(Debug, Clone)]
pub enum CollOutcome {
    /// No data returned.
    None,
    /// Byte payload.
    Bytes(Bytes),
    /// u64 vector.
    U64s(Vec<u64>),
    /// f64 vector.
    F64s(Vec<f64>),
    /// Vector of byte payloads (gather/allgather/alltoall).
    BytesVec(Vec<Bytes>),
    /// New communicator handle (dup/split).
    Comm(crate::comm::Comm),
    /// `comm_split` with `MPI_UNDEFINED` color: caller is in no new comm.
    NoComm,
}

/// Combine deposited contributions into per-rank outcomes for the
/// *data-movement* collectives. Communicator-management collectives
/// (dup/split/free) are combined by the runtime, which owns the comm table.
pub fn combine(sig: CollSig, contribs: &[Contribution]) -> Result<Vec<CollOutcome>> {
    let n = contribs.len();
    let mismatch = |detail: &str| -> MpiError {
        MpiError::CollectiveMismatch {
            detail: detail.to_owned(),
        }
    };
    match sig {
        CollSig::Barrier => Ok(vec![CollOutcome::None; n]),
        CollSig::Bcast { root } => {
            let data = match contribs.get(root) {
                Some(Contribution::Bytes(b)) => b.clone(),
                _ => return Err(mismatch("bcast root contributed no bytes")),
            };
            Ok((0..n).map(|_| CollOutcome::Bytes(data.clone())).collect())
        }
        CollSig::ReduceU64 { .. } | CollSig::AllreduceU64 { .. } => {
            let op = match sig {
                CollSig::ReduceU64 { op, .. } | CollSig::AllreduceU64 { op } => op,
                _ => unreachable!(),
            };
            let vecs: Vec<&Vec<u64>> = contribs
                .iter()
                .map(|c| match c {
                    Contribution::U64s(v) => Ok(v),
                    _ => Err(mismatch("u64 reduction got non-u64 contribution")),
                })
                .collect::<Result<_>>()?;
            let len = vecs[0].len();
            if vecs.iter().any(|v| v.len() != len) {
                return Err(mismatch("u64 reduction with ragged vector lengths"));
            }
            let mut acc = vecs[0].clone();
            for v in &vecs[1..] {
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a = op.apply_u64(*a, *b);
                }
            }
            Ok(match sig {
                CollSig::ReduceU64 { root, .. } => (0..n)
                    .map(|r| {
                        if r == root {
                            CollOutcome::U64s(acc.clone())
                        } else {
                            CollOutcome::None
                        }
                    })
                    .collect(),
                _ => (0..n).map(|_| CollOutcome::U64s(acc.clone())).collect(),
            })
        }
        CollSig::ReduceF64 { .. } | CollSig::AllreduceF64 { .. } => {
            let op = match sig {
                CollSig::ReduceF64 { op, .. } | CollSig::AllreduceF64 { op } => op,
                _ => unreachable!(),
            };
            let vecs: Vec<&Vec<f64>> = contribs
                .iter()
                .map(|c| match c {
                    Contribution::F64s(v) => Ok(v),
                    _ => Err(mismatch("f64 reduction got non-f64 contribution")),
                })
                .collect::<Result<_>>()?;
            let len = vecs[0].len();
            if vecs.iter().any(|v| v.len() != len) {
                return Err(mismatch("f64 reduction with ragged vector lengths"));
            }
            let mut acc = vecs[0].clone();
            for v in &vecs[1..] {
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a = op.apply_f64(*a, *b);
                }
            }
            Ok(match sig {
                CollSig::ReduceF64 { root, .. } => (0..n)
                    .map(|r| {
                        if r == root {
                            CollOutcome::F64s(acc.clone())
                        } else {
                            CollOutcome::None
                        }
                    })
                    .collect(),
                _ => (0..n).map(|_| CollOutcome::F64s(acc.clone())).collect(),
            })
        }
        CollSig::Gather { .. } | CollSig::Allgather => {
            let all: Vec<Bytes> = contribs
                .iter()
                .map(|c| match c {
                    Contribution::Bytes(b) => Ok(b.clone()),
                    _ => Err(mismatch("gather got non-bytes contribution")),
                })
                .collect::<Result<_>>()?;
            Ok(match sig {
                CollSig::Gather { root } => (0..n)
                    .map(|r| {
                        if r == root {
                            CollOutcome::BytesVec(all.clone())
                        } else {
                            CollOutcome::None
                        }
                    })
                    .collect(),
                _ => (0..n).map(|_| CollOutcome::BytesVec(all.clone())).collect(),
            })
        }
        CollSig::Scatter { root } => {
            let parts = match contribs.get(root) {
                Some(Contribution::BytesVec(v)) if v.len() == n => v.clone(),
                Some(Contribution::BytesVec(_)) => {
                    return Err(mismatch("scatter root vector length != comm size"))
                }
                _ => return Err(mismatch("scatter root contributed no vector")),
            };
            Ok(parts.into_iter().map(CollOutcome::Bytes).collect())
        }
        CollSig::Alltoall => {
            let mats: Vec<&Vec<Bytes>> = contribs
                .iter()
                .map(|c| match c {
                    Contribution::BytesVec(v) if v.len() == n => Ok(v),
                    Contribution::BytesVec(_) => {
                        Err(mismatch("alltoall vector length != comm size"))
                    }
                    _ => Err(mismatch("alltoall got non-vector contribution")),
                })
                .collect::<Result<_>>()?;
            Ok((0..n)
                .map(|i| CollOutcome::BytesVec((0..n).map(|j| mats[j][i].clone()).collect()))
                .collect())
        }
        CollSig::CommDup | CollSig::CommSplit | CollSig::CommFree => Err(MpiError::ToolProtocol {
            detail: "comm-management collectives are combined by the runtime".to_owned(),
        }),
    }
}

/// Generation-counted rendezvous slot: one per communicator.
#[derive(Debug)]
pub struct CollSlot {
    size: usize,
    generation: u64,
    sig: Option<CollSig>,
    arrived: Vec<Option<Contribution>>,
    narrived: usize,
    max_vt: f64,
    results: HashMap<u64, Pending>,
}

#[derive(Debug)]
struct Pending {
    outcomes: Vec<Option<CollOutcome>>,
    remaining: usize,
    vt: f64,
    /// Error to report to every participant (mismatch detected at combine).
    error: Option<MpiError>,
}

impl CollSlot {
    /// New slot for a communicator of `size` ranks.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            size,
            generation: 0,
            sig: None,
            arrived: vec![None; size],
            narrived: 0,
            max_vt: 0.0,
            results: HashMap::new(),
        }
    }

    /// Current generation (next collective to complete).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Deposit a contribution. Returns `(generation, is_last)`; when
    /// `is_last` the caller must immediately combine via
    /// [`CollSlot::take_contributions`] + [`CollSlot::finish`].
    pub fn enter(
        &mut self,
        comm_rank: usize,
        sig: CollSig,
        contribution: Contribution,
        vt: f64,
    ) -> Result<(u64, bool)> {
        match self.sig {
            None => self.sig = Some(sig),
            Some(existing) if existing == sig => {}
            Some(existing) => {
                return Err(MpiError::CollectiveMismatch {
                    detail: format!("rank called {sig:?} while others are in {existing:?}"),
                })
            }
        }
        assert!(
            self.arrived[comm_rank].is_none(),
            "rank {comm_rank} entered the same collective generation twice"
        );
        self.arrived[comm_rank] = Some(contribution);
        self.narrived += 1;
        self.max_vt = self.max_vt.max(vt);
        Ok((self.generation, self.narrived == self.size))
    }

    /// Last entrant: drain the deposited contributions, resetting the slot
    /// for the next generation. Returns `(sig, contributions, max_vt)`.
    pub fn take_contributions(&mut self) -> (CollSig, Vec<Contribution>, f64) {
        assert_eq!(self.narrived, self.size, "take before all arrived");
        let sig = self.sig.take().expect("sig set on first enter");
        let contribs = self
            .arrived
            .iter_mut()
            .map(|c| c.take().expect("all arrived"))
            .collect();
        let vt = self.max_vt;
        self.narrived = 0;
        self.max_vt = 0.0;
        (sig, contribs, vt)
    }

    /// Publish per-rank outcomes (or a shared error) for `gen`.
    pub fn finish(
        &mut self,
        gen: u64,
        outcomes: std::result::Result<Vec<CollOutcome>, MpiError>,
        vt: f64,
    ) {
        assert_eq!(gen, self.generation, "finishing a stale generation");
        self.generation += 1;
        let pending = match outcomes {
            Ok(o) => Pending {
                outcomes: o.into_iter().map(Some).collect(),
                remaining: self.size,
                vt,
                error: None,
            },
            Err(e) => Pending {
                outcomes: vec![None; self.size],
                remaining: self.size,
                vt,
                error: Some(e),
            },
        };
        self.results.insert(gen, pending);
    }

    /// Poll for the outcome of generation `gen` for `comm_rank`. Returns
    /// `Some((outcome, vt))` once published; the entry is reclaimed after
    /// the last rank takes its outcome.
    pub fn try_take(&mut self, gen: u64, comm_rank: usize) -> Option<(Result<CollOutcome>, f64)> {
        let pending = self.results.get_mut(&gen)?;
        let out = match &pending.error {
            Some(e) => Err(e.clone()),
            None => Ok(pending.outcomes[comm_rank]
                .take()
                .expect("rank took its collective outcome twice")),
        };
        let vt = pending.vt;
        pending.remaining -= 1;
        if pending.remaining == 0 {
            self.results.remove(&gen);
        }
        Some((out, vt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn barrier_combines_to_none() {
        let out = combine(CollSig::Barrier, &[Contribution::None, Contribution::None]).unwrap();
        assert!(matches!(out[0], CollOutcome::None));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bcast_distributes_root_data() {
        let out = combine(
            CollSig::Bcast { root: 1 },
            &[Contribution::None, Contribution::Bytes(bytes("hi"))],
        )
        .unwrap();
        for o in out {
            match o {
                CollOutcome::Bytes(b) => assert_eq!(&b[..], b"hi"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn allreduce_u64_max() {
        let out = combine(
            CollSig::AllreduceU64 { op: ReduceOp::Max },
            &[
                Contribution::U64s(vec![3, 1]),
                Contribution::U64s(vec![2, 9]),
            ],
        )
        .unwrap();
        for o in out {
            match o {
                CollOutcome::U64s(v) => assert_eq!(v, vec![3, 9]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn reduce_f64_sum_only_root() {
        let out = combine(
            CollSig::ReduceF64 {
                root: 0,
                op: ReduceOp::Sum,
            },
            &[Contribution::F64s(vec![1.5]), Contribution::F64s(vec![2.5])],
        )
        .unwrap();
        match &out[0] {
            CollOutcome::F64s(v) => assert_eq!(v, &vec![4.0]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(out[1], CollOutcome::None));
    }

    #[test]
    fn ragged_reduction_is_mismatch() {
        let err = combine(
            CollSig::AllreduceU64 { op: ReduceOp::Sum },
            &[Contribution::U64s(vec![1]), Contribution::U64s(vec![1, 2])],
        )
        .unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch { .. }));
    }

    #[test]
    fn gather_collects_at_root() {
        let out = combine(
            CollSig::Gather { root: 1 },
            &[
                Contribution::Bytes(bytes("a")),
                Contribution::Bytes(bytes("b")),
            ],
        )
        .unwrap();
        assert!(matches!(out[0], CollOutcome::None));
        match &out[1] {
            CollOutcome::BytesVec(v) => {
                assert_eq!(&v[0][..], b"a");
                assert_eq!(&v[1][..], b"b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scatter_distributes_parts() {
        let out = combine(
            CollSig::Scatter { root: 0 },
            &[
                Contribution::BytesVec(vec![bytes("x"), bytes("y")]),
                Contribution::None,
            ],
        )
        .unwrap();
        match (&out[0], &out[1]) {
            (CollOutcome::Bytes(a), CollOutcome::Bytes(b)) => {
                assert_eq!(&a[..], b"x");
                assert_eq!(&b[..], b"y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = combine(
            CollSig::Alltoall,
            &[
                Contribution::BytesVec(vec![bytes("00"), bytes("01")]),
                Contribution::BytesVec(vec![bytes("10"), bytes("11")]),
            ],
        )
        .unwrap();
        match &out[1] {
            CollOutcome::BytesVec(v) => {
                assert_eq!(&v[0][..], b"01");
                assert_eq!(&v[1][..], b"11");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slot_rendezvous_lifecycle() {
        let mut slot = CollSlot::new(2);
        let (gen, last) = slot
            .enter(0, CollSig::Barrier, Contribution::None, 1.0)
            .unwrap();
        assert!(!last);
        let (gen2, last) = slot
            .enter(1, CollSig::Barrier, Contribution::None, 3.0)
            .unwrap();
        assert_eq!(gen, gen2);
        assert!(last);
        let (sig, contribs, max_vt) = slot.take_contributions();
        assert_eq!(sig, CollSig::Barrier);
        assert_eq!(contribs.len(), 2);
        assert!((max_vt - 3.0).abs() < 1e-12);
        slot.finish(gen, combine(sig, &contribs), 3.5);
        let (out, vt) = slot.try_take(gen, 0).unwrap();
        assert!(matches!(out.unwrap(), CollOutcome::None));
        assert!((vt - 3.5).abs() < 1e-12);
        let _ = slot.try_take(gen, 1).unwrap();
        // Entry reclaimed after last take.
        assert!(slot.try_take(gen, 0).is_none());
        // Next generation proceeds.
        assert_eq!(slot.generation(), gen + 1);
    }

    #[test]
    fn slot_detects_mismatched_collectives() {
        let mut slot = CollSlot::new(2);
        slot.enter(0, CollSig::Barrier, Contribution::None, 0.0)
            .unwrap();
        let err = slot
            .enter(1, CollSig::Bcast { root: 0 }, Contribution::None, 0.0)
            .unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch { .. }));
    }

    #[test]
    fn slot_detects_mismatched_roots() {
        let mut slot = CollSlot::new(2);
        slot.enter(
            0,
            CollSig::Bcast { root: 0 },
            Contribution::Bytes(bytes("x")),
            0.0,
        )
        .unwrap();
        let err = slot
            .enter(
                1,
                CollSig::Bcast { root: 1 },
                Contribution::Bytes(bytes("y")),
                0.0,
            )
            .unwrap_err();
        assert!(matches!(err, MpiError::CollectiveMismatch { .. }));
    }

    #[test]
    fn finish_with_error_propagates_to_all() {
        let mut slot = CollSlot::new(2);
        let (gen, _) = slot
            .enter(
                0,
                CollSig::AllreduceU64 { op: ReduceOp::Sum },
                Contribution::U64s(vec![1]),
                0.0,
            )
            .unwrap();
        slot.enter(
            1,
            CollSig::AllreduceU64 { op: ReduceOp::Sum },
            Contribution::U64s(vec![1, 2]),
            0.0,
        )
        .unwrap();
        let (sig, contribs, vt) = slot.take_contributions();
        slot.finish(gen, combine(sig, &contribs), vt);
        let (out0, _) = slot.try_take(gen, 0).unwrap();
        let (out1, _) = slot.try_take(gen, 1).unwrap();
        assert!(out0.is_err());
        assert!(out1.is_err());
    }
}
