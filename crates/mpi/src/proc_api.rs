//! The program-facing MPI API ([`Mpi`]) and the bottom of the interposition
//! stack ([`Pmpi`], the `PMPI_*` level).
//!
//! Verified programs are written against `&mut dyn Mpi`. Tool layers
//! (DAMPI, ISP, stats) also implement [`Mpi`] by wrapping an inner
//! implementation — the PnMPI pattern: a call enters the top of the stack
//! and each layer decides what to forward downward, ultimately reaching the
//! runtime through [`Pmpi`].

use std::sync::Arc;

use bytes::Bytes;

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::matching::ProbeInfo;
use crate::request::Request;
use crate::runtime::World;
use crate::types::Tag;

/// Completion status of a receive (or trivially of a send).
///
/// For receives, `source` is the comm rank the message actually came from —
/// the information DAMPI's Algorithm 1 reads after completing a wildcard
/// receive (`status.MPI_SOURCE`). For send completions the runtime reports
/// the caller's own rank and the posted tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Comm rank of the message source.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: Tag,
}

/// The MPI interface available to verified programs and tool layers.
///
/// Blocking convenience operations (`send`, `recv`, `waitall`, `sendrecv`)
/// have default implementations in terms of the nonblocking primitives, so a
/// tool layer that intercepts the primitives automatically intercepts the
/// conveniences.
#[allow(clippy::too_many_arguments)]
pub trait Mpi: Send {
    /// This process's world rank.
    fn world_rank(&self) -> usize;
    /// Number of processes in the world.
    fn world_size(&self) -> usize;
    /// This process's rank within `comm`.
    fn comm_rank(&self, comm: Comm) -> Result<usize>;
    /// Size of `comm`'s group.
    fn comm_size(&self, comm: Comm) -> Result<usize>;
    /// Translate a rank of `comm`'s group to its world rank (the analog of
    /// `MPI_Group_translate_ranks` against the world group).
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize>;
    /// This rank's current virtual time (simulated seconds).
    fn now(&self) -> f64;

    /// Nonblocking send (`MPI_Isend`); eager, so the request is complete on
    /// creation but must still be waited to be reclaimed.
    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request>;
    /// Nonblocking receive (`MPI_Irecv`); `src` may be [`crate::ANY_SOURCE`]
    /// — the non-deterministic operation DAMPI enumerates outcomes of.
    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request>;
    /// Block until `req` completes (`MPI_Wait`); consumes the request.
    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)>;
    /// Poll `req` (`MPI_Test`); consumes the request when complete.
    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>>;
    /// Block until any of `reqs` completes (`MPI_Waitany`); returns its
    /// index and consumes only that request.
    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)>;
    /// Poll any of `reqs` (`MPI_Testany`); consumes the completed request.
    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>>;
    /// Block until at least one of `reqs` completes (`MPI_Waitsome`);
    /// returns and consumes every request complete at that moment.
    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>>;
    /// Blocking probe (`MPI_Probe`); `src` may be wildcard (also
    /// non-deterministic, paper §II-E).
    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo>;
    /// Nonblocking probe (`MPI_Iprobe`).
    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>>;

    /// `MPI_Barrier`.
    fn barrier(&mut self, comm: Comm) -> Result<()>;
    /// `MPI_Bcast`: root passes `Some(data)`, everyone receives it.
    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes>;
    /// `MPI_Reduce` on u64 vectors; only root receives `Some`.
    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>>;
    /// `MPI_Allreduce` on u64 vectors.
    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>>;
    /// `MPI_Reduce` on f64 vectors; only root receives `Some`.
    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>>;
    /// `MPI_Allreduce` on f64 vectors.
    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>>;
    /// `MPI_Gather` to `root`, which receives all contributions in comm-rank
    /// order.
    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>>;
    /// `MPI_Allgather`.
    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>>;
    /// `MPI_Scatter` from `root`, which passes one payload per rank.
    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes>;
    /// `MPI_Alltoall`.
    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>>;

    /// `MPI_Comm_dup` (collective over `comm`).
    fn comm_dup(&mut self, comm: Comm) -> Result<Comm>;
    /// `MPI_Comm_split` (collective): negative `color` means
    /// `MPI_UNDEFINED` and yields `None`.
    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>>;
    /// `MPI_Comm_free` (collective over `comm`).
    fn comm_free(&mut self, comm: Comm) -> Result<()>;

    /// `MPI_Pcontrol`: a no-op for the runtime, but tool layers interpret it
    /// — DAMPI's loop iteration abstraction brackets loops with it
    /// (paper §III-B1).
    fn pcontrol(&mut self, code: i32) -> Result<()>;
    /// Advance this rank's virtual time by `seconds` of local computation.
    fn compute(&mut self, seconds: f64) -> Result<()>;
    /// `MPI_Finalize`-time hook; tool layers flush their logs here. Called
    /// once by the run harness after the program returns successfully.
    fn finalize(&mut self) -> Result<()>;

    /// Blocking send (`MPI_Send`).
    fn send(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<()> {
        let r = self.isend(comm, dest, tag, data)?;
        self.wait(r)?;
        Ok(())
    }

    /// Blocking receive (`MPI_Recv`).
    fn recv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<(Status, Bytes)> {
        let r = self.irecv(comm, src, tag)?;
        self.wait(r)
    }

    /// `MPI_Waitall`: wait for every request, in order.
    fn waitall(&mut self, reqs: &[Request]) -> Result<Vec<(Status, Bytes)>> {
        reqs.iter().map(|r| self.wait(*r)).collect()
    }

    /// `MPI_Sendrecv`: concurrent send and receive, completing both.
    fn sendrecv(
        &mut self,
        comm: Comm,
        dest: i32,
        send_tag: Tag,
        data: Bytes,
        src: i32,
        recv_tag: Tag,
    ) -> Result<(Status, Bytes)> {
        let rr = self.irecv(comm, src, recv_tag)?;
        let sr = self.isend(comm, dest, send_tag, data)?;
        let out = self.wait(rr)?;
        self.wait(sr)?;
        Ok(out)
    }
}

/// The bottom of the interposition stack: direct access to the simulated
/// runtime, analogous to calling `PMPI_*` functions.
pub struct Pmpi {
    world: Arc<World>,
    rank: usize,
}

impl Pmpi {
    /// Handle for `rank` on `world`. Normally constructed by the run
    /// harness and passed to the layer factory.
    #[must_use]
    pub fn new(world: Arc<World>, rank: usize) -> Self {
        Self { world, rank }
    }

    /// The world this handle belongs to.
    #[must_use]
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }
}

impl Mpi for Pmpi {
    fn world_rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world.nprocs()
    }

    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.world.op_comm_rank(self.rank, comm)
    }

    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.world.op_comm_size(self.rank, comm)
    }

    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.world.op_translate_rank(comm, comm_rank)
    }

    fn now(&self) -> f64 {
        self.world.op_now(self.rank)
    }

    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.world.op_isend(self.rank, comm, dest, tag, data)
    }

    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.world.op_irecv(self.rank, comm, src, tag)
    }

    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        self.world.op_wait(self.rank, req)
    }

    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        self.world.op_test(self.rank, req)
    }

    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        self.world.op_waitany(self.rank, reqs)
    }

    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        self.world.op_testany(self.rank, reqs)
    }

    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        self.world.op_waitsome(self.rank, reqs)
    }

    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        self.world.op_probe(self.rank, comm, src, tag)
    }

    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        self.world.op_iprobe(self.rank, comm, src, tag)
    }

    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.world.op_barrier(self.rank, comm)
    }

    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.world.op_bcast(self.rank, comm, root, data)
    }

    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.world.op_reduce_u64(self.rank, comm, root, value, op)
    }

    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.world.op_allreduce_u64(self.rank, comm, value, op)
    }

    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.world.op_reduce_f64(self.rank, comm, root, value, op)
    }

    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.world.op_allreduce_f64(self.rank, comm, value, op)
    }

    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.world.op_gather(self.rank, comm, root, data)
    }

    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.world.op_allgather(self.rank, comm, data)
    }

    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.world.op_scatter(self.rank, comm, root, data)
    }

    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.world.op_alltoall(self.rank, comm, data)
    }

    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        self.world.op_comm_dup(self.rank, comm)
    }

    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        self.world.op_comm_split(self.rank, comm, color, key)
    }

    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.world.op_comm_free(self.rank, comm)
    }

    fn pcontrol(&mut self, _code: i32) -> Result<()> {
        // The runtime ignores pcontrol, per MPI; tool layers interpret it.
        self.world.op_fatal_check()
    }

    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.world.op_compute(self.rank, seconds)
    }

    fn finalize(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Convenience guard: turn a boolean program property into a
/// [`MpiError::UserAssert`], the simulator analog of the paper Fig. 3
/// `if (x==33) error` application-level check.
pub fn user_assert(cond: bool, message: impl Into<String>) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(MpiError::UserAssert {
            message: message.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_assert_passes_and_fails() {
        assert!(user_assert(true, "fine").is_ok());
        match user_assert(false, "x==33") {
            Err(MpiError::UserAssert { message }) => assert_eq!(message, "x==33"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
