//! Error type shared by the runtime, tools, and verifier drivers.

use std::fmt;

/// Result alias for MPI simulator operations.
pub type Result<T> = std::result::Result<T, MpiError>;

/// Errors produced by the simulated MPI runtime or by verified programs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MpiError {
    /// Every live rank is blocked inside the runtime with no possible
    /// progress — a real deadlock of the verified program.
    Deadlock {
        /// World ranks that were blocked when the deadlock was declared.
        blocked_ranks: Vec<usize>,
    },
    /// Another rank aborted (program error or panic), tearing down the job —
    /// the simulator analog of `MPI_Abort`.
    Aborted {
        /// The rank whose failure initiated the teardown.
        by_rank: usize,
    },
    /// A rank referenced a peer outside the communicator's group.
    InvalidRank {
        /// The offending rank argument.
        rank: i32,
        /// Size of the communicator it was used with.
        comm_size: usize,
    },
    /// An operation referenced a freed or unknown communicator.
    InvalidComm,
    /// An operation referenced an unknown or already-consumed request.
    InvalidRequest,
    /// Two ranks called different collectives (or different roots/ops) on
    /// the same communicator concurrently — erroneous per the MPI standard.
    CollectiveMismatch {
        /// Description of the two conflicting calls.
        detail: String,
    },
    /// A program-level assertion failed (the verified application detected
    /// its own bug, e.g. the paper's Fig. 3 `if (x==33) error`).
    UserAssert {
        /// The application's message.
        message: String,
    },
    /// A rank panicked; the panic payload is captured as text.
    Panicked {
        /// Panic payload rendered to a string.
        message: String,
    },
    /// Tool-layer protocol violation (e.g. a piggyback message missing).
    ToolProtocol {
        /// Description of the violation.
        detail: String,
    },
    /// The verifier hit a configured exploration limit (not a program bug).
    Budget {
        /// Which limit was exceeded.
        detail: String,
    },
    /// A replay watchdog killed the run: a per-replay wall-clock or
    /// virtual-time budget was exceeded (a hung or runaway interleaving,
    /// not a program bug — the schedule is recorded and skipped).
    ReplayTimeout {
        /// Which budget tripped, with the limit and observed value.
        detail: String,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Deadlock { blocked_ranks } => {
                write!(f, "deadlock: all live ranks blocked {blocked_ranks:?}")
            }
            MpiError::Aborted { by_rank } => write!(f, "job aborted by rank {by_rank}"),
            MpiError::InvalidRank { rank, comm_size } => {
                write!(
                    f,
                    "invalid rank {rank} for communicator of size {comm_size}"
                )
            }
            MpiError::InvalidComm => write!(f, "invalid or freed communicator"),
            MpiError::InvalidRequest => write!(f, "invalid or consumed request"),
            MpiError::CollectiveMismatch { detail } => {
                write!(f, "collective call mismatch: {detail}")
            }
            MpiError::UserAssert { message } => write!(f, "application assertion: {message}"),
            MpiError::Panicked { message } => write!(f, "rank panicked: {message}"),
            MpiError::ToolProtocol { detail } => write!(f, "tool protocol violation: {detail}"),
            MpiError::Budget { detail } => write!(f, "exploration budget exceeded: {detail}"),
            MpiError::ReplayTimeout { detail } => {
                write!(f, "replay watchdog fired: {detail}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

impl MpiError {
    /// True for errors that represent *bugs in the verified program* (the
    /// things a verifier reports), as opposed to tool/budget conditions.
    #[must_use]
    pub fn is_program_bug(&self) -> bool {
        matches!(
            self,
            MpiError::Deadlock { .. }
                | MpiError::UserAssert { .. }
                | MpiError::Panicked { .. }
                | MpiError::CollectiveMismatch { .. }
                | MpiError::InvalidRank { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::Deadlock {
            blocked_ranks: vec![0, 1],
        };
        assert!(e.to_string().contains("deadlock"));
        let e = MpiError::UserAssert {
            message: "x==33".into(),
        };
        assert!(e.to_string().contains("x==33"));
    }

    #[test]
    fn bug_classification() {
        assert!(MpiError::Deadlock {
            blocked_ranks: vec![]
        }
        .is_program_bug());
        assert!(MpiError::UserAssert {
            message: String::new()
        }
        .is_program_bug());
        assert!(!MpiError::Budget {
            detail: String::new()
        }
        .is_program_bug());
        assert!(!MpiError::ReplayTimeout {
            detail: String::new()
        }
        .is_program_bug());
        assert!(!MpiError::Aborted { by_rank: 0 }.is_program_bug());
    }
}
