//! Event-trace recording layer.
//!
//! Records every MPI call a rank makes — operation, arguments, virtual
//! time — into a shared collector, in the spirit of the trace-based tools
//! the paper's related work discusses (ScalaTrace, MPIWiz). Those tools
//! can only *replay the observed schedule*; DAMPI derives and enforces
//! alternate schedules. The trace layer is therefore a diagnostic
//! companion, not a verifier: stack it above `DampiLayer` to see exactly
//! what the program did in the interleaving that exposed a bug.

use parking_lot::Mutex;
use std::sync::Arc;

use bytes::Bytes;

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::error::Result;
use crate::matching::ProbeInfo;
use crate::proc_api::{Mpi, Status};
use crate::request::Request;
use crate::types::Tag;

/// One recorded MPI event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// World rank that issued the call.
    pub rank: usize,
    /// Per-rank event sequence number.
    pub seq: u64,
    /// Rank-local virtual time when the call was issued.
    pub vt: f64,
    /// The operation and its interesting arguments.
    pub op: TraceOp,
}

/// Content identity of a message payload (FNV-1a over the bytes).
///
/// Recorded alongside the length on every traced send: any analysis that
/// treats two sends as interchangeable must compare what was *sent*, not
/// just how much — two equal-length payloads with different contents can
/// steer the receiver into different behavior (the Fig. 3 bug is exactly
/// a payload-value assert).
#[must_use]
pub fn payload_digest(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Operation variants captured by the trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum TraceOp {
    Isend {
        comm: u32,
        dest: i32,
        tag: Tag,
        bytes: usize,
        digest: u64,
    },
    Irecv {
        comm: u32,
        src: i32,
        tag: Tag,
    },
    Wait {
        completed_source: usize,
        tag: Tag,
    },
    Test {
        completed: bool,
    },
    Probe {
        comm: u32,
        src: i32,
        tag: Tag,
        hit_source: usize,
    },
    Iprobe {
        comm: u32,
        src: i32,
        tag: Tag,
        hit: bool,
    },
    Collective {
        comm: u32,
        name: std::borrow::Cow<'static, str>,
    },
    CommDup {
        parent: u32,
        result: u32,
    },
    CommSplit {
        parent: u32,
        color: i64,
        member: bool,
        /// Ordering key the rank passed (serde-defaulted so pre-existing
        /// traces still parse).
        #[serde(default)]
        key: i64,
        /// Id of the communicator this rank received, `None` when the
        /// rank opted out (negative color). Lets offline analysis rebuild
        /// derived-comm membership; serde-defaulted for old traces.
        #[serde(default)]
        result: Option<u32>,
    },
    CommFree {
        comm: u32,
    },
    Pcontrol {
        code: i32,
    },
    Finalize,
}

/// Thread-safe trace sink shared by per-rank [`TraceLayer`]s.
#[derive(Debug, Default)]
pub struct TraceCollector {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceCollector {
    /// Fresh collector behind an `Arc`.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn push(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }

    /// Drain the recorded events, ordered by (rank, seq).
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut *self.events.lock());
        evs.sort_by_key(|e| (e.rank, e.seq));
        evs
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serialize the trace as JSON Lines (one event per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.take()
            .iter()
            .map(|e| serde_json::to_string(e).expect("trace events serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The recording layer for one rank.
pub struct TraceLayer<M: Mpi> {
    inner: M,
    collector: Arc<TraceCollector>,
    rank: usize,
    seq: u64,
}

impl<M: Mpi> TraceLayer<M> {
    /// Wrap `inner`, recording into `collector`.
    pub fn new(inner: M, collector: Arc<TraceCollector>) -> Self {
        let rank = inner.world_rank();
        Self {
            inner,
            collector,
            rank,
            seq: 0,
        }
    }

    fn record(&mut self, op: TraceOp) {
        let ev = TraceEvent {
            rank: self.rank,
            seq: self.seq,
            vt: self.inner.now(),
            op,
        };
        self.seq += 1;
        self.collector.push(ev);
    }
}

impl<M: Mpi> Mpi for TraceLayer<M> {
    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn comm_rank(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_rank(comm)
    }
    fn comm_size(&self, comm: Comm) -> Result<usize> {
        self.inner.comm_size(comm)
    }
    fn translate_rank(&self, comm: Comm, comm_rank: usize) -> Result<usize> {
        self.inner.translate_rank(comm, comm_rank)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn isend(&mut self, comm: Comm, dest: i32, tag: Tag, data: Bytes) -> Result<Request> {
        self.record(TraceOp::Isend {
            comm: comm.0,
            dest,
            tag,
            bytes: data.len(),
            digest: payload_digest(&data),
        });
        self.inner.isend(comm, dest, tag, data)
    }
    fn irecv(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Request> {
        self.record(TraceOp::Irecv {
            comm: comm.0,
            src,
            tag,
        });
        self.inner.irecv(comm, src, tag)
    }
    fn wait(&mut self, req: Request) -> Result<(Status, Bytes)> {
        let (status, data) = self.inner.wait(req)?;
        self.record(TraceOp::Wait {
            completed_source: status.source,
            tag: status.tag,
        });
        Ok((status, data))
    }
    fn test(&mut self, req: Request) -> Result<Option<(Status, Bytes)>> {
        let out = self.inner.test(req)?;
        self.record(TraceOp::Test {
            completed: out.is_some(),
        });
        Ok(out)
    }
    fn waitany(&mut self, reqs: &[Request]) -> Result<(usize, Status, Bytes)> {
        let (idx, status, data) = self.inner.waitany(reqs)?;
        self.record(TraceOp::Wait {
            completed_source: status.source,
            tag: status.tag,
        });
        Ok((idx, status, data))
    }
    fn testany(&mut self, reqs: &[Request]) -> Result<Option<(usize, Status, Bytes)>> {
        let out = self.inner.testany(reqs)?;
        self.record(TraceOp::Test {
            completed: out.is_some(),
        });
        Ok(out)
    }
    fn waitsome(&mut self, reqs: &[Request]) -> Result<Vec<(usize, Status, Bytes)>> {
        let out = self.inner.waitsome(reqs)?;
        for (_, status, _) in &out {
            self.record(TraceOp::Wait {
                completed_source: status.source,
                tag: status.tag,
            });
        }
        Ok(out)
    }
    fn probe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<ProbeInfo> {
        let info = self.inner.probe(comm, src, tag)?;
        self.record(TraceOp::Probe {
            comm: comm.0,
            src,
            tag,
            hit_source: info.src,
        });
        Ok(info)
    }
    fn iprobe(&mut self, comm: Comm, src: i32, tag: Tag) -> Result<Option<ProbeInfo>> {
        let out = self.inner.iprobe(comm, src, tag)?;
        self.record(TraceOp::Iprobe {
            comm: comm.0,
            src,
            tag,
            hit: out.is_some(),
        });
        Ok(out)
    }
    fn barrier(&mut self, comm: Comm) -> Result<()> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "barrier".into(),
        });
        self.inner.barrier(comm)
    }
    fn bcast(&mut self, comm: Comm, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "bcast".into(),
        });
        self.inner.bcast(comm, root, data)
    }
    fn reduce_u64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<u64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<u64>>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "reduce_u64".into(),
        });
        self.inner.reduce_u64(comm, root, value, op)
    }
    fn allreduce_u64(&mut self, comm: Comm, value: Vec<u64>, op: ReduceOp) -> Result<Vec<u64>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "allreduce_u64".into(),
        });
        self.inner.allreduce_u64(comm, value, op)
    }
    fn reduce_f64(
        &mut self,
        comm: Comm,
        root: usize,
        value: Vec<f64>,
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "reduce_f64".into(),
        });
        self.inner.reduce_f64(comm, root, value, op)
    }
    fn allreduce_f64(&mut self, comm: Comm, value: Vec<f64>, op: ReduceOp) -> Result<Vec<f64>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "allreduce_f64".into(),
        });
        self.inner.allreduce_f64(comm, value, op)
    }
    fn gather(&mut self, comm: Comm, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "gather".into(),
        });
        self.inner.gather(comm, root, data)
    }
    fn allgather(&mut self, comm: Comm, data: Bytes) -> Result<Vec<Bytes>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "allgather".into(),
        });
        self.inner.allgather(comm, data)
    }
    fn scatter(&mut self, comm: Comm, root: usize, data: Option<Vec<Bytes>>) -> Result<Bytes> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "scatter".into(),
        });
        self.inner.scatter(comm, root, data)
    }
    fn alltoall(&mut self, comm: Comm, data: Vec<Bytes>) -> Result<Vec<Bytes>> {
        self.record(TraceOp::Collective {
            comm: comm.0,
            name: "alltoall".into(),
        });
        self.inner.alltoall(comm, data)
    }
    fn comm_dup(&mut self, comm: Comm) -> Result<Comm> {
        let result = self.inner.comm_dup(comm)?;
        self.record(TraceOp::CommDup {
            parent: comm.0,
            result: result.0,
        });
        Ok(result)
    }
    fn comm_split(&mut self, comm: Comm, color: i64, key: i64) -> Result<Option<Comm>> {
        let result = self.inner.comm_split(comm, color, key)?;
        self.record(TraceOp::CommSplit {
            parent: comm.0,
            color,
            member: result.is_some(),
            key,
            result: result.map(|c| c.0),
        });
        Ok(result)
    }
    fn comm_free(&mut self, comm: Comm) -> Result<()> {
        self.record(TraceOp::CommFree { comm: comm.0 });
        self.inner.comm_free(comm)
    }
    fn pcontrol(&mut self, code: i32) -> Result<()> {
        self.record(TraceOp::Pcontrol { code });
        self.inner.pcontrol(code)
    }
    fn compute(&mut self, seconds: f64) -> Result<()> {
        self.inner.compute(seconds)
    }
    fn finalize(&mut self) -> Result<()> {
        self.record(TraceOp::Finalize);
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;
    use crate::runtime::{run_with_layers, SimConfig};
    use crate::{ANY_SOURCE, ANY_TAG};

    fn traced_run(
        n: usize,
        prog: impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync,
    ) -> Vec<TraceEvent> {
        let collector = TraceCollector::new();
        let c2 = Arc::clone(&collector);
        let out = run_with_layers(&SimConfig::new(n), &FnProgram(prog), &move |_, pmpi| {
            Ok(Box::new(TraceLayer::new(pmpi, Arc::clone(&c2))))
        });
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        collector.take()
    }

    #[test]
    fn records_point_to_point_and_collectives() {
        let events = traced_run(2, |mpi| {
            if mpi.world_rank() == 0 {
                mpi.send(Comm::WORLD, 1, 7, Bytes::from_static(b"abc"))?;
            } else {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
            }
            mpi.barrier(Comm::WORLD)
        });
        assert!(events.iter().any(|e| matches!(
            e.op,
            TraceOp::Isend {
                dest: 1,
                tag: 7,
                bytes: 3,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.op,
            TraceOp::Irecv {
                src: ANY_SOURCE,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.op,
            TraceOp::Wait {
                completed_source: 0,
                ..
            }
        )));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(&e.op, TraceOp::Collective { name, .. } if name == "barrier"))
                .count(),
            2,
            "one barrier record per rank"
        );
    }

    #[test]
    fn per_rank_sequence_is_monotone() {
        let events = traced_run(3, |mpi| {
            mpi.barrier(Comm::WORLD)?;
            mpi.barrier(Comm::WORLD)?;
            mpi.barrier(Comm::WORLD)
        });
        for rank in 0..3 {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| e.seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        }
    }

    #[test]
    fn jsonl_export_parses_back() {
        let collector = TraceCollector::new();
        let c2 = Arc::clone(&collector);
        let prog = FnProgram(|mpi: &mut dyn Mpi| mpi.barrier(Comm::WORLD));
        let out = run_with_layers(&SimConfig::new(2), &prog, &move |_, pmpi| {
            Ok(Box::new(TraceLayer::new(pmpi, Arc::clone(&c2))))
        });
        assert!(out.succeeded());
        // take() drains; re-record via a fresh run for the export test.
        let collector2 = TraceCollector::new();
        let c3 = Arc::clone(&collector2);
        let out = run_with_layers(&SimConfig::new(2), &prog, &move |_, pmpi| {
            Ok(Box::new(TraceLayer::new(pmpi, Arc::clone(&c3))))
        });
        assert!(out.succeeded());
        let jsonl = collector2.to_jsonl();
        let parsed: Vec<TraceEvent> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        // barrier + finalize per rank.
        assert_eq!(parsed.len(), 4);
    }

    #[test]
    fn comm_lifecycle_recorded() {
        let events = traced_run(2, |mpi| {
            let d = mpi.comm_dup(Comm::WORLD)?;
            mpi.comm_free(d)
        });
        assert!(events
            .iter()
            .any(|e| matches!(e.op, TraceOp::CommDup { parent: 0, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.op, TraceOp::CommFree { .. })));
    }
}
