//! The virtual-time (simulated wall-clock) cost model.
//!
//! The paper evaluates DAMPI and ISP by wall-clock time on an 800-node
//! cluster. We have no cluster, so the runtime tracks **simulated seconds**
//! with a LogP-flavored model: every rank accumulates local time for compute
//! and per-call overheads; message receives synchronize with the sender's
//! stamped time plus latency and bandwidth terms; collectives cost a
//! log-depth tree. ISP's centralized scheduler is modeled as a serialized
//! transaction per MPI call (its real bottleneck, §II-A), DAMPI's overhead
//! as the organic cost of its extra piggyback messages.
//!
//! Absolute values are calibrated to commodity-cluster magnitudes
//! (microsecond latencies); only the *shape* of the paper's figures is
//! claimed, as DESIGN.md documents.

/// Parameters of the virtual-time model.
#[derive(Debug, Clone, Copy)]
pub struct VTimeParams {
    /// CPU overhead charged to the sender per send (LogP `o`).
    pub send_overhead: f64,
    /// CPU overhead charged to the receiver per completed receive.
    pub recv_overhead: f64,
    /// Wire latency, send completion to receive availability (LogP `L`).
    pub latency: f64,
    /// Per-byte bandwidth term (LogP `G`).
    pub per_byte: f64,
    /// Per-tree-stage latency of a collective (cost = `coll_latency *
    /// ceil(log2 n)`).
    pub coll_latency: f64,
    /// Central-scheduler processing time per MPI call under ISP. Serialized
    /// across *all* ranks — the term that makes ISP's curves explode.
    pub isp_per_op: f64,
    /// Round-trip time of the ISP scheduler's synchronous socket exchange,
    /// charged to the calling rank on top of the serialized portion.
    pub isp_rtt: f64,
    /// CPU time DAMPI spends analyzing one late message
    /// (`FindPotentialMatches`).
    pub dampi_analysis: f64,
}

impl Default for VTimeParams {
    fn default() -> Self {
        Self {
            send_overhead: 2e-6,
            recv_overhead: 2e-6,
            latency: 5e-6,
            per_byte: 5e-10, // ~2 GB/s
            coll_latency: 5e-6,
            isp_per_op: 120e-6,
            isp_rtt: 60e-6,
            dampi_analysis: 5e-6,
        }
    }
}

impl VTimeParams {
    /// Receiver-side completion time of a message sent at `send_vt` with
    /// `bytes` payload, at a receiver whose local time is `recv_vt`.
    #[must_use]
    pub fn recv_complete(&self, send_vt: f64, recv_vt: f64, bytes: usize) -> f64 {
        let arrival = send_vt + self.latency + bytes as f64 * self.per_byte;
        recv_vt.max(arrival) + self.recv_overhead
    }

    /// Cost of a collective over `n` ranks (dissemination-tree depth).
    #[must_use]
    pub fn collective_cost(&self, n: usize) -> f64 {
        let stages = (n.max(1) as f64).log2().ceil().max(1.0);
        self.coll_latency * stages
    }
}

/// Serialized virtual clock of the ISP central scheduler.
///
/// Each intercepted MPI call performs a synchronous transaction: the
/// scheduler cannot begin it before finishing every earlier transaction, so
/// scheduler time advances `max(sched, caller) + per_op`, and the caller
/// resumes at `sched + rtt`. With per-process op counts growing with scale
/// (paper Table I), this serialization is ISP's non-scalability.
#[derive(Debug, Default)]
pub struct CentralClock {
    vt: f64,
    transactions: u64,
}

impl CentralClock {
    /// Fresh scheduler clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one synchronous transaction for a caller whose local time is
    /// `caller_vt`; returns the caller's new local time.
    pub fn transact(&mut self, caller_vt: f64, params: &VTimeParams) -> f64 {
        self.vt = self.vt.max(caller_vt) + params.isp_per_op;
        self.transactions += 1;
        self.vt + params.isp_rtt
    }

    /// Scheduler's current virtual time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.vt
    }

    /// Number of transactions processed.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_complete_waits_for_arrival() {
        let p = VTimeParams::default();
        // Receiver is early: completion dominated by arrival.
        let t = p.recv_complete(1.0, 0.0, 0);
        assert!((t - (1.0 + p.latency + p.recv_overhead)).abs() < 1e-12);
        // Receiver is late: completion dominated by receiver time.
        let t = p.recv_complete(0.0, 2.0, 0);
        assert!((t - (2.0 + p.recv_overhead)).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let p = VTimeParams::default();
        let small = p.recv_complete(0.0, 0.0, 8);
        let big = p.recv_complete(0.0, 0.0, 8 << 20);
        assert!(big > small);
    }

    #[test]
    fn collective_cost_grows_logarithmically() {
        let p = VTimeParams::default();
        let c2 = p.collective_cost(2);
        let c1024 = p.collective_cost(1024);
        assert!((c1024 / c2 - 10.0).abs() < 1e-9, "log2(1024)/log2(2) = 10");
    }

    #[test]
    fn central_clock_serializes() {
        let p = VTimeParams::default();
        let mut c = CentralClock::new();
        // Two calls from ranks both at local time 0: the second caller's
        // completion includes the first transaction's processing time.
        let t1 = c.transact(0.0, &p);
        let t2 = c.transact(0.0, &p);
        assert!(t2 > t1);
        assert_eq!(c.transactions(), 2);
        // N transactions take at least N * per_op of scheduler time.
        for _ in 0..98 {
            c.transact(0.0, &p);
        }
        assert!(c.now() >= 100.0 * p.isp_per_op - 1e-12);
    }

    #[test]
    fn central_clock_respects_caller_time() {
        let p = VTimeParams::default();
        let mut c = CentralClock::new();
        let t = c.transact(5.0, &p);
        assert!(t > 5.0);
    }
}
