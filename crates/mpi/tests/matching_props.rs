//! Property-based tests of the matching engine: MPI matching invariants
//! under arbitrary operation sequences.

use bytes::Bytes;
use dampi_mpi::envelope::Envelope;
use dampi_mpi::matching::{Delivery, MatchEngine, MatchPolicy};
use dampi_mpi::{ANY_SOURCE, ANY_TAG};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Send from `src` to `dst` with `tag`; payload encodes a per-stream
    /// sequence number.
    Send { src: usize, dst: usize, tag: i32 },
    /// Post a receive at `dst` (src/tag may be wildcards).
    Recv { dst: usize, src: i32, tag: i32 },
}

/// Execute ops against the engine, tracking matched (src,tag,seq) streams
/// per destination.
fn run_ops(nprocs: usize, ops: &[Op], policy: MatchPolicy) -> TestState {
    let mut engine = MatchEngine::new(nprocs);
    let mut next_seq: HashMap<(usize, usize, i32), u64> = HashMap::new();
    let mut req_id = 0u64;
    let mut st = TestState::new_ok();
    for op in ops {
        match *op {
            Op::Send { src, dst, tag } => {
                let seq = next_seq.entry((src, dst, tag)).or_insert(0);
                let env = Envelope {
                    src,
                    dst,
                    tag,
                    payload: Bytes::from(seq.to_le_bytes().to_vec()),
                    arrival_seq: 0,
                    send_vt: 0.0,
                    send_req: None,
                };
                *seq += 1;
                st.sent += 1;
                match engine.deliver(env) {
                    Delivery::Matched { envelope, .. } => st.record_match(&envelope),
                    Delivery::Queued => {}
                }
            }
            Op::Recv { dst, src, tag } => {
                req_id += 1;
                if let Some(env) = engine.post(dst, req_id, src, tag, policy) {
                    st.record_match(&env);
                }
            }
        }
        st.invariant_ok &= engine.matching_invariant_holds();
    }
    st.remaining = (0..nprocs).map(|d| engine.unexpected_count(d)).sum();
    st
}

#[derive(Debug, Default)]
struct TestState {
    sent: usize,
    matched: usize,
    remaining: usize,
    invariant_ok: bool,
    /// Last matched seq per (src, dst, tag): must be strictly increasing.
    last_seq: HashMap<(usize, usize, i32), u64>,
    fifo_ok: bool,
}

impl TestState {
    fn record_match(&mut self, env: &Envelope) {
        self.matched += 1;
        let seq = u64::from_le_bytes(env.payload[..8].try_into().expect("8 bytes"));
        let key = (env.src, env.dst, env.tag);
        if let Some(&prev) = self.last_seq.get(&key) {
            if seq != prev + 1 {
                self.fifo_ok = false;
            }
        } else if seq != 0 {
            self.fifo_ok = false;
        }
        self.last_seq.insert(key, seq);
    }
}

impl TestState {
    fn new_ok() -> Self {
        Self {
            invariant_ok: true,
            fifo_ok: true,
            ..Default::default()
        }
    }
}

fn check(nprocs: usize, ops: Vec<Op>, policy: MatchPolicy) -> TestState {
    let mut st = TestState::new_ok();
    let run = run_ops(nprocs, &ops, policy);
    st.sent = run.sent;
    st.matched = run.matched;
    st.remaining = run.remaining;
    st.invariant_ok = run.invariant_ok && st.invariant_ok;
    st.fifo_ok = run.fifo_ok && st.fifo_ok;
    st.last_seq = run.last_seq;
    st
}

proptest! {
    /// Messages are conserved: matched + still-queued = sent.
    #[test]
    fn message_conservation(
        nprocs in 2usize..6,
        raw in prop::collection::vec((0usize..6, 0usize..6, -1i32..3, 0usize..2), 1..200),
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(a, b, t, kind)| {
                if kind == 0 {
                    Op::Send { src: a % nprocs, dst: b % nprocs, tag: t.max(0) }
                } else {
                    Op::Recv { dst: a % nprocs, src: if t < 0 { ANY_SOURCE } else { (b % nprocs) as i32 }, tag: if t < 1 { ANY_TAG } else { t } }
                }
            })
            .collect();
        let st = check(nprocs, ops, MatchPolicy::ArrivalOrder);
        prop_assert_eq!(st.matched + st.remaining, st.sent);
        prop_assert!(st.invariant_ok, "posted/unexpected invariant violated");
    }

    /// Non-overtaking: per (src, dst, tag) stream, messages match in send
    /// order, under every wildcard policy.
    #[test]
    fn non_overtaking_all_policies(
        nprocs in 2usize..5,
        raw in prop::collection::vec((0usize..5, 0usize..5, 0i32..2, 0usize..2), 1..150),
        policy_sel in 0usize..3,
    ) {
        let policy = [
            MatchPolicy::ArrivalOrder,
            MatchPolicy::LowestRank,
            MatchPolicy::Seeded(99),
        ][policy_sel];
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(a, b, t, kind)| {
                if kind == 0 {
                    Op::Send { src: a % nprocs, dst: b % nprocs, tag: t }
                } else {
                    // Wildcard-heavy receives to stress policy choice.
                    Op::Recv { dst: a % nprocs, src: ANY_SOURCE, tag: if t == 0 { ANY_TAG } else { t } }
                }
            })
            .collect();
        let st = check(nprocs, ops, policy);
        prop_assert!(st.fifo_ok, "a message overtook an earlier one on its stream");
        prop_assert!(st.invariant_ok);
    }

    /// Policies choose sources, not messages: the set of matched messages
    /// per run is policy-independent when receives are all-wildcard and
    /// drained to exhaustion.
    #[test]
    fn full_drain_is_policy_independent(
        nprocs in 2usize..5,
        sends in prop::collection::vec((0usize..5, 0usize..5), 1..60),
    ) {
        let mut ops: Vec<Op> = sends
            .iter()
            .map(|&(src, dst)| Op::Send { src: src % nprocs, dst: dst % nprocs, tag: 0 })
            .collect();
        // Drain every destination completely.
        for &(_, dst) in &sends {
            ops.push(Op::Recv { dst: dst % nprocs, src: ANY_SOURCE, tag: ANY_TAG });
        }
        let a = check(nprocs, ops.clone(), MatchPolicy::ArrivalOrder);
        let b = check(nprocs, ops, MatchPolicy::LowestRank);
        prop_assert_eq!(a.matched, b.matched);
        prop_assert_eq!(a.remaining, 0);
        prop_assert_eq!(b.remaining, 0);
    }
}
