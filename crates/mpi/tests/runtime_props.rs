//! Property-based robustness tests of the threaded runtime: randomly
//! shaped (but deadlock-free by construction) programs must always
//! complete, conserve messages, and never false-deadlock.

use std::sync::Arc;

use dampi_mpi::envelope::codec;
use dampi_mpi::{run_native, Comm, FnProgram, MatchPolicy, Mpi, Result, SimConfig, ANY_SOURCE};
use proptest::prelude::*;

/// A random traffic matrix: `matrix[i][j]` messages from rank i to rank j.
/// Each rank sends all its messages, then receives its exact in-degree via
/// wildcard receives — no receive can outnumber available messages, so the
/// program is deadlock-free under any schedule.
fn traffic_program(
    matrix: Arc<Vec<Vec<usize>>>,
) -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(move |mpi: &mut dyn Mpi| {
        let me = mpi.world_rank();
        let n = mpi.world_size();
        for (dst, &count) in matrix[me].iter().enumerate() {
            for k in 0..count {
                mpi.send(
                    Comm::WORLD,
                    dst as i32,
                    0,
                    codec::encode_u64s(&[me as u64, k as u64]),
                )?;
            }
        }
        let in_degree: usize = (0..n).map(|src| matrix[src][me]).sum();
        let mut received = vec![0usize; n];
        for _ in 0..in_degree {
            let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            let vals = codec::decode_u64s(&data);
            assert_eq!(vals[0] as usize, st.source, "status/payload source agree");
            received[st.source] += 1;
        }
        // Conservation: exactly the advertised per-source counts arrived.
        for (src, &got) in received.iter().enumerate() {
            assert_eq!(got, matrix[src][me], "from {src}: got {got}");
        }
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any traffic matrix completes without deadlock under every policy.
    #[test]
    fn random_traffic_always_completes(
        n in 2usize..6,
        seed_rows in prop::collection::vec(prop::collection::vec(0usize..3, 6), 6),
        policy_sel in 0usize..3,
    ) {
        let policy = [
            MatchPolicy::ArrivalOrder,
            MatchPolicy::LowestRank,
            MatchPolicy::Seeded(1234),
        ][policy_sel];
        let matrix: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).map(|j| seed_rows[i][j]).collect())
            .collect();
        let prog = traffic_program(Arc::new(matrix));
        let out = run_native(&SimConfig::new(n).with_policy(policy), &prog);
        prop_assert!(out.succeeded(), "{:?}", out.fatal);
        prop_assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    /// The same programs complete under full DAMPI instrumentation, and the
    /// wildcard count equals the total message count.
    #[test]
    fn random_traffic_completes_under_dampi(
        n in 2usize..5,
        seed_rows in prop::collection::vec(prop::collection::vec(0usize..2, 5), 5),
    ) {
        use dampi_core::{DampiConfig, DampiVerifier, DecisionSet};
        let matrix: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).map(|j| seed_rows[i][j]).collect())
            .collect();
        let total: usize = matrix.iter().flatten().sum();
        let prog = traffic_program(Arc::new(matrix));
        let v = DampiVerifier::with_config(
            SimConfig::new(n),
            DampiConfig::default().with_max_interleavings(1),
        );
        let run = v.instrumented_run(&prog, &DecisionSet::self_run());
        prop_assert!(run.outcome.succeeded(), "{:?}", run.outcome.fatal);
        prop_assert_eq!(run.stats.wildcards as usize, total);
    }

    /// One receive more than was sent: always a deadlock, never a hang.
    #[test]
    fn missing_message_always_detected(n in 2usize..5, extra_at in 0usize..5) {
        let extra_at = extra_at % n;
        let prog = FnProgram(move |mpi: &mut dyn Mpi| {
            let me = mpi.world_rank();
            let n = mpi.world_size();
            // Ring: everyone sends one message right.
            mpi.send(Comm::WORLD, ((me + 1) % n) as i32, 0, codec::encode_u64(1))?;
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            if me == extra_at {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?; // never satisfied
            }
            Ok(())
        });
        let out = run_native(&SimConfig::new(n), &prog);
        prop_assert!(out.deadlocked(), "{:?}", out.fatal);
    }
}
