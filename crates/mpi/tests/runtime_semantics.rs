//! End-to-end semantics of the threaded MPI runtime: point-to-point,
//! wildcards, collectives, communicator management, deadlock detection,
//! leaks, aborts, and virtual time.

use bytes::Bytes;
use dampi_mpi::envelope::codec;
use dampi_mpi::{
    run_native, run_with_layers, Comm, FnProgram, MatchPolicy, MpiError, MpiProgram, ReduceOp,
    SimConfig, ANY_SOURCE, ANY_TAG,
};

fn cfg(n: usize) -> SimConfig {
    SimConfig::new(n)
}

fn bts(s: &[u8]) -> Bytes {
    Bytes::copy_from_slice(s)
}

#[test]
fn ping_pong() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 7, bts(b"ping"))?;
                let (st, data) = mpi.recv(Comm::WORLD, 1, 8)?;
                assert_eq!(st.source, 1);
                assert_eq!(&data[..], b"pong");
            }
            1 => {
                let (st, data) = mpi.recv(Comm::WORLD, 0, 7)?;
                assert_eq!(st.source, 0);
                assert_eq!(&data[..], b"ping");
                mpi.send(Comm::WORLD, 0, 8, bts(b"pong"))?;
            }
            _ => unreachable!(),
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
    assert!(out.leaks.is_clean());
}

#[test]
fn wildcard_receive_gets_all_messages() {
    // Rank 0 receives world_size-1 messages via ANY_SOURCE; each slave
    // sends its rank. All must arrive exactly once.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let n = mpi.world_size();
        if mpi.world_rank() == 0 {
            let mut seen = vec![false; n];
            for _ in 1..n {
                let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 1)?;
                let val = codec::decode_u64(&data) as usize;
                assert_eq!(st.source, val);
                assert!(!seen[val], "duplicate message from {val}");
                seen[val] = true;
            }
        } else {
            mpi.send(
                Comm::WORLD,
                0,
                1,
                codec::encode_u64(mpi.world_rank() as u64),
            )?;
        }
        Ok(())
    });
    let out = run_native(&cfg(6), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
}

#[test]
fn deadlock_two_ranks_both_receive() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let peer = 1 - mpi.world_rank() as i32;
        let _ = mpi.recv(Comm::WORLD, peer, 0)?;
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.deadlocked(), "expected deadlock, got {:?}", out.fatal);
    let bugs = out.program_bugs();
    assert!(matches!(bugs[0].error, MpiError::Deadlock { .. }));
}

#[test]
fn deadlock_missing_sender() {
    // Rank 1 waits for a message nobody sends while others finish.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 1 {
            let _ = mpi.recv(Comm::WORLD, 2, 5)?;
        }
        Ok(())
    });
    let out = run_native(&cfg(3), &prog);
    assert!(out.deadlocked());
}

#[test]
fn no_false_deadlock_with_computing_rank() {
    // Rank 0 blocks while rank 1 computes then sends: must complete.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            let _ = mpi.recv(Comm::WORLD, 1, 0)?;
        } else {
            std::thread::sleep(std::time::Duration::from_millis(20));
            mpi.send(Comm::WORLD, 0, 0, bts(b"late but real"))?;
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded(), "{:?}", out.fatal);
}

#[test]
fn collectives_roundtrip() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let n = mpi.world_size();
        let me = mpi.world_rank();
        mpi.barrier(Comm::WORLD)?;
        // Bcast from root 1.
        let data = if me == 1 {
            Some(bts(b"root-data"))
        } else {
            None
        };
        let got = mpi.bcast(Comm::WORLD, 1, data)?;
        assert_eq!(&got[..], b"root-data");
        // Allreduce sum of ranks.
        let sum = mpi.allreduce_u64(Comm::WORLD, vec![me as u64], ReduceOp::Sum)?;
        assert_eq!(sum[0], (n * (n - 1) / 2) as u64);
        // Reduce max to root 0.
        let max = mpi.reduce_u64(Comm::WORLD, 0, vec![me as u64], ReduceOp::Max)?;
        if me == 0 {
            assert_eq!(max.unwrap()[0], (n - 1) as u64);
        } else {
            assert!(max.is_none());
        }
        // Allgather of rank bytes.
        let all = mpi.allgather(Comm::WORLD, codec::encode_u64(me as u64))?;
        for (i, b) in all.iter().enumerate() {
            assert_eq!(codec::decode_u64(b) as usize, i);
        }
        // Gather at root 2.
        let g = mpi.gather(Comm::WORLD, 2, codec::encode_u64(me as u64 * 10))?;
        if me == 2 {
            let g = g.unwrap();
            assert_eq!(g.len(), n);
            assert_eq!(codec::decode_u64(&g[3]), 30);
        }
        // Scatter from root 0.
        let parts = if me == 0 {
            Some((0..n).map(|i| codec::encode_u64(i as u64 + 100)).collect())
        } else {
            None
        };
        let part = mpi.scatter(Comm::WORLD, 0, parts)?;
        assert_eq!(codec::decode_u64(&part), me as u64 + 100);
        // Alltoall.
        let outbound: Vec<Bytes> = (0..n)
            .map(|j| codec::encode_u64((me * 100 + j) as u64))
            .collect();
        let inbound = mpi.alltoall(Comm::WORLD, outbound)?;
        for (j, b) in inbound.iter().enumerate() {
            assert_eq!(codec::decode_u64(b) as usize, j * 100 + me);
        }
        Ok(())
    });
    let out = run_native(&cfg(5), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
}

#[test]
fn allreduce_f64_sum() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let v = mpi.allreduce_f64(Comm::WORLD, vec![0.5], ReduceOp::Sum)?;
        assert!((v[0] - mpi.world_size() as f64 * 0.5).abs() < 1e-12);
        Ok(())
    });
    assert!(run_native(&cfg(4), &prog).succeeded());
}

#[test]
fn comm_dup_and_free() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let dup = mpi.comm_dup(Comm::WORLD)?;
        assert_ne!(dup, Comm::WORLD);
        // Traffic on the dup is isolated from world.
        if mpi.world_rank() == 0 {
            mpi.send(dup, 1, 3, bts(b"on-dup"))?;
        } else if mpi.world_rank() == 1 {
            let (_, data) = mpi.recv(dup, 0, 3)?;
            assert_eq!(&data[..], b"on-dup");
        }
        mpi.comm_free(dup)?;
        Ok(())
    });
    let out = run_native(&cfg(3), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
    assert!(out.leaks.is_clean(), "{:?}", out.leaks);
}

#[test]
fn comm_leak_detected() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let _leaked = mpi.comm_dup(Comm::WORLD)?;
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded());
    assert!(out.leaks.has_comm_leak());
    assert_eq!(out.leaks.comm_leaks.len(), 1);
}

#[test]
fn request_leak_detected() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            // Post a receive that is matched but never waited: leaked.
            let _req = mpi.irecv(Comm::WORLD, 1, 9)?;
        } else {
            mpi.send(Comm::WORLD, 0, 9, bts(b"x"))?;
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
    assert!(out.leaks.has_request_leak());
    assert_eq!(out.leaks.request_leaks[0], 1);
    assert_eq!(out.leaks.request_leaks[1], 0);
}

#[test]
fn comm_split_partitions_traffic() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let me = mpi.world_rank();
        let color = (me % 2) as i64;
        let sub = mpi.comm_split(Comm::WORLD, color, me as i64)?.unwrap();
        let sub_size = mpi.comm_size(sub)?;
        let sub_rank = mpi.comm_rank(sub)?;
        assert_eq!(sub_size, 2);
        // Ring exchange inside the subcomm.
        let peer = ((sub_rank + 1) % sub_size) as i32;
        let (st, data) = mpi.sendrecv(sub, peer, 1, codec::encode_u64(me as u64), ANY_SOURCE, 1)?;
        let from_world = codec::decode_u64(&data) as usize;
        // The message must come from the same parity group.
        assert_eq!(from_world % 2, me % 2);
        assert_eq!(st.source, (sub_rank + sub_size - 1) % sub_size);
        mpi.comm_free(sub)?;
        Ok(())
    });
    let out = run_native(&cfg(4), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
    assert!(out.leaks.is_clean());
}

#[test]
fn comm_split_undefined_color() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let me = mpi.world_rank();
        let color = if me == 0 { -1 } else { 1 };
        let sub = mpi.comm_split(Comm::WORLD, color, 0)?;
        if me == 0 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(mpi.comm_size(sub)?, 2);
            mpi.comm_free(sub)?;
        }
        Ok(())
    });
    let out = run_native(&cfg(3), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
}

#[test]
fn collective_mismatch_detected() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            mpi.barrier(Comm::WORLD)?;
        } else {
            let _ = mpi.allreduce_u64(Comm::WORLD, vec![1], ReduceOp::Sum)?;
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(matches!(
        out.fatal,
        Some(MpiError::CollectiveMismatch { .. })
    ));
}

#[test]
fn user_assert_aborts_job() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 1 {
            dampi_mpi::proc_api::user_assert(false, "x==33")?;
        } else {
            // This rank would block forever; the abort must release it.
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, ANY_TAG);
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    let bugs = out.program_bugs();
    assert!(bugs
        .iter()
        .any(|b| matches!(b.error, MpiError::UserAssert { .. })));
}

#[test]
fn panic_is_captured_and_aborts() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            panic!("index out of bounds simulation");
        }
        let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, ANY_TAG);
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    let bugs = out.program_bugs();
    assert!(bugs
        .iter()
        .any(|b| matches!(&b.error, MpiError::Panicked { message } if message.contains("index"))));
}

#[test]
fn probe_then_recv() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            let info = mpi.probe(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
            assert_eq!(info.len, 5);
            let (st, data) = mpi.recv(Comm::WORLD, info.src as i32, info.tag)?;
            assert_eq!(st.source, info.src);
            assert_eq!(&data[..], b"probe");
        } else {
            mpi.send(Comm::WORLD, 0, 4, bts(b"probe"))?;
        }
        Ok(())
    });
    assert!(run_native(&cfg(2), &prog).succeeded());
}

#[test]
fn iprobe_polls() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            loop {
                if let Some(info) = mpi.iprobe(Comm::WORLD, 1, ANY_TAG)? {
                    let _ = mpi.recv(Comm::WORLD, 1, info.tag)?;
                    break;
                }
                std::thread::yield_now();
            }
        } else {
            mpi.send(Comm::WORLD, 0, 2, bts(b"eventually"))?;
        }
        Ok(())
    });
    assert!(run_native(&cfg(2), &prog).succeeded());
}

#[test]
fn waitany_returns_a_completed_request() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            let r1 = mpi.irecv(Comm::WORLD, 1, 1)?;
            let r2 = mpi.irecv(Comm::WORLD, 2, 2)?;
            let (idx, st, _) = mpi.waitany(&[r1, r2])?;
            // Exactly one of the two; wait the other.
            let other = if idx == 0 { r2 } else { r1 };
            assert_eq!(st.source, if idx == 0 { 1 } else { 2 });
            mpi.wait(other)?;
        } else {
            mpi.send(Comm::WORLD, 0, mpi.world_rank() as i32, bts(b"w"))?;
        }
        Ok(())
    });
    assert!(run_native(&cfg(3), &prog).succeeded());
}

#[test]
fn test_polls_request() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            let r = mpi.irecv(Comm::WORLD, 1, 0)?;
            loop {
                if let Some((st, data)) = mpi.test(r)? {
                    assert_eq!(st.source, 1);
                    assert_eq!(&data[..], b"t");
                    break;
                }
                std::thread::yield_now();
            }
        } else {
            mpi.send(Comm::WORLD, 0, 0, bts(b"t"))?;
        }
        Ok(())
    });
    assert!(run_native(&cfg(2), &prog).succeeded());
}

#[test]
fn match_policy_lowest_rank_biases_wildcards() {
    // Both senders' messages are queued before the receive is posted (the
    // barrier orders them), so the policy decides: LowestRank must pick 1.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            mpi.barrier(Comm::WORLD)?;
            let (st, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            assert_eq!(st.source, 1, "LowestRank policy must prefer rank 1");
            let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
        } else {
            mpi.send(Comm::WORLD, 0, 0, bts(b"m"))?;
            mpi.barrier(Comm::WORLD)?;
        }
        Ok(())
    });
    let out = run_native(&cfg(3).with_policy(MatchPolicy::LowestRank), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
}

#[test]
fn nonovertaking_across_threads() {
    // Rank 1 sends 100 ordered messages; rank 0 receives them in order.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            for i in 0..100u64 {
                let (_, data) = mpi.recv(Comm::WORLD, 1, 0)?;
                assert_eq!(codec::decode_u64(&data), i);
            }
        } else {
            for i in 0..100u64 {
                mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(i))?;
            }
        }
        Ok(())
    });
    assert!(run_native(&cfg(2), &prog).succeeded());
}

#[test]
fn virtual_time_advances() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        mpi.compute(1.0)?;
        mpi.barrier(Comm::WORLD)?;
        assert!(mpi.now() >= 1.0);
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded());
    assert!(out.makespan >= 1.0);
}

#[test]
fn message_latency_reflected_in_vtime() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            mpi.compute(0.5)?;
            mpi.send(Comm::WORLD, 1, 0, bts(b"x"))?;
        } else {
            let _ = mpi.recv(Comm::WORLD, 0, 0)?;
            // Receiver time must be at least the sender's send time.
            assert!(mpi.now() > 0.5);
        }
        Ok(())
    });
    assert!(run_native(&cfg(2), &prog).succeeded());
}

#[test]
fn stats_layer_counts_application_ops() {
    use dampi_mpi::interpose::StatsLayer;
    use dampi_mpi::stats::StatsCollector;

    let collector = StatsCollector::new();
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            mpi.send(Comm::WORLD, 1, 0, bts(b"a"))?; // isend + wait
        } else {
            let _ = mpi.recv(Comm::WORLD, 0, 0)?; // irecv + wait
        }
        mpi.barrier(Comm::WORLD)?;
        Ok(())
    });
    let c2 = std::sync::Arc::clone(&collector);
    let out = run_with_layers(&cfg(2), &prog, &move |_, pmpi| {
        Ok(Box::new(StatsLayer::new(pmpi, std::sync::Arc::clone(&c2))))
    });
    assert!(out.succeeded());
    let total = collector.total();
    assert_eq!(total.send_recv, 2, "one isend + one irecv");
    assert_eq!(total.wait, 2);
    assert_eq!(total.collective, 2);
}

#[test]
fn passthrough_layer_is_transparent() {
    use dampi_mpi::PassthroughLayer;
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let sum = mpi.allreduce_u64(Comm::WORLD, vec![1], ReduceOp::Sum)?;
        assert_eq!(sum[0], mpi.world_size() as u64);
        Ok(())
    });
    let out = run_with_layers(&cfg(4), &prog, &|_, pmpi| {
        Ok(Box::new(PassthroughLayer::new(PassthroughLayer::new(pmpi))))
    });
    assert!(out.succeeded());
}

#[test]
fn invalid_rank_rejected() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        if mpi.world_rank() == 0 {
            let err = mpi.send(Comm::WORLD, 99, 0, bts(b"x")).unwrap_err();
            assert!(matches!(err, MpiError::InvalidRank { .. }));
            return Err(err);
        }
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(!out.succeeded());
}

#[test]
fn freed_comm_rejected() {
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let dup = mpi.comm_dup(Comm::WORLD)?;
        mpi.comm_free(dup)?;
        let err = mpi.isend(dup, 0, 0, bts(b"x")).unwrap_err();
        assert!(matches!(err, MpiError::InvalidComm));
        Ok(())
    });
    let out = run_native(&cfg(2), &prog);
    assert!(out.succeeded(), "{:?}", out.rank_errors);
}

#[test]
fn many_ranks_tree_reduction() {
    // A 64-rank stress of collectives + point-to-point.
    let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
        let me = mpi.world_rank();
        let n = mpi.world_size();
        // Manual binary-tree reduce of rank sums via p2p.
        let mut acc = me as u64;
        let mut stride = 1;
        while stride < n {
            if me.is_multiple_of(2 * stride) {
                let peer = me + stride;
                if peer < n {
                    let (_, data) = mpi.recv(Comm::WORLD, peer as i32, 0)?;
                    acc += codec::decode_u64(&data);
                }
            } else {
                mpi.send(Comm::WORLD, (me - stride) as i32, 0, codec::encode_u64(acc))?;
                break;
            }
            stride *= 2;
        }
        if me == 0 {
            assert_eq!(acc, (n as u64) * (n as u64 - 1) / 2);
        }
        mpi.barrier(Comm::WORLD)?;
        Ok(())
    });
    let out = run_native(&cfg(64), &prog);
    assert!(out.succeeded(), "{:?}", out.fatal);
}

/// A named program struct exercising the trait path (not FnProgram).
struct NamedProgram;
impl MpiProgram for NamedProgram {
    fn run(&self, mpi: &mut dyn dampi_mpi::Mpi) -> dampi_mpi::Result<()> {
        mpi.barrier(Comm::WORLD)
    }
    fn name(&self) -> &str {
        "named"
    }
}

#[test]
fn named_program_runs() {
    assert_eq!(NamedProgram.name(), "named");
    assert!(run_native(&cfg(2), &NamedProgram).succeeded());
}

mod rendezvous {
    //! Eager-vs-rendezvous protocol semantics: "unsafe" MPI programs that
    //! rely on eager buffering deadlock once payloads cross the eager
    //! limit — exactly like real MPI implementations.

    use super::*;

    /// Both ranks send first, then receive. Safe only with buffering.
    fn head_to_head_sends(
        bytes: usize,
    ) -> FnProgram<impl Fn(&mut dyn dampi_mpi::Mpi) -> dampi_mpi::Result<()> + Send + Sync> {
        FnProgram(move |mpi: &mut dyn dampi_mpi::Mpi| {
            let peer = (mpi.world_rank() ^ 1) as i32;
            mpi.send(Comm::WORLD, peer, 0, Bytes::from(vec![0u8; bytes]))?;
            let _ = mpi.recv(Comm::WORLD, peer, 0)?;
            Ok(())
        })
    }

    #[test]
    fn unsafe_send_pattern_ok_under_eager() {
        let out = run_native(&cfg(2), &head_to_head_sends(4096));
        assert!(out.succeeded(), "{:?}", out.fatal);
    }

    #[test]
    fn unsafe_send_pattern_deadlocks_under_rendezvous() {
        let sim = cfg(2).with_eager_limit(Some(0));
        let out = run_native(&sim, &head_to_head_sends(64));
        assert!(out.deadlocked(), "buffering-dependent program must hang");
    }

    #[test]
    fn eager_limit_threshold_is_respected() {
        // Small messages still eager below the limit: program survives.
        let sim = cfg(2).with_eager_limit(Some(1024));
        let out = run_native(&sim, &head_to_head_sends(64));
        assert!(out.succeeded(), "{:?}", out.fatal);
        // Above the limit: rendezvous, deadlock.
        let sim = cfg(2).with_eager_limit(Some(1024));
        let out = run_native(&sim, &head_to_head_sends(2048));
        assert!(out.deadlocked());
    }

    #[test]
    fn rendezvous_completes_when_receives_are_posted_first() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let peer = (mpi.world_rank() ^ 1) as i32;
            let r = mpi.irecv(Comm::WORLD, peer, 0)?;
            mpi.send(Comm::WORLD, peer, 0, Bytes::from(vec![1u8; 256]))?;
            let (_, data) = mpi.wait(r)?;
            assert_eq!(data.len(), 256);
            Ok(())
        });
        let out = run_native(&cfg(2).with_eager_limit(Some(0)), &prog);
        assert!(out.succeeded(), "{:?}", out.fatal);
    }

    #[test]
    fn rendezvous_send_pending_until_matched() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            if mpi.world_rank() == 0 {
                let sreq = mpi.isend(Comm::WORLD, 1, 0, Bytes::from(vec![0u8; 128]))?;
                // Unmatched rendezvous send: test must report incomplete.
                assert!(mpi.test(sreq)?.is_none());
                mpi.barrier(Comm::WORLD)?;
                // Peer posts its receive after the barrier; wait completes.
                mpi.wait(sreq)?;
            } else {
                mpi.barrier(Comm::WORLD)?;
                let _ = mpi.recv(Comm::WORLD, 0, 0)?;
            }
            Ok(())
        });
        let out = run_native(&cfg(2).with_eager_limit(Some(0)), &prog);
        assert!(out.succeeded(), "{:?}", out.fatal);
    }

    #[test]
    fn dampi_finds_rendezvous_deadlock() {
        use dampi_core::DampiVerifier;
        let sim = cfg(2).with_eager_limit(Some(0));
        let report = DampiVerifier::new(sim).verify(&head_to_head_sends(64));
        assert!(
            report.deadlocks() >= 1,
            "the verifier must flag the unsafe send pattern: {report}"
        );
    }
}

mod completion_variants {
    //! `MPI_Testany` / `MPI_Waitsome` semantics.

    use super::*;

    #[test]
    fn testany_polls_and_consumes_one() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            if mpi.world_rank() == 0 {
                let r1 = mpi.irecv(Comm::WORLD, 1, 1)?;
                let r2 = mpi.irecv(Comm::WORLD, 2, 2)?;
                let mut remaining = vec![r1, r2];
                while !remaining.is_empty() {
                    if let Some((idx, st, _)) = mpi.testany(&remaining)? {
                        assert!(st.source == 1 || st.source == 2);
                        remaining.remove(idx);
                    } else {
                        std::thread::yield_now();
                    }
                }
            } else {
                mpi.send(Comm::WORLD, 0, mpi.world_rank() as i32, bts(b"m"))?;
            }
            Ok(())
        });
        let out = run_native(&cfg(3), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn waitsome_returns_all_ready() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            if mpi.world_rank() == 0 {
                mpi.barrier(Comm::WORLD)?;
                // Both messages are already queued (the senders passed the
                // barrier after sending): waitsome sees both complete.
                let r1 = mpi.irecv(Comm::WORLD, 1, 0)?;
                let r2 = mpi.irecv(Comm::WORLD, 2, 0)?;
                let done = mpi.waitsome(&[r1, r2])?;
                assert_eq!(done.len(), 2, "both were ready: {done:?}");
            } else {
                mpi.send(Comm::WORLD, 0, 0, bts(b"w"))?;
                mpi.barrier(Comm::WORLD)?;
            }
            Ok(())
        });
        let out = run_native(&cfg(3), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "waitsome must consume requests");
    }

    #[test]
    fn waitsome_blocks_until_at_least_one() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            if mpi.world_rank() == 0 {
                let r1 = mpi.irecv(Comm::WORLD, 1, 0)?;
                let r2 = mpi.irecv(Comm::WORLD, 2, 0)?;
                let mut got = 0;
                let mut remaining = vec![r1, r2];
                while !remaining.is_empty() {
                    let done = mpi.waitsome(&remaining)?;
                    assert!(!done.is_empty());
                    got += done.len();
                    let taken: Vec<usize> = done.iter().map(|(i, _, _)| *i).collect();
                    remaining = remaining
                        .into_iter()
                        .enumerate()
                        .filter(|(i, _)| !taken.contains(i))
                        .map(|(_, r)| r)
                        .collect();
                }
                assert_eq!(got, 2);
            } else {
                mpi.compute(1e-5)?;
                mpi.send(Comm::WORLD, 0, 0, bts(b"w"))?;
            }
            Ok(())
        });
        let out = run_native(&cfg(3), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn waitsome_under_dampi_wildcards() {
        use dampi_core::DampiVerifier;
        // Master collects results with waitsome over wildcard receives:
        // the tool must complete piggybacks for every element returned.
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let n = mpi.world_size();
            if mpi.world_rank() == 0 {
                let reqs: Vec<_> = (1..n)
                    .map(|_| mpi.irecv(Comm::WORLD, ANY_SOURCE, 0))
                    .collect::<dampi_mpi::Result<_>>()?;
                let mut remaining = reqs;
                while !remaining.is_empty() {
                    let done = mpi.waitsome(&remaining)?;
                    let taken: Vec<usize> = done.iter().map(|(i, _, _)| *i).collect();
                    remaining = remaining
                        .into_iter()
                        .enumerate()
                        .filter(|(i, _)| !taken.contains(i))
                        .map(|(_, r)| r)
                        .collect();
                }
            } else {
                mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(7))?;
            }
            Ok(())
        });
        let report = DampiVerifier::new(cfg(4)).verify(&prog);
        assert!(report.errors.is_empty(), "{report}");
        assert_eq!(report.wildcards_analyzed, 3);
        assert!(report.interleavings >= 2, "{report}");
    }
}

mod collective_edges {
    //! Collective edge cases: root mismatches, derived-comm collectives,
    //! and repeated generations.

    use super::*;

    #[test]
    fn bcast_root_mismatch_detected() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let root = mpi.world_rank(); // everyone claims root: mismatch
            let data = Some(bts(b"mine"));
            let _ = mpi.bcast(Comm::WORLD, root, data)?;
            Ok(())
        });
        let out = run_native(&cfg(2), &prog);
        assert!(matches!(
            out.fatal,
            Some(MpiError::CollectiveMismatch { .. })
        ));
    }

    #[test]
    fn reduce_op_mismatch_detected() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let op = if mpi.world_rank() == 0 {
                ReduceOp::Sum
            } else {
                ReduceOp::Max
            };
            let _ = mpi.allreduce_u64(Comm::WORLD, vec![1], op)?;
            Ok(())
        });
        let out = run_native(&cfg(2), &prog);
        assert!(matches!(
            out.fatal,
            Some(MpiError::CollectiveMismatch { .. })
        ));
    }

    #[test]
    fn collectives_on_split_comm() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let me = mpi.world_rank();
            let sub = mpi
                .comm_split(Comm::WORLD, (me % 2) as i64, me as i64)?
                .unwrap();
            let size = mpi.comm_size(sub)? as u64;
            let sum = mpi.allreduce_u64(sub, vec![1], ReduceOp::Sum)?;
            assert_eq!(sum[0], size, "reduction stays inside the subgroup");
            let gathered = mpi.allgather(sub, codec::encode_u64(me as u64))?;
            for g in &gathered {
                assert_eq!(codec::decode_u64(g) as usize % 2, me % 2);
            }
            mpi.comm_free(sub)?;
            Ok(())
        });
        let out = run_native(&cfg(6), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn many_back_to_back_generations() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            for i in 0..200u64 {
                let s = mpi.allreduce_u64(Comm::WORLD, vec![i], ReduceOp::Max)?;
                assert_eq!(s[0], i);
            }
            Ok(())
        });
        let out = run_native(&cfg(5), &prog);
        assert!(out.succeeded(), "{:?}", out.fatal);
    }

    #[test]
    fn vt_monotone_across_collectives() {
        let prog = FnProgram(|mpi: &mut dyn dampi_mpi::Mpi| {
            let mut prev = mpi.now();
            for _ in 0..10 {
                mpi.barrier(Comm::WORLD)?;
                let now = mpi.now();
                assert!(now >= prev, "virtual time went backwards");
                prev = now;
            }
            Ok(())
        });
        assert!(run_native(&cfg(4), &prog).succeeded());
    }
}
