//! 126.lammps: molecular dynamics.
//!
//! Per-step forward/reverse neighbor communication (position scatter,
//! force gather) with modest compute per step: more messages per unit of
//! compute than the CFD codes, hence a visibly higher DAMPI overhead
//! (Table II: 1.88x). Deterministic, leak-free.

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// LAMMPS skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct LammpsParams {
    /// MD time steps.
    pub steps: usize,
    /// Exchange bytes.
    pub msg_bytes: usize,
    /// Simulated force computation per step.
    pub force_cost: f64,
}

/// The LAMMPS program.
#[derive(Debug, Clone)]
pub struct Lammps {
    params: LammpsParams,
}

impl Lammps {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: LammpsParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(LammpsParams {
            steps: 25,
            msg_bytes: 256,
            force_cost: 1.2e-5,
        })
    }
}

impl MpiProgram for Lammps {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        for step in 0..self.params.steps {
            // Forward communication: ghost-atom positions.
            idioms::halo_2d(mpi, Comm::WORLD, tags::HALO, self.params.msg_bytes)?;
            mpi.compute(self.params.force_cost)?;
            // Reverse communication: ghost forces.
            idioms::halo_2d(mpi, Comm::WORLD, tags::HALO + 1, self.params.msg_bytes)?;
            // Thermo output every few steps.
            if step % 5 == 4 {
                let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0, 2.0, 3.0], ReduceOp::Sum)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "126.lammps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Lammps::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }
}
