//! SpecMPI2007 communication skeletons (Table II rows 104.milc,
//! 107.leslie3d, 113.GemsFDTD, 126.lammps, 130.socorro, 137.lu).
//!
//! As with the NAS skeletons, each module reproduces the benchmark's
//! communication pattern, wildcard usage, and leak behaviour — the inputs
//! to the paper's overhead and local-error-checking results — with compute
//! phases modeled in virtual time.

pub mod gems_fdtd;
pub mod lammps;
pub mod leslie3d;
pub mod lu137;
pub mod milc;
pub mod socorro;

pub use gems_fdtd::GemsFdtd;
pub use lammps::Lammps;
pub use leslie3d::Leslie3d;
pub use lu137::Lu137;
pub use milc::Milc;
pub use socorro::Socorro;

use dampi_mpi::MpiProgram;

/// All six SpecMPI skeletons with bench-scale parameters (Table II rows).
#[must_use]
pub fn all_nominal() -> Vec<(&'static str, Box<dyn MpiProgram>)> {
    vec![
        ("104.milc", Box::new(Milc::nominal()) as Box<dyn MpiProgram>),
        ("107.leslie3d", Box::new(Leslie3d::nominal())),
        ("113.GemsFDTD", Box::new(GemsFdtd::nominal())),
        ("126.lammps", Box::new(Lammps::nominal())),
        ("130.socorro", Box::new(Socorro::nominal())),
        ("137.lu", Box::new(Lu137::nominal())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn every_kernel_runs_clean_of_errors_at_small_scale() {
        for (name, prog) in all_nominal() {
            let out = run_native(&SimConfig::new(8), prog.as_ref());
            assert!(out.succeeded(), "{name}: {:?}", out.rank_errors);
        }
    }

    #[test]
    fn leak_profile_matches_table2() {
        // Table II: milc, GemsFDTD and 137.lu leak communicators.
        for (name, prog) in all_nominal() {
            let out = run_native(&SimConfig::new(8), prog.as_ref());
            let expect_leak = matches!(name, "104.milc" | "113.GemsFDTD" | "137.lu");
            assert_eq!(
                out.leaks.has_comm_leak(),
                expect_leak,
                "{name} C-leak mismatch"
            );
            assert!(
                !out.leaks.has_request_leak(),
                "{name} must not leak requests"
            );
        }
    }
}
