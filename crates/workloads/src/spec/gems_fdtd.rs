//! 113.GemsFDTD: finite-difference time-domain electromagnetics.
//!
//! Deterministic 2-D face exchanges for the E/H field updates; the solver
//! duplicates a communicator for its field exchanges and never frees it
//! (Table II: C-leak = Yes, slowdown 1.13x).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// GemsFDTD skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct GemsFdtdParams {
    /// Time steps (each updates E then H fields).
    pub steps: usize,
    /// Face bytes.
    pub msg_bytes: usize,
    /// Simulated compute per field update.
    pub update_cost: f64,
}

/// The GemsFDTD program.
#[derive(Debug, Clone)]
pub struct GemsFdtd {
    params: GemsFdtdParams,
}

impl GemsFdtd {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: GemsFdtdParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(GemsFdtdParams {
            steps: 15,
            msg_bytes: 1024,
            update_cost: 1.5e-4,
        })
    }
}

impl MpiProgram for GemsFdtd {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let field_comm = mpi.comm_dup(Comm::WORLD)?; // never freed
        for _ in 0..self.params.steps {
            // E-field update + exchange.
            idioms::halo_2d(mpi, field_comm, tags::HALO, self.params.msg_bytes)?;
            mpi.compute(self.params.update_cost)?;
            // H-field update + exchange.
            idioms::halo_2d(mpi, field_comm, tags::HALO + 1, self.params.msg_bytes)?;
            mpi.compute(self.params.update_cost)?;
        }
        let _ = mpi.reduce_f64(Comm::WORLD, 0, vec![1.0], ReduceOp::Sum)?;
        Ok(())
    }

    fn name(&self) -> &str {
        "113.GemsFDTD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_and_leaks_field_comm() {
        let out = run_native(&SimConfig::new(6), &GemsFdtd::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak());
    }
}
