//! 130.socorro: density-functional theory (plane-wave electronic
//! structure).
//!
//! Collective-rich skeleton — broadcasts of wavefunction blocks,
//! reductions of energies, occasional transposes — with long compute
//! phases (Table II: 1.25x). Deterministic, leak-free.

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;

/// socorro skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct SocorroParams {
    /// SCF iterations.
    pub scf_iters: usize,
    /// Broadcast block bytes.
    pub block_bytes: usize,
    /// Simulated compute per SCF step.
    pub step_cost: f64,
}

/// The socorro program.
#[derive(Debug, Clone)]
pub struct Socorro {
    params: SocorroParams,
}

impl Socorro {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: SocorroParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(SocorroParams {
            scf_iters: 12,
            block_bytes: 2048,
            step_cost: 3e-4,
        })
    }
}

impl MpiProgram for Socorro {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let words = self.params.block_bytes / 8;
        for it in 0..self.params.scf_iters {
            // Root distributes the current wavefunction block.
            let root = it % mpi.world_size();
            let me = mpi.world_rank();
            let data = if me == root {
                Some(codec::encode_u64s(&vec![it as u64; words]))
            } else {
                None
            };
            let _ = mpi.bcast(Comm::WORLD, root, data)?;
            mpi.compute(self.params.step_cost)?;
            // FFT-ish transpose every few iterations.
            if it % 4 == 3 {
                idioms::transpose(mpi, Comm::WORLD, 256)?;
            }
            // Energy reduction.
            let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0 / (it + 1) as f64], ReduceOp::Sum)?;
        }
        // Final gathered report at root.
        let _ = mpi.gather(Comm::WORLD, 0, codec::encode_u64(42))?;
        Ok(())
    }

    fn name(&self) -> &str {
        "130.socorro"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(6), &Socorro::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }
}
