//! 104.milc: lattice QCD (the MILC su3imp application).
//!
//! MILC's gather machinery consumes halo contributions with
//! `MPI_ANY_SOURCE` receives in arrival order — tens of thousands of
//! wildcards per run (Table II: R\* = 51K at 1024 procs, by far the most),
//! and correspondingly the worst DAMPI slowdown (15x): every wildcard
//! defers a piggyback receive and every late message is matched against a
//! large epoch log. It also leaves a gather communicator unfreed (C-leak =
//! Yes).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// MILC skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct MilcParams {
    /// Conjugate-gradient/update iterations.
    pub iters: usize,
    /// Wildcard halo gathers per iteration.
    pub gathers_per_iter: usize,
    /// Halo-message bytes.
    pub msg_bytes: usize,
    /// Simulated compute per iteration.
    pub iter_cost: f64,
}

/// The MILC program.
#[derive(Debug, Clone)]
pub struct Milc {
    params: MilcParams,
}

impl Milc {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: MilcParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration (≈50 wildcards per rank, the
    /// per-rank density of Table II's 51K at 1024 procs).
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(MilcParams {
            iters: 5,
            gathers_per_iter: 4,
            msg_bytes: 256,
            iter_cost: 1.2e-4,
        })
    }
}

impl MpiProgram for Milc {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let gather_comm = mpi.comm_dup(Comm::WORLD)?; // never freed
        for _ in 0..self.params.iters {
            for g in 0..self.params.gathers_per_iter {
                // Wildcard halo gather: neighbors' contributions consumed
                // in arrival order.
                let _ = idioms::halo_2d_wildcard(
                    mpi,
                    gather_comm,
                    tags::HALO + g as i32,
                    self.params.msg_bytes,
                )?;
            }
            mpi.compute(self.params.iter_cost)?;
            let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0, 2.0], ReduceOp::Sum)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "104.milc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_core::{DampiConfig, DampiVerifier, DecisionSet};
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_and_leaks_gather_comm() {
        let out = run_native(&SimConfig::new(9), &Milc::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak(), "Table II: milc C-leak = Yes");
    }

    #[test]
    fn wildcard_count_is_high() {
        let v = DampiVerifier::with_config(
            SimConfig::new(9),
            DampiConfig::default().with_max_interleavings(1),
        );
        let res = v.instrumented_run(&Milc::nominal(), &DecisionSet::self_run());
        assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
        // 9 ranks × 5 iters × 4 gathers × (2-4 neighbors).
        assert!(
            res.stats.wildcards > 100,
            "milc must be wildcard-heavy: {}",
            res.stats.wildcards
        );
    }
}
