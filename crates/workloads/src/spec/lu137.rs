//! 137.lu: the SpecMPI2007 LU factorization (distinct from NAS LU).
//!
//! Predominantly deterministic pipelined panel broadcasts with a *sparse*
//! sprinkling of wildcard receives in its lookahead logic — Table II
//! reports R\* = 732 at 1024 procs (under one per rank) with near-floor
//! overhead (1.04x) and a leaked communicator (C-leak = Yes).

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result, ANY_SOURCE};

use crate::tags;

/// 137.lu skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct Lu137Params {
    /// Panel factorization steps.
    pub panels: usize,
    /// Panel bytes.
    pub panel_bytes: usize,
    /// Simulated trailing-update compute per panel.
    pub update_cost: f64,
    /// Every `wildcard_stride`-th panel uses the wildcard lookahead path
    /// (0 disables wildcards).
    pub wildcard_stride: usize,
}

/// The 137.lu program.
#[derive(Debug, Clone)]
pub struct Lu137 {
    params: Lu137Params,
}

impl Lu137 {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: Lu137Params) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(Lu137Params {
            panels: 16,
            panel_bytes: 1024,
            update_cost: 2e-3,
            wildcard_stride: 8,
        })
    }
}

impl MpiProgram for Lu137 {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let me = mpi.world_rank();
        let grid_comm = mpi.comm_dup(Comm::WORLD)?; // never freed
        let words = self.params.panel_bytes / 8;
        for panel in 0..self.params.panels {
            let owner = panel % np;
            // Panel broadcast down the process column (ring pipeline).
            if me == owner {
                let next = (me + 1) % np;
                if next != owner {
                    mpi.send(
                        grid_comm,
                        next as i32,
                        tags::SWEEP,
                        codec::encode_u64s(&vec![panel as u64; words.max(1)]),
                    )?;
                }
            } else {
                let use_wildcard =
                    self.params.wildcard_stride > 0 && panel % self.params.wildcard_stride == 0;
                let (_, data) = if use_wildcard {
                    // Lookahead path: accept the panel from whoever
                    // forwards it first.
                    mpi.recv(grid_comm, ANY_SOURCE, tags::SWEEP)?
                } else {
                    let prev = (me + np - 1) % np;
                    mpi.recv(grid_comm, prev as i32, tags::SWEEP)?
                };
                let next = (me + 1) % np;
                if next != owner {
                    mpi.send(grid_comm, next as i32, tags::SWEEP, data)?;
                }
            }
            mpi.compute(self.params.update_cost)?;
            if panel % 4 == 3 {
                let _ = mpi.allreduce_f64(grid_comm, vec![1.0], ReduceOp::Max)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "137.lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_core::{DampiConfig, DampiVerifier, DecisionSet};
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_and_leaks_grid_comm() {
        let out = run_native(&SimConfig::new(5), &Lu137::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak(), "Table II: 137.lu C-leak = Yes");
    }

    #[test]
    fn wildcards_are_sparse() {
        let v = DampiVerifier::with_config(
            SimConfig::new(4),
            DampiConfig::default().with_max_interleavings(1),
        );
        let res = v.instrumented_run(&Lu137::nominal(), &DecisionSet::self_run());
        assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
        // 16 panels, stride 8: 2 wildcard panels × (np-1 receivers at
        // most) — a handful, not thousands.
        assert!(res.stats.wildcards > 0);
        assert!(res.stats.wildcards < 20, "{}", res.stats.wildcards);
    }

    #[test]
    fn deterministic_variant_has_no_wildcards() {
        let v = DampiVerifier::with_config(
            SimConfig::new(4),
            DampiConfig::default().with_max_interleavings(1),
        );
        let prog = Lu137::new(Lu137Params {
            wildcard_stride: 0,
            ..Lu137Params {
                panels: 8,
                panel_bytes: 64,
                update_cost: 0.0,
                wildcard_stride: 0,
            }
        });
        let res = v.instrumented_run(&prog, &DecisionSet::self_run());
        assert_eq!(res.stats.wildcards, 0);
    }
}
