//! 107.leslie3d: computational fluid dynamics (LES solver).
//!
//! Deterministic 1-D decomposition halo exchanges with substantial compute
//! between them: near-floor DAMPI overhead (Table II: 1.14x), no leaks.

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// leslie3d skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct Leslie3dParams {
    /// Time steps.
    pub steps: usize,
    /// Halo bytes.
    pub msg_bytes: usize,
    /// Simulated compute per step.
    pub step_cost: f64,
}

/// The leslie3d program.
#[derive(Debug, Clone)]
pub struct Leslie3d {
    params: Leslie3dParams,
}

impl Leslie3d {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: Leslie3dParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(Leslie3dParams {
            steps: 20,
            msg_bytes: 2048,
            step_cost: 1.2e-4,
        })
    }
}

impl MpiProgram for Leslie3d {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        for step in 0..self.params.steps {
            idioms::halo_1d(mpi, Comm::WORLD, tags::HALO, self.params.msg_bytes)?;
            mpi.compute(self.params.step_cost)?;
            if step % 10 == 9 {
                let _ = mpi.allreduce_f64(Comm::WORLD, vec![0.1], ReduceOp::Max)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "107.leslie3d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Leslie3d::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }
}
